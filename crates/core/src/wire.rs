//! Wire format for [`Value`] object graphs — a self-contained, cycle-aware
//! serialization of guest values to bytes and back.
//!
//! This codec is the copy mechanism of the inter-unit service/message
//! layer ([`crate::port`]): cross-unit call arguments and results are
//! serialized in the sender's VM, shipped as bytes through the target
//! unit's mailbox, and deserialized into the receiving isolate. It is
//! also re-exported as `ijvm_comm::serialize` where it doubles as the
//! marshalling layer of the RMI comparison model (paper Table 1) — one
//! wire format, two roles, so the "copy/marshalling cost" the paper
//! measures and the cost the cluster charges senders for are the same
//! bytes.
//!
//! Sharing and cycles within one serialized graph are preserved through
//! back-references; sharing *across* messages is not (each message is an
//! independent deep copy, the Incommunicado/links semantics).

use crate::heap::ObjBody;
use crate::ids::{IsolateId, LoaderId};
use crate::value::{GcRef, Value};
use crate::vm::Vm;
use std::collections::HashMap;

/// Errors raised during (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes while decoding.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// A class named in the stream is not loadable at the receiver.
    UnknownClass(String),
    /// Receiver heap exhausted.
    OutOfMemory,
    /// Structural mismatch (e.g. field count).
    Corrupt(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated stream"),
            WireError::BadTag(t) => write!(f, "bad tag {t:#x}"),
            WireError::UnknownClass(c) => write!(f, "unknown class {c}"),
            WireError::OutOfMemory => write!(f, "receiver heap exhausted"),
            WireError::Corrupt(w) => write!(f, "corrupt stream: {w}"),
        }
    }
}

impl std::error::Error for WireError {}

mod tag {
    pub const NULL: u8 = 0;
    pub const INT: u8 = 1;
    pub const LONG: u8 = 2;
    pub const FLOAT: u8 = 3;
    pub const DOUBLE: u8 = 4;
    pub const STRING: u8 = 5;
    pub const OBJECT: u8 = 6;
    pub const BACKREF: u8 = 7;
    pub const ARR_INT: u8 = 8;
    pub const ARR_LONG: u8 = 9;
    pub const ARR_DOUBLE: u8 = 10;
    pub const ARR_CHAR: u8 = 11;
    pub const ARR_BYTE: u8 = 12;
    pub const ARR_REF: u8 = 13;
    pub const ARR_OTHER: u8 = 14;
}

/// Serializes a value (full object graph) to bytes.
pub fn serialize_value(vm: &Vm, v: Value, out: &mut Vec<u8>) {
    let mut seen: HashMap<GcRef, u32> = HashMap::new();
    write_value(vm, v, out, &mut seen);
}

fn write_value(vm: &Vm, v: Value, out: &mut Vec<u8>, seen: &mut HashMap<GcRef, u32>) {
    match v {
        Value::Null => out.push(tag::NULL),
        Value::Int(x) => {
            out.push(tag::INT);
            out.extend_from_slice(&x.to_be_bytes());
        }
        Value::Long(x) => {
            out.push(tag::LONG);
            out.extend_from_slice(&x.to_be_bytes());
        }
        Value::Float(x) => {
            out.push(tag::FLOAT);
            out.extend_from_slice(&x.to_bits().to_be_bytes());
        }
        Value::Double(x) => {
            out.push(tag::DOUBLE);
            out.extend_from_slice(&x.to_bits().to_be_bytes());
        }
        Value::Ref(r) => write_ref(vm, r, out, seen),
    }
}

fn write_len(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&(n as u32).to_be_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn write_ref(vm: &Vm, r: GcRef, out: &mut Vec<u8>, seen: &mut HashMap<GcRef, u32>) {
    if let Some(&id) = seen.get(&r) {
        out.push(tag::BACKREF);
        out.extend_from_slice(&id.to_be_bytes());
        return;
    }
    let id = seen.len() as u32;
    seen.insert(r, id);

    if let Some(s) = vm.read_string(r) {
        out.push(tag::STRING);
        write_str(out, &s);
        return;
    }
    let obj = vm.heap().get(r);
    match &obj.body {
        ObjBody::Fields(fields) => {
            out.push(tag::OBJECT);
            write_str(out, &vm.class(obj.class).name);
            write_len(out, fields.len());
            let fields: Vec<Value> = fields.to_vec();
            for f in fields {
                write_value(vm, f, out, seen);
            }
        }
        ObjBody::ArrInt(a) => {
            out.push(tag::ARR_INT);
            write_len(out, a.len());
            for x in a.iter() {
                out.extend_from_slice(&x.to_be_bytes());
            }
        }
        ObjBody::ArrLong(a) => {
            out.push(tag::ARR_LONG);
            write_len(out, a.len());
            for x in a.iter() {
                out.extend_from_slice(&x.to_be_bytes());
            }
        }
        ObjBody::ArrDouble(a) => {
            out.push(tag::ARR_DOUBLE);
            write_len(out, a.len());
            for x in a.iter() {
                out.extend_from_slice(&x.to_bits().to_be_bytes());
            }
        }
        ObjBody::ArrChar(a) => {
            out.push(tag::ARR_CHAR);
            write_len(out, a.len());
            for x in a.iter() {
                out.extend_from_slice(&x.to_be_bytes());
            }
        }
        ObjBody::ArrByte(a) => {
            out.push(tag::ARR_BYTE);
            write_len(out, a.len());
            for x in a.iter() {
                out.push(*x as u8);
            }
        }
        ObjBody::ArrRef { elem_desc, data } => {
            out.push(tag::ARR_REF);
            write_str(out, elem_desc);
            write_len(out, data.len());
            let data: Vec<Value> = data.to_vec();
            for v in data {
                write_value(vm, v, out, seen);
            }
        }
        other => {
            // Bool/short/float arrays: ship as OTHER with element kind.
            out.push(tag::ARR_OTHER);
            let (kind, len): (u8, usize) = match other {
                ObjBody::ArrBool(a) => (0, a.len()),
                ObjBody::ArrShort(a) => (1, a.len()),
                ObjBody::ArrFloat(a) => (2, a.len()),
                _ => unreachable!("covered above"),
            };
            out.push(kind);
            write_len(out, len);
            match other {
                ObjBody::ArrBool(a) => out.extend(a.iter()),
                ObjBody::ArrShort(a) => {
                    for x in a.iter() {
                        out.extend_from_slice(&x.to_be_bytes());
                    }
                }
                ObjBody::ArrFloat(a) => {
                    for x in a.iter() {
                        out.extend_from_slice(&x.to_bits().to_be_bytes());
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Deserializes a value into `target` isolate, resolving classes through
/// `loader`.
pub fn deserialize_value(
    vm: &mut Vm,
    bytes: &[u8],
    target: IsolateId,
    loader: LoaderId,
) -> Result<Value, WireError> {
    let mut r = Reader { bytes, pos: 0 };
    let mut seen: Vec<GcRef> = Vec::new();
    let result = read_value(vm, &mut r, target, loader, &mut seen);
    // Intermediate objects were pinned as they were created (an
    // allocation mid-graph may trigger a collection, and `seen` is host
    // state the collector cannot see); release the pins now.
    for r in &seen {
        unpin_ref(vm, *r);
    }
    result
}

/// Releases the host-root pin added by `pin_ref` for `r`.
fn unpin_ref(vm: &mut Vm, r: GcRef) {
    // Pins are keyed by handle; we recorded them in creation order, but
    // the cheap and safe inverse is to scan: pin handles are small.
    // To avoid O(n^2), deserialization records handles alongside `seen`
    // via the thread-local below.
    PIN_HANDLES.with(|h| {
        let mut h = h.borrow_mut();
        if let Some(handle) = h.remove(&r) {
            vm.unpin(handle);
        }
    });
}

fn pin_ref(vm: &mut Vm, r: GcRef) {
    let handle = vm.pin(r);
    PIN_HANDLES.with(|h| {
        h.borrow_mut().insert(r, handle);
    });
}

thread_local! {
    static PIN_HANDLES: std::cell::RefCell<std::collections::HashMap<GcRef, usize>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Bounds-checked big-endian byte reader, shared with the checkpoint
/// image decoder ([`crate::checkpoint`]), which faces the same hostile-
/// input surface as the wire codec.
pub(crate) struct Reader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl Reader<'_> {
    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }
    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        let mut buf = [0u8; 4];
        for b in &mut buf {
            *b = self.u8()?;
        }
        Ok(u32::from_be_bytes(buf))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(((self.u32()? as u64) << 32) | self.u32()? as u64)
    }
    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        Ok(((self.u8()? as u16) << 8) | self.u8()? as u16)
    }
    pub(crate) fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| WireError::Corrupt("utf8"))?
            .to_owned();
        self.pos = end;
        Ok(s)
    }
    /// Bytes left in the stream — the checkpoint decoder validates every
    /// element count against this before allocating, so a hostile length
    /// field cannot request an absurd buffer.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }
}

fn read_value(
    vm: &mut Vm,
    r: &mut Reader<'_>,
    target: IsolateId,
    loader: LoaderId,
    seen: &mut Vec<GcRef>,
) -> Result<Value, WireError> {
    let t = r.u8()?;
    Ok(match t {
        tag::NULL => Value::Null,
        tag::INT => Value::Int(r.u32()? as i32),
        tag::LONG => Value::Long(r.u64()? as i64),
        tag::FLOAT => Value::Float(f32::from_bits(r.u32()?)),
        tag::DOUBLE => Value::Double(f64::from_bits(r.u64()?)),
        tag::BACKREF => {
            let id = r.u32()? as usize;
            Value::Ref(*seen.get(id).ok_or(WireError::Corrupt("backref"))?)
        }
        tag::STRING => {
            let s = r.str()?;
            let obj = vm.new_string(target, &s);
            pin_ref(vm, obj);
            seen.push(obj);
            Value::Ref(obj)
        }
        tag::OBJECT => {
            let class_name = r.str()?;
            let nfields = r.u32()? as usize;
            let class = vm
                .load_class(loader, &class_name)
                .map_err(|_| WireError::UnknownClass(class_name))?;
            let obj = vm
                .alloc_object(class, target)
                .ok_or(WireError::OutOfMemory)?;
            pin_ref(vm, obj);
            seen.push(obj);
            for slot in 0..nfields {
                let v = read_value(vm, r, target, loader, seen)?;
                if let ObjBody::Fields(fields) = &mut vm.heap_mut().get_mut(obj).body {
                    if slot < fields.len() {
                        fields[slot] = v;
                    } else {
                        return Err(WireError::Corrupt("field count"));
                    }
                }
            }
            Value::Ref(obj)
        }
        tag::ARR_INT | tag::ARR_LONG | tag::ARR_DOUBLE | tag::ARR_CHAR | tag::ARR_BYTE => {
            let len = r.u32()? as usize;
            let placeholder = vm
                .alloc_ref_array(target, "Ljava/lang/Object;", len)
                .ok_or(WireError::OutOfMemory)?;
            let (body, desc): (ObjBody, &str) = match t {
                tag::ARR_INT => {
                    let mut a = vec![0i32; len];
                    for x in &mut a {
                        *x = r.u32()? as i32;
                    }
                    (ObjBody::ArrInt(a.into_boxed_slice()), "[I")
                }
                tag::ARR_LONG => {
                    let mut a = vec![0i64; len];
                    for x in &mut a {
                        *x = r.u64()? as i64;
                    }
                    (ObjBody::ArrLong(a.into_boxed_slice()), "[J")
                }
                tag::ARR_DOUBLE => {
                    let mut a = vec![0f64; len];
                    for x in &mut a {
                        *x = f64::from_bits(r.u64()?);
                    }
                    (ObjBody::ArrDouble(a.into_boxed_slice()), "[D")
                }
                tag::ARR_CHAR => {
                    let mut a = vec![0u16; len];
                    for x in &mut a {
                        *x = r.u16()?;
                    }
                    (ObjBody::ArrChar(a.into_boxed_slice()), "[C")
                }
                _ => {
                    let mut a = vec![0i8; len];
                    for x in &mut a {
                        *x = r.u8()? as i8;
                    }
                    (ObjBody::ArrByte(a.into_boxed_slice()), "[B")
                }
            };
            let obj = vm.heap_mut().get_mut(placeholder);
            obj.body = body;
            obj.array_desc = desc.to_owned();
            pin_ref(vm, placeholder);
            seen.push(placeholder);
            Value::Ref(placeholder)
        }
        tag::ARR_REF => {
            let elem_desc = r.str()?;
            let len = r.u32()? as usize;
            let arr = vm
                .alloc_ref_array(target, &elem_desc, len)
                .ok_or(WireError::OutOfMemory)?;
            pin_ref(vm, arr);
            seen.push(arr);
            for i in 0..len {
                let v = read_value(vm, r, target, loader, seen)?;
                if let ObjBody::ArrRef { data, .. } = &mut vm.heap_mut().get_mut(arr).body {
                    data[i] = v;
                }
            }
            Value::Ref(arr)
        }
        tag::ARR_OTHER => {
            let kind = r.u8()?;
            let len = r.u32()? as usize;
            let placeholder = vm
                .alloc_ref_array(target, "Ljava/lang/Object;", len)
                .ok_or(WireError::OutOfMemory)?;
            let (body, desc): (ObjBody, &str) = match kind {
                0 => {
                    let mut a = vec![0u8; len];
                    for x in &mut a {
                        *x = r.u8()?;
                    }
                    (ObjBody::ArrBool(a.into_boxed_slice()), "[Z")
                }
                1 => {
                    let mut a = vec![0i16; len];
                    for x in &mut a {
                        *x = r.u16()? as i16;
                    }
                    (ObjBody::ArrShort(a.into_boxed_slice()), "[S")
                }
                2 => {
                    let mut a = vec![0f32; len];
                    for x in &mut a {
                        *x = f32::from_bits(r.u32()?);
                    }
                    (ObjBody::ArrFloat(a.into_boxed_slice()), "[F")
                }
                other => return Err(WireError::BadTag(other)),
            };
            let obj = vm.heap_mut().get_mut(placeholder);
            obj.body = body;
            obj.array_desc = desc.to_owned();
            pin_ref(vm, placeholder);
            seen.push(placeholder);
            Value::Ref(placeholder)
        }
        other => return Err(WireError::BadTag(other)),
    })
}
