//! The object heap: a slab of objects with a free list.
//!
//! Objects never move; a [`GcRef`] stays valid until the collector frees the
//! object. Every object records the isolate it is currently *charged to*
//! (paper §3.2) — set at allocation time and recomputed by every collection.

use crate::ids::{ClassId, IsolateId, ThreadId};
use crate::value::{GcRef, Value};
use std::collections::VecDeque;

/// Fixed per-object header cost used for accounting, matching the paper's
/// observation that a plain `java.lang.Object` occupies 28 bytes in LadyVM.
pub const OBJECT_HEADER_BYTES: usize = 28;

/// Monitor state of an object, allocated lazily on first `monitorenter`.
#[derive(Debug, Default, Clone)]
pub struct MonitorState {
    /// Thread currently owning the monitor.
    pub owner: Option<ThreadId>,
    /// Recursive entry count of the owner.
    pub count: u32,
    /// Threads blocked trying to enter.
    pub entry_queue: VecDeque<ThreadId>,
    /// Threads parked in `Object.wait`.
    pub wait_set: VecDeque<ThreadId>,
}

/// The payload of a heap object.
#[derive(Debug, Clone)]
pub enum ObjBody {
    /// A plain instance: one slot per declared instance field
    /// (including inherited fields), in layout order.
    Fields(Box<[Value]>),
    /// `boolean[]` (0/1 values).
    ArrBool(Box<[u8]>),
    /// `byte[]`
    ArrByte(Box<[i8]>),
    /// `char[]`
    ArrChar(Box<[u16]>),
    /// `short[]`
    ArrShort(Box<[i16]>),
    /// `int[]`
    ArrInt(Box<[i32]>),
    /// `long[]`
    ArrLong(Box<[i64]>),
    /// `float[]`
    ArrFloat(Box<[f32]>),
    /// `double[]`
    ArrDouble(Box<[f64]>),
    /// A reference array; `elem_desc` is the element type descriptor
    /// (e.g. `Ljava/lang/Object;` or `[I`), used by `aastore` checks.
    ArrRef {
        /// Element type descriptor.
        elem_desc: String,
        /// The elements (null or references).
        data: Box<[Value]>,
    },
}

impl ObjBody {
    /// Array length, or `None` for non-arrays.
    pub fn array_len(&self) -> Option<usize> {
        Some(match self {
            ObjBody::Fields(_) => return None,
            ObjBody::ArrBool(a) => a.len(),
            ObjBody::ArrByte(a) => a.len(),
            ObjBody::ArrChar(a) => a.len(),
            ObjBody::ArrShort(a) => a.len(),
            ObjBody::ArrInt(a) => a.len(),
            ObjBody::ArrLong(a) => a.len(),
            ObjBody::ArrFloat(a) => a.len(),
            ObjBody::ArrDouble(a) => a.len(),
            ObjBody::ArrRef { data, .. } => data.len(),
        })
    }

    /// Approximate payload size in bytes, for resource accounting.
    pub fn payload_bytes(&self) -> usize {
        match self {
            ObjBody::Fields(f) => f.len() * 8,
            ObjBody::ArrBool(a) => a.len(),
            ObjBody::ArrByte(a) => a.len(),
            ObjBody::ArrChar(a) => a.len() * 2,
            ObjBody::ArrShort(a) => a.len() * 2,
            ObjBody::ArrInt(a) => a.len() * 4,
            ObjBody::ArrLong(a) => a.len() * 8,
            ObjBody::ArrFloat(a) => a.len() * 4,
            ObjBody::ArrDouble(a) => a.len() * 8,
            ObjBody::ArrRef { data, .. } => data.len() * 8,
        }
    }
}

/// A heap object.
#[derive(Debug, Clone)]
pub struct Object {
    /// The object's class. For primitive arrays this is the VM's
    /// `java/lang/Object` class id; `body` carries the element kind.
    pub class: ClassId,
    /// For arrays, the full type descriptor (e.g. `[I`); empty for instances.
    pub array_desc: String,
    /// Isolate this object is charged to (paper §3.2).
    pub owner: IsolateId,
    /// `true` when this object is a connection (file/socket); connections
    /// are accounted separately (paper §3.2).
    pub is_connection: bool,
    /// Mark bit for the collector.
    pub mark: bool,
    /// Lazily allocated monitor.
    pub monitor: Option<Box<MonitorState>>,
    /// The payload.
    pub body: ObjBody,
}

impl Object {
    /// Total accounted size in bytes.
    pub fn size_bytes(&self) -> usize {
        OBJECT_HEADER_BYTES + self.body.payload_bytes()
    }

    /// `true` if the object is an array.
    pub fn is_array(&self) -> bool {
        !matches!(self.body, ObjBody::Fields(_))
    }
}

/// The slab heap.
#[derive(Debug, Default)]
pub struct Heap {
    slots: Vec<Option<Object>>,
    free: Vec<u32>,
    used_bytes: usize,
    live_objects: usize,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Bytes currently occupied by live (unswept) objects.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of live (unswept) objects.
    pub fn live_objects(&self) -> usize {
        self.live_objects
    }

    /// Allocates an object, returning its handle.
    pub fn alloc(&mut self, obj: Object) -> GcRef {
        self.used_bytes += obj.size_bytes();
        self.live_objects += 1;
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx as usize].is_none());
                self.slots[idx as usize] = Some(obj);
                GcRef(idx)
            }
            None => {
                self.slots.push(Some(obj));
                GcRef(self.slots.len() as u32 - 1)
            }
        }
    }

    /// Frees one object (collector use).
    pub fn free(&mut self, r: GcRef) {
        if let Some(obj) = self.slots[r.0 as usize].take() {
            self.used_bytes -= obj.size_bytes();
            self.live_objects -= 1;
            self.free.push(r.0);
        }
    }

    /// Immutable access; panics on dangling handles (a VM bug, since the
    /// collector only frees unreachable objects).
    pub fn get(&self, r: GcRef) -> &Object {
        self.slots[r.0 as usize].as_ref().expect("dangling GcRef")
    }

    /// Mutable access.
    pub fn get_mut(&mut self, r: GcRef) -> &mut Object {
        self.slots[r.0 as usize].as_mut().expect("dangling GcRef")
    }

    /// `true` if the handle currently points at a live object.
    pub fn is_live(&self, r: GcRef) -> bool {
        (r.0 as usize) < self.slots.len() && self.slots[r.0 as usize].is_some()
    }

    /// Iterates over all live `(handle, object)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GcRef, &Object)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|o| (GcRef(i as u32), o)))
    }

    /// Iterates over all live handles (used by the sweep phase).
    pub fn handles(&self) -> Vec<GcRef> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| GcRef(i as u32)))
            .collect()
    }

    // ------------------------------------------------------------------
    // Checkpoint support (crate::checkpoint)
    // ------------------------------------------------------------------

    /// The raw slab, including `None` holes. A checkpoint must serialize
    /// holes positionally: slab indices *are* the object identities
    /// ([`GcRef`] values), so a restored heap has to reproduce the exact
    /// slot layout for every serialized reference to stay valid.
    pub(crate) fn slots(&self) -> &[Option<Object>] {
        &self.slots
    }

    /// The free list in stack order. `alloc` pops from the back, so the
    /// restored list must preserve order for allocation to replay
    /// identically after restore.
    pub(crate) fn free_list(&self) -> &[u32] {
        &self.free
    }

    /// Rebuilds a heap from a serialized slab and free list, recomputing
    /// the accounting counters from the objects themselves.
    pub(crate) fn from_parts(slots: Vec<Option<Object>>, free: Vec<u32>) -> Heap {
        let used_bytes = slots.iter().flatten().map(Object::size_bytes).sum();
        let live_objects = slots.iter().flatten().count();
        Heap {
            slots,
            free,
            used_bytes,
            live_objects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: usize) -> Object {
        Object {
            class: ClassId(0),
            array_desc: String::new(),
            owner: IsolateId(0),
            is_connection: false,
            mark: false,
            monitor: None,
            body: ObjBody::Fields(vec![Value::Int(0); fields].into_boxed_slice()),
        }
    }

    #[test]
    fn alloc_free_reuses_slots() {
        let mut h = Heap::new();
        let a = h.alloc(obj(1));
        let b = h.alloc(obj(2));
        assert_ne!(a, b);
        assert_eq!(h.live_objects(), 2);
        h.free(a);
        assert_eq!(h.live_objects(), 1);
        let c = h.alloc(obj(3));
        assert_eq!(c, a, "freed slot should be reused");
    }

    #[test]
    fn used_bytes_tracks_alloc_and_free() {
        let mut h = Heap::new();
        let a = h.alloc(obj(4));
        let expect = OBJECT_HEADER_BYTES + 4 * 8;
        assert_eq!(h.used_bytes(), expect);
        h.free(a);
        assert_eq!(h.used_bytes(), 0);
    }

    #[test]
    fn array_sizes() {
        let body = ObjBody::ArrInt(vec![0i32; 10].into_boxed_slice());
        assert_eq!(body.payload_bytes(), 40);
        assert_eq!(body.array_len(), Some(10));
        let body = ObjBody::ArrRef {
            elem_desc: "Ljava/lang/Object;".to_owned(),
            data: vec![Value::Null; 3].into_boxed_slice(),
        };
        assert_eq!(body.payload_bytes(), 24);
    }

    #[test]
    fn plain_object_is_28_bytes_like_the_paper() {
        // Paper §4.2: "In LadyVM and I-JVM, the size of such an object is 28
        // bytes" for java.lang.Object (no fields).
        let o = obj(0);
        assert_eq!(o.size_bytes(), 28);
    }
}
