//! The virtual machine: owns the heap, classes, isolates and threads, and
//! drives the deterministic green-thread scheduler.
//!
//! A `Vm` is also the unit the cluster scheduler ([`crate::sched`])
//! migrates between OS workers: everything it owns is `Send`, runs are
//! sliceable ([`Vm::run`] with a budget), and pending exact CPU can be
//! flushed at any slice boundary ([`Vm::flush_pending_cpu`]).

use crate::accounting::{IsolateSnapshot, ResourceStats};
use crate::class::{
    CodeBody, FieldDesc, InitState, RtCp, RuntimeClass, RuntimeMethod, TaskClassMirror,
};
use crate::error::{Result, VmError};
use crate::heap::{Heap, ObjBody, Object};
use crate::ids::{ClassId, IsolateId, LoaderId, MethodRef, ThreadId};
use crate::isolate::{Isolate, IsolateState};
use crate::natives::{NativeFn, NativeRegistry};
use crate::thread::{Frame, ThreadState, VmThread};
use crate::value::{GcRef, Value};
use ijvm_classfile::{AccessFlags, ClassFile, MethodDescriptor};
// lint: allow(determinism) — import only; every HashMap/HashSet below
// is keyed lookup (insert/get/contains), never iterated.
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Whether the VM runs with I-JVM isolation or as the unmodified baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationMode {
    /// Baseline ("LadyVM"/"Sun JVM" stand-in): statics, interned strings
    /// and `Class` objects are shared by all bundles, there is no isolate
    /// switching and no resource accounting.
    Shared,
    /// I-JVM: per-isolate task class mirrors, thread migration on
    /// inter-isolate calls, resource accounting, isolate termination.
    Isolated,
}

/// VM construction options.
///
/// `#[non_exhaustive]`: construct via [`VmOptions::isolated`] /
/// [`VmOptions::shared`] (or `Default`) and adjust fields; new tuning
/// knobs may be added without breaking embedders.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct VmOptions {
    /// Isolation mode (see [`IsolationMode`]).
    pub isolation: IsolationMode,
    /// Execution engine (see [`crate::engine::EngineKind`]): pre-decoded
    /// direct-threaded dispatch by default, with the quickened match
    /// dispatch and the raw byte interpreter kept for ablation, A/B
    /// comparison and differential testing.
    pub engine: crate::engine::EngineKind,
    /// Superinstruction fusion in the pre-decoded engines' pre-decoder
    /// (peephole-folded `Load+Load+Iadd+Store` and compare-and-branch
    /// shapes). On by default; separable for ablation and for the
    /// fused-vs-unfused differential tests. Ignored by the raw engine.
    pub superinstructions: bool,
    /// Per-isolate resource accounting. Defaults to `true` in `Isolated`
    /// mode; separable so benchmarks can ablate accounting cost.
    pub accounting: bool,
    /// Cluster scheduling mode (see [`crate::sched::SchedulerKind`]).
    /// Consulted by [`crate::sched::ClusterBuilder::vm_options`]; a single
    /// `Vm` always runs its own green threads deterministically —
    /// parallelism is across `Send` VM units, never inside one.
    pub scheduler: crate::sched::SchedulerKind,
    /// Hard heap limit; allocation beyond it triggers GC, then
    /// `OutOfMemoryError`.
    pub heap_limit_bytes: usize,
    /// Maximum live threads; exceeding throws `OutOfMemoryError`
    /// (mirrors the JVM's behaviour exploited by attack A5/A6).
    pub max_threads: usize,
    /// Maximum frame-stack depth; exceeding throws `StackOverflowError`.
    pub max_frames: usize,
    /// Scheduler quantum in interpreted instructions; also the CPU
    /// sampling interval (paper §3.2 samples the isolate reference of the
    /// running thread periodically).
    pub quantum: u32,
    /// Bytes allocated between forced collections.
    pub gc_threshold_bytes: usize,
    /// Flight-recorder mode (see [`crate::trace`]). `Off` by default:
    /// every instrumentation point reduces to one predicted branch on a
    /// cached `bool`, and no ring is allocated. Tracing observes only —
    /// it never feeds back into the vclock, accounting or scheduling, so
    /// a traced run stays bit-identical to an untraced one.
    pub trace: crate::trace::TraceConfig,
}

impl Default for VmOptions {
    fn default() -> VmOptions {
        VmOptions {
            isolation: IsolationMode::Isolated,
            engine: crate::engine::EngineKind::default(),
            superinstructions: true,
            accounting: true,
            scheduler: crate::sched::SchedulerKind::default(),
            heap_limit_bytes: 256 << 20,
            max_threads: 4096,
            max_frames: 1024,
            quantum: 10_000,
            gc_threshold_bytes: 32 << 20,
            trace: crate::trace::TraceConfig::Off,
        }
    }
}

impl VmOptions {
    /// Baseline configuration: shared statics, no accounting.
    pub fn shared() -> VmOptions {
        VmOptions {
            isolation: IsolationMode::Shared,
            accounting: false,
            ..VmOptions::default()
        }
    }

    /// I-JVM configuration (the default).
    pub fn isolated() -> VmOptions {
        VmOptions::default()
    }

    /// The same options with a different execution engine.
    pub fn with_engine(mut self, engine: crate::engine::EngineKind) -> VmOptions {
        self.engine = engine;
        self
    }

    /// The same options with superinstruction fusion toggled.
    pub fn with_superinstructions(mut self, fuse: bool) -> VmOptions {
        self.superinstructions = fuse;
        self
    }

    /// The same options with a different cluster scheduling mode.
    pub fn with_scheduler(mut self, scheduler: crate::sched::SchedulerKind) -> VmOptions {
        self.scheduler = scheduler;
        self
    }

    /// The same options with a different flight-recorder mode.
    pub fn with_trace(mut self, trace: crate::trace::TraceConfig) -> VmOptions {
        self.trace = trace;
        self
    }
}

/// A class loader: a named class path attached to an isolate.
#[derive(Debug)]
pub struct Loader {
    /// This loader's id.
    pub id: LoaderId,
    /// Debug name.
    pub name: String,
    /// The isolate built from this loader. Meaningless for the bootstrap
    /// loader (its classes are system classes).
    pub isolate: IsolateId,
    /// `true` only for the bootstrap loader.
    pub is_system: bool,
    /// name → class-file bytes.
    // lint: allow(determinism) — probed by class name during loading,
    // never iterated; hash order is unobservable.
    pub classpath: HashMap<String, Vec<u8>>,
    /// Loaders consulted after bootstrap delegation (bundle imports).
    pub delegates: Vec<LoaderId>,
}

/// Why [`Vm::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunOutcome {
    /// No thread is runnable or sleeping: all work finished.
    Idle,
    /// The instruction budget was exhausted first.
    BudgetExhausted,
    /// Threads remain but all are blocked on each other.
    Deadlock,
    /// At least one thread is parked in a cross-unit `Service.call`
    /// awaiting a reply ([`crate::port`]): the VM cannot progress until
    /// the cluster scheduler delivers mail at the next quantum boundary.
    Blocked,
}

/// An exception in flight inside the interpreter (crate-internal).
#[derive(Debug, Clone)]
pub(crate) enum Thrown {
    /// An existing exception object.
    Ref(GcRef),
    /// An exception to be allocated from a system class.
    ByName {
        /// Internal name of the exception class.
        class_name: &'static str,
        /// Detail message.
        message: String,
    },
}

/// Well-known bootstrap classes, cached after first resolution.
#[derive(Debug, Default)]
pub(crate) struct WellKnown {
    pub object: Option<ClassId>,
    pub string: Option<ClassId>,
    pub class: Option<ClassId>,
}

/// The virtual machine.
#[derive(Debug)]
pub struct Vm {
    pub(crate) options: VmOptions,
    pub(crate) heap: Heap,
    pub(crate) classes: Vec<RuntimeClass>,
    // lint: allow(determinism) — keyed get/insert only, never iterated
    // (class iteration goes through the `classes` Vec, in ClassId
    // order).
    pub(crate) class_index: HashMap<(LoaderId, String), ClassId>,
    // lint: allow(determinism) — insert/contains/remove cycle guard,
    // never iterated.
    pub(crate) loading: HashSet<(LoaderId, String)>,
    pub(crate) loaders: Vec<Loader>,
    pub(crate) isolates: Vec<Isolate>,
    pub(crate) threads: Vec<VmThread>,
    pub(crate) run_queue: VecDeque<ThreadId>,
    pub(crate) vclock: u64,
    pub(crate) natives: NativeRegistry,
    pub(crate) host_roots: Vec<Option<GcRef>>,
    pub(crate) allocated_since_gc: usize,
    pub(crate) gc_count: u64,
    pub(crate) console: Vec<String>,
    pub(crate) well_known: WellKnown,
    pub(crate) migrations: u64,
    /// Set when `System.exit` is called; `run` stops.
    pub(crate) exit_code: Option<i32>,
    /// The inter-unit service/message state ([`crate::port`]): exported
    /// service pumps, threads waiting on replies, and — once submitted to
    /// a cluster — the unit id and shared hub.
    pub(crate) port: crate::port::PortState,
    /// Cached gate for the flight recorder: `true` iff `options.trace`
    /// is on. Instrumentation points branch on this bool (cheap,
    /// predictable) instead of matching on the config or testing the
    /// `Option` below.
    pub(crate) trace_enabled: bool,
    /// The flight recorder (ring + eager counters), boxed to keep the
    /// untraced `Vm` small. `Some` iff `trace_enabled`.
    pub(crate) trace: Option<Box<crate::trace::TraceState>>,
    /// Keeps `Vm: !Sync` no matter what the fields auto-derive: a VM is
    /// a `Send` unit owned by one thread at a time, never shared — the
    /// invariant the engine's interior-mutable caches
    /// ([`crate::engine::PreparedCode`]) and the unit-confined
    /// [`crate::vmrc::VmRc`] refcounts are sound under. Sharing `&Vm`
    /// across threads would let two threads race on those caches, so
    /// the capability is denied at the type level.
    pub(crate) not_sync: std::marker::PhantomData<std::cell::Cell<u8>>,
}

impl Vm {
    /// Creates a VM with the given options. The bootstrap loader exists
    /// from the start; install system classes (e.g. via `ijvm-jsl`) before
    /// loading application code.
    pub fn new(options: VmOptions) -> Vm {
        let trace_enabled = options.trace.is_on();
        let bootstrap = Loader {
            id: LoaderId::BOOTSTRAP,
            name: "bootstrap".to_owned(),
            isolate: IsolateId::ISOLATE0,
            is_system: true,
            // lint: allow(determinism) — constructor of the field
            // justified at its declaration.
            classpath: HashMap::new(),
            delegates: Vec::new(),
        };
        Vm {
            options,
            heap: Heap::new(),
            classes: Vec::new(),
            // lint: allow(determinism) — constructors of the fields
            // justified at their declarations.
            class_index: HashMap::new(),
            // lint: allow(determinism) — as above.
            loading: HashSet::new(),
            loaders: vec![bootstrap],
            isolates: Vec::new(),
            threads: Vec::new(),
            run_queue: VecDeque::new(),
            vclock: 0,
            natives: NativeRegistry::new(),
            host_roots: Vec::new(),
            allocated_since_gc: 0,
            gc_count: 0,
            console: Vec::new(),
            well_known: WellKnown::default(),
            migrations: 0,
            exit_code: None,
            port: crate::port::PortState::default(),
            trace_enabled,
            trace: trace_enabled.then(|| {
                Box::new(crate::trace::TraceState::new(
                    crate::trace::DEFAULT_RING_CAPACITY,
                ))
            }),
            not_sync: std::marker::PhantomData,
        }
    }

    /// The configured options.
    pub fn options(&self) -> &VmOptions {
        &self.options
    }

    /// `true` when running with I-JVM isolation.
    pub fn is_isolated(&self) -> bool {
        self.options.isolation == IsolationMode::Isolated
    }

    // ------------------------------------------------------------------
    // Isolates and loaders
    // ------------------------------------------------------------------

    /// Creates a new isolate with its own class loader. The first isolate
    /// created is `Isolate0`, the privileged one (paper §3.1).
    pub fn create_isolate(&mut self, name: &str) -> IsolateId {
        let iso = IsolateId(self.isolates.len() as u16);
        let loader = LoaderId(self.loaders.len() as u16);
        self.loaders.push(Loader {
            id: loader,
            name: format!("loader:{name}"),
            isolate: iso,
            is_system: false,
            // lint: allow(determinism) — constructor of the field
            // justified at its declaration.
            classpath: HashMap::new(),
            delegates: Vec::new(),
        });
        self.isolates.push(Isolate::new(iso, name, loader));
        iso
    }

    /// Pushes an application loader shell during checkpoint restore
    /// ([`crate::checkpoint::restore`]): the recorded name and isolate
    /// binding are reinstated verbatim, and the classpath/delegates are
    /// filled in by the caller from the image. Unlike
    /// [`Vm::create_isolate`] this creates no isolate — isolates are
    /// restored from their own image section.
    pub(crate) fn restore_push_loader(&mut self, name: String, isolate: IsolateId) -> LoaderId {
        let id = LoaderId(self.loaders.len() as u16);
        self.loaders.push(Loader {
            id,
            name,
            isolate,
            is_system: false,
            // lint: allow(determinism) — constructor of the field
            // justified at its declaration.
            classpath: HashMap::new(),
            delegates: Vec::new(),
        });
        id
    }

    /// Captures this VM as a stable byte image ([`crate::checkpoint`]).
    ///
    /// The VM must be quiescent: parked at a quantum boundary with no
    /// in-flight cross-unit traffic (always true for a VM the embedder
    /// holds directly, outside a cluster). For a unit running under a
    /// cluster scheduler use
    /// [`crate::sched::UnitHandle::checkpoint_at`], which quiesces the
    /// unit at a slice boundary first.
    pub fn checkpoint(
        &self,
    ) -> std::result::Result<crate::checkpoint::UnitImage, crate::checkpoint::CheckpointError> {
        crate::checkpoint::capture(self)
    }

    /// The loader attached to an isolate.
    pub fn loader_of(&self, iso: IsolateId) -> Result<LoaderId> {
        self.isolates
            .get(iso.0 as usize)
            .map(|i| i.loader)
            .ok_or(VmError::BadIsolate(iso))
    }

    /// The isolate an existing loader is attached to.
    pub fn isolate_of_loader(&self, loader: LoaderId) -> IsolateId {
        self.loaders[loader.0 as usize].isolate
    }

    /// Looks up an isolate.
    pub fn isolate(&self, iso: IsolateId) -> Result<&Isolate> {
        self.isolates
            .get(iso.0 as usize)
            .ok_or(VmError::BadIsolate(iso))
    }

    #[allow(dead_code)]
    pub(crate) fn isolate_mut(&mut self, iso: IsolateId) -> &mut Isolate {
        &mut self.isolates[iso.0 as usize]
    }

    /// Number of isolates ever created.
    pub fn isolate_count(&self) -> usize {
        self.isolates.len()
    }

    /// Adds class-file bytes to a loader's class path.
    pub fn add_class_bytes(&mut self, loader: LoaderId, name: &str, bytes: Vec<u8>) {
        self.loaders[loader.0 as usize]
            .classpath
            .insert(name.to_owned(), bytes);
    }

    /// Adds class-file bytes to the bootstrap (system) class path.
    pub fn add_system_class_bytes(&mut self, name: &str, bytes: Vec<u8>) {
        self.add_class_bytes(LoaderId::BOOTSTRAP, name, bytes);
    }

    /// Serializes and installs a built system class.
    pub fn install_system_class(&mut self, class: &ClassFile) -> Result<ClassId> {
        let name = class.name()?.to_owned();
        let bytes = ijvm_classfile::writer::write_class(class)?;
        self.add_system_class_bytes(&name, bytes);
        self.load_class(LoaderId::BOOTSTRAP, &name)
    }

    /// Registers a native implementation.
    pub fn register_native(
        &mut self,
        class_name: &str,
        method_name: &str,
        descriptor: &str,
        f: NativeFn,
    ) {
        self.natives
            .register(class_name, method_name, descriptor, f);
        // Rebind any already-linked method of that name.
        for class in &mut self.classes {
            if &*class.name == class_name {
                for m in class.methods.iter_mut() {
                    if &*m.name == method_name && &*m.descriptor == descriptor {
                        m.native_idx = self.natives.lookup(class_name, method_name, descriptor);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Class loading and linking
    // ------------------------------------------------------------------

    /// Loads (or returns the already-loaded) class `name` through `loader`.
    ///
    /// Non-bootstrap loaders delegate to the bootstrap loader first, so
    /// system classes are shared by all isolates (their *code* is shared;
    /// their static state lives in per-isolate mirrors).
    pub fn load_class(&mut self, loader: LoaderId, name: &str) -> Result<ClassId> {
        if let Some(&id) = self.class_index.get(&(loader, name.to_owned())) {
            return Ok(id);
        }
        if loader != LoaderId::BOOTSTRAP {
            if let Some(&id) = self
                .class_index
                .get(&(LoaderId::BOOTSTRAP, name.to_owned()))
            {
                return Ok(id);
            }
            if self.loaders[0].classpath.contains_key(name) {
                return self.load_class(LoaderId::BOOTSTRAP, name);
            }
            // Bundle-import delegation: defining loader stays the delegate,
            // so the class's isolate is the exporting bundle's.
            if !self.loaders[loader.0 as usize].classpath.contains_key(name) {
                let delegates = self.loaders[loader.0 as usize].delegates.clone();
                for d in delegates {
                    if let Some(&id) = self.class_index.get(&(d, name.to_owned())) {
                        return Ok(id);
                    }
                    if self.loaders[d.0 as usize].classpath.contains_key(name) {
                        return self.load_class(d, name);
                    }
                }
            }
        }
        let key = (loader, name.to_owned());
        if !self.loading.insert(key.clone()) {
            return Err(VmError::LinkError(format!("class circularity: {name}")));
        }
        let result = self.load_class_inner(loader, name);
        self.loading.remove(&key);
        result
    }

    fn load_class_inner(&mut self, loader: LoaderId, name: &str) -> Result<ClassId> {
        let bytes = self.loaders[loader.0 as usize]
            .classpath
            .get(name)
            .cloned()
            .ok_or_else(|| VmError::ClassNotFound {
                name: name.to_owned(),
            })?;
        let cf = ijvm_classfile::reader::read_class(&bytes)?;
        if cf.name()? != name {
            return Err(VmError::LinkError(format!(
                "class file for {name} declares name {}",
                cf.name()?
            )));
        }
        self.define_class(loader, cf)
    }

    /// Links a parsed class file into the VM under `loader`.
    pub fn define_class(&mut self, loader: LoaderId, cf: ClassFile) -> Result<ClassId> {
        let name: Arc<str> = Arc::from(cf.name()?);

        let super_class = match cf.super_name()? {
            Some(s) => Some(self.load_class(loader, s)?),
            None => None,
        };
        let interface_names: Vec<String> = cf
            .interface_names()?
            .into_iter()
            .map(str::to_owned)
            .collect();
        let mut interfaces = Vec::with_capacity(interface_names.len());
        for i in &interface_names {
            interfaces.push(self.load_class(loader, i)?);
        }

        let id = ClassId(self.classes.len() as u32);
        let is_system = self.loaders[loader.0 as usize].is_system;
        let isolate = self.loaders[loader.0 as usize].isolate;

        // Flattened instance layout: inherited fields first.
        let mut instance_fields: Vec<FieldDesc> = match super_class {
            Some(s) => self.classes[s.0 as usize].instance_fields.clone(),
            None => Vec::new(),
        };
        let mut static_fields = Vec::new();
        for f in &cf.fields {
            let fd = FieldDesc {
                name: Arc::from(cf.pool.utf8_at(f.name)?),
                descriptor: Arc::from(cf.pool.utf8_at(f.descriptor)?),
                access: f.access,
                declared_in: id,
            };
            if f.access.is_static() {
                static_fields.push(fd);
            } else {
                instance_fields.push(fd);
            }
        }

        // Methods.
        let class_name_owned = name.to_string();
        let mut methods = Vec::with_capacity(cf.methods.len());
        for m in &cf.methods {
            let mname = cf.pool.utf8_at(m.name)?;
            let mdesc = cf.pool.utf8_at(m.descriptor)?;
            let parsed = MethodDescriptor::parse(mdesc)?;
            let mut arg_slots = parsed.param_slots() as u16;
            if !m.access.is_static() {
                arg_slots += 1;
            }
            let code = m.code.as_ref().map(|c| {
                crate::vmrc::VmRc::new(CodeBody {
                    max_stack: c.max_stack,
                    max_locals: c.max_locals,
                    bytes: c.code.clone(),
                    handlers: c.exception_table.clone(),
                })
            });
            let native_idx = if m.access.is_native() {
                self.natives.lookup(&class_name_owned, mname, mdesc)
            } else {
                None
            };
            methods.push(RuntimeMethod {
                name: Arc::from(mname),
                descriptor: Arc::from(mdesc),
                access: m.access,
                arg_slots,
                returns_value: !parsed.is_void(),
                code,
                prepared: None,
                native_idx,
                vslot: None,
                synchronized: m.access.is_synchronized(),
            });
        }

        // Virtual table: copy the super's, then override/extend.
        let mut vtable: Vec<MethodRef> = match super_class {
            Some(s) => self.classes[s.0 as usize].vtable.clone(),
            None => Vec::new(),
        };
        for idx in 0..methods.len() {
            let virtual_candidate = {
                let m = &methods[idx];
                !m.access.is_static()
                    && !m.access.contains(AccessFlags::PRIVATE)
                    && &*m.name != "<init>"
                    && &*m.name != "<clinit>"
            };
            if !virtual_candidate {
                continue;
            }
            // Look for an overridable slot with the same name+descriptor.
            // Entries may reference this very class (methods added earlier
            // in this loop), which is not in `self.classes` yet.
            let mut slot = None;
            for (vi, target) in vtable.iter().enumerate() {
                let tm = if target.class == id {
                    &methods[target.index as usize]
                } else {
                    &self.classes[target.class.0 as usize].methods[target.index as usize]
                };
                if tm.name == methods[idx].name && tm.descriptor == methods[idx].descriptor {
                    slot = Some(vi);
                    break;
                }
            }
            let mref = MethodRef {
                class: id,
                index: idx as u16,
            };
            match slot {
                Some(vi) => {
                    vtable[vi] = mref;
                    methods[idx].vslot = Some(vi as u32);
                }
                None => {
                    vtable.push(mref);
                    methods[idx].vslot = Some(vtable.len() as u32 - 1);
                }
            }
        }

        let rtcp = vec![RtCp::Untouched; cf.pool.len() + 1];
        let class = RuntimeClass {
            id,
            name: Arc::clone(&name),
            loader,
            isolate,
            is_system,
            access: cf.access,
            super_class,
            interfaces,
            instance_fields,
            static_fields,
            methods,
            vtable,
            pool: cf.pool,
            rtcp,
            mirrors: Vec::new(),
            poisoned: false,
        };
        self.classes.push(class);
        self.class_index.insert((loader, name.to_string()), id);

        match &*name {
            "java/lang/Object" if is_system => self.well_known.object = Some(id),
            "java/lang/String" if is_system => self.well_known.string = Some(id),
            "java/lang/Class" if is_system => self.well_known.class = Some(id),
            _ => {}
        }
        Ok(id)
    }

    /// Shared access to a loaded class.
    pub fn class(&self, id: ClassId) -> &RuntimeClass {
        &self.classes[id.0 as usize]
    }

    #[allow(dead_code)]
    pub(crate) fn class_mut(&mut self, id: ClassId) -> &mut RuntimeClass {
        &mut self.classes[id.0 as usize]
    }

    /// Looks up an already-loaded class by loader and name.
    pub fn find_class(&self, loader: LoaderId, name: &str) -> Option<ClassId> {
        self.class_index
            .get(&(loader, name.to_owned()))
            .or_else(|| {
                self.class_index
                    .get(&(LoaderId::BOOTSTRAP, name.to_owned()))
            })
            .copied()
    }

    /// Number of loaded classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// `true` if `sub` equals or descends from `sup` (classes only).
    pub fn is_subclass_of(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.classes[c.0 as usize].super_class;
        }
        false
    }

    /// `true` if `sub` is assignable to `sup` (walks superclasses and
    /// interfaces transitively).
    pub fn is_assignable_to(&self, sub: ClassId, sup: ClassId) -> bool {
        if self.is_subclass_of(sub, sup) {
            return true;
        }
        let mut cur = Some(sub);
        while let Some(c) = cur {
            let class = &self.classes[c.0 as usize];
            for &i in &class.interfaces {
                if self.is_assignable_to(i, sup) {
                    return true;
                }
            }
            cur = class.super_class;
        }
        false
    }

    // ------------------------------------------------------------------
    // Mirrors (per-isolate static state)
    // ------------------------------------------------------------------

    /// The mirror index used for `iso` under the current isolation mode:
    /// in `Shared` mode everything maps to slot 0 (one shared copy of
    /// statics/strings/Class objects — the vulnerable baseline).
    #[inline]
    pub(crate) fn mirror_index(&self, iso: IsolateId) -> usize {
        match self.options.isolation {
            IsolationMode::Shared => 0,
            IsolationMode::Isolated => iso.0 as usize,
        }
    }

    /// Ensures the `(class, iso)` mirror exists (uninitialized), returning
    /// whether it had to be created.
    pub(crate) fn ensure_mirror(&mut self, class: ClassId, iso: IsolateId) -> bool {
        let mi = self.mirror_index(iso);
        if self.classes[class.0 as usize]
            .mirrors
            .get(mi)
            .map(|m| m.is_some())
            .unwrap_or(false)
        {
            return false;
        }
        // Allocate the per-isolate java.lang.Class object.
        let class_object = self.alloc_class_object(class, iso);
        let c = &mut self.classes[class.0 as usize];
        if c.mirrors.len() <= mi {
            c.mirrors.resize(mi + 1, None);
        }
        let statics: Box<[Value]> = c
            .static_fields
            .iter()
            .map(|f| Value::default_for_descriptor(&f.descriptor))
            .collect();
        c.mirrors[mi] = Some(TaskClassMirror {
            init: InitState::Uninitialized,
            statics,
            class_object,
        });
        true
    }

    fn alloc_class_object(&mut self, class: ClassId, iso: IsolateId) -> GcRef {
        let class_class = self.well_known.class;
        let name = self.classes[class.0 as usize].name.to_string();
        match class_class {
            Some(cc) => {
                let name_ref = self.intern_string(iso, &name);
                let nfields = self.classes[cc.0 as usize].instance_fields.len();
                let mut fields = vec![Value::Null; nfields];
                if let Some(slot) = self.classes[cc.0 as usize].find_instance_slot("name") {
                    fields[slot as usize] = Value::Ref(name_ref);
                }
                self.alloc_raw(cc, iso, ObjBody::Fields(fields.into_boxed_slice()), "")
            }
            None => {
                // Bootstrapping before java/lang/Class exists: a bare object.
                let oc = self.well_known.object.unwrap_or(class);
                self.alloc_raw(oc, iso, ObjBody::Fields(Box::new([])), "")
            }
        }
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Raw allocation, charging `iso` (paper §3.2: objects are charged to
    /// the allocating isolate). Does not run constructors or limit checks.
    pub(crate) fn alloc_raw(
        &mut self,
        class: ClassId,
        iso: IsolateId,
        body: ObjBody,
        array_desc: &str,
    ) -> GcRef {
        let obj = Object {
            class,
            array_desc: array_desc.to_owned(),
            owner: iso,
            is_connection: false,
            mark: false,
            monitor: None,
            body,
        };
        let size = obj.size_bytes();
        self.allocated_since_gc += size;
        if self.options.accounting {
            if let Some(i) = self.isolates.get_mut(iso.0 as usize) {
                i.stats.allocated_bytes += size as u64;
                i.stats.allocated_objects += 1;
            }
        }
        self.heap.alloc(obj)
    }

    /// Allocates an instance of `class` with default field values,
    /// enforcing the heap limit (GC first, then `OutOfMemoryError`).
    pub(crate) fn alloc_instance(
        &mut self,
        class: ClassId,
        iso: IsolateId,
    ) -> std::result::Result<GcRef, Thrown> {
        let nfields = self.classes[class.0 as usize].instance_fields.len();
        let size = crate::heap::OBJECT_HEADER_BYTES + nfields * 8;
        self.check_heap(size, iso)?;
        let fields: Box<[Value]> = self.classes[class.0 as usize]
            .instance_fields
            .iter()
            .map(|f| Value::default_for_descriptor(&f.descriptor))
            .collect();
        Ok(self.alloc_raw(class, iso, ObjBody::Fields(fields), ""))
    }

    /// Enforces the heap limit before an allocation of `size` bytes.
    pub(crate) fn check_heap(
        &mut self,
        size: usize,
        iso: IsolateId,
    ) -> std::result::Result<(), Thrown> {
        if self.heap.used_bytes() + size > self.options.heap_limit_bytes
            || self.allocated_since_gc > self.options.gc_threshold_bytes
        {
            self.collect_garbage(Some(iso));
            if self.heap.used_bytes() + size > self.options.heap_limit_bytes {
                return Err(Thrown::ByName {
                    class_name: "java/lang/OutOfMemoryError",
                    message: "Java heap space".to_owned(),
                });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Strings
    // ------------------------------------------------------------------

    /// Interns `s` in `iso`'s string map (paper §3.1: per-isolate string
    /// maps; in `Shared` mode there is a single global map).
    pub fn intern_string(&mut self, iso: IsolateId, s: &str) -> GcRef {
        let mi = self.mirror_index(iso) as u16;
        let map_iso = if self.isolates.is_empty() {
            0
        } else {
            mi.min(self.isolates.len() as u16 - 1)
        };
        if let Some(i) = self.isolates.get(map_iso as usize) {
            if let Some(&r) = i.strings.get(s) {
                if self.heap.is_live(r) {
                    return r;
                }
            }
        }
        let r = self.new_string(iso, s);
        if let Some(i) = self.isolates.get_mut(map_iso as usize) {
            i.strings.insert(s.to_owned(), r);
        }
        r
    }

    /// Allocates a fresh (non-interned) string object charged to `iso`.
    pub fn new_string(&mut self, iso: IsolateId, s: &str) -> GcRef {
        let chars: Box<[u16]> = s.encode_utf16().collect();
        let string_class = self
            .well_known
            .string
            .expect("java/lang/String must be installed before creating strings");
        let arr = self.alloc_raw(
            self.well_known.object.expect("bootstrap installed"),
            iso,
            ObjBody::ArrChar(chars),
            "[C",
        );
        let nfields = self.classes[string_class.0 as usize].instance_fields.len();
        let mut fields = vec![Value::Null; nfields];
        let vslot = self.classes[string_class.0 as usize]
            .find_instance_slot("value")
            .expect("String.value field");
        fields[vslot as usize] = Value::Ref(arr);
        self.alloc_raw(
            string_class,
            iso,
            ObjBody::Fields(fields.into_boxed_slice()),
            "",
        )
    }

    /// Reads a Java string back into Rust. Returns `None` if `r` is not a
    /// string object.
    pub fn read_string(&self, r: GcRef) -> Option<String> {
        let obj = self.heap.get(r);
        let string_class = self.well_known.string?;
        if obj.class != string_class {
            return None;
        }
        let vslot = self.classes[string_class.0 as usize].find_instance_slot("value")?;
        let ObjBody::Fields(fields) = &obj.body else {
            return None;
        };
        let arr = fields[vslot as usize].as_ref()?;
        match &self.heap.get(arr).body {
            ObjBody::ArrChar(chars) => Some(String::from_utf16_lossy(chars)),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Threads and scheduling
    // ------------------------------------------------------------------

    /// Spawns a green thread running `method` (a static method) with
    /// `args`, on behalf of `creator`. Enforces the thread limit.
    pub fn spawn_thread(
        &mut self,
        name: &str,
        method: MethodRef,
        args: Vec<Value>,
        creator: IsolateId,
    ) -> Result<ThreadId> {
        let live = self.threads.iter().filter(|t| !t.is_terminated()).count();
        if live >= self.options.max_threads {
            return Err(VmError::Internal("thread limit exceeded".to_owned()));
        }
        let tid = ThreadId(self.threads.len() as u32);
        let mut thread = VmThread::new(tid, name, creator);
        let frame = self.make_frame(method, args, creator);
        thread.current_isolate = frame.isolate;
        thread.frames.push(frame);
        if self.options.accounting {
            if let Some(i) = self.isolates.get_mut(creator.0 as usize) {
                i.stats.threads_created += 1;
                i.stats.threads_live += 1;
            }
        }
        self.threads.push(thread);
        self.run_queue.push_back(tid);
        Ok(tid)
    }

    /// Builds a frame for `method` with `args` already in locals.
    /// The frame's isolate follows paper §3.1: system-library code and
    /// class initializers execute in the caller's isolate; everything else
    /// executes in its defining class's isolate.
    pub(crate) fn make_frame(
        &self,
        method: MethodRef,
        args: Vec<Value>,
        caller_isolate: IsolateId,
    ) -> Frame {
        let class = &self.classes[method.class.0 as usize];
        let m = &class.methods[method.index as usize];
        let code = m
            .code
            .as_ref()
            .expect("make_frame on non-bytecode method")
            .share();
        let is_system = class.is_system;
        let isolate = if self.frame_executes_in_caller(method) {
            caller_isolate
        } else {
            class.isolate
        };
        let mut locals = args;
        locals.resize(code.max_locals as usize, Value::Int(0));
        let needs_sync_enter = m.synchronized;
        Frame {
            method,
            class: method.class,
            isolate,
            caller_isolate,
            is_system,
            code,
            pc: 0,
            locals,
            stack: Vec::with_capacity(code_stack_hint(
                &self.classes[method.class.0 as usize],
                method.index,
            )),
            sync_object: None,
            needs_sync_enter,
            poisoned_return: None,
        }
    }

    /// The paper-§3.1 frame-isolate routing rule, shared by `make_frame`
    /// and the engine's fused `CallSite` capture so the two can never
    /// diverge: system-library code and class initializers execute in the
    /// caller's isolate (as does everything in `Shared` mode); task code
    /// executes in its defining class's isolate.
    pub(crate) fn frame_executes_in_caller(&self, method: MethodRef) -> bool {
        let class = &self.classes[method.class.0 as usize];
        let m = &class.methods[method.index as usize];
        class.is_system || &*m.name == "<clinit>" || self.options.isolation == IsolationMode::Shared
    }

    /// Shared thread accessor.
    pub fn thread(&self, tid: ThreadId) -> Result<&VmThread> {
        self.threads
            .get(tid.0 as usize)
            .ok_or(VmError::BadThread(tid))
    }

    pub(crate) fn thread_mut(&mut self, tid: ThreadId) -> &mut VmThread {
        &mut self.threads[tid.0 as usize]
    }

    /// Number of threads ever created.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Makes a thread runnable and queues it.
    pub(crate) fn wake(&mut self, tid: ThreadId) {
        let t = &mut self.threads[tid.0 as usize];
        if !t.is_terminated() {
            t.state = ThreadState::Runnable;
            if !self.run_queue.contains(&tid) {
                self.run_queue.push_back(tid);
            }
        }
    }

    /// Runs until idle, deadlock or budget exhaustion.
    pub fn run(&mut self, budget: Option<u64>) -> RunOutcome {
        let mut executed: u64 = 0;
        loop {
            if self.exit_code.is_some() {
                return RunOutcome::Idle;
            }
            if let Some(b) = budget {
                if executed >= b {
                    return RunOutcome::BudgetExhausted;
                }
            }
            let Some(tid) = self.next_runnable() else {
                // Nothing runnable: maybe sleepers.
                if self.advance_clock_to_next_wakeup() {
                    continue;
                }
                // Threads parked in cross-unit calls are waiting on the
                // scheduler's mail delivery, not on each other.
                if self.port.has_waiters() {
                    return RunOutcome::Blocked;
                }
                // Idle service pumps are not "work": a unit whose only
                // parked threads await requests has finished.
                let any_blocked = self.threads.iter().any(|t| {
                    !t.is_terminated()
                        && !t.is_runnable()
                        && t.state != crate::thread::ThreadState::ServicePump
                });
                return if any_blocked {
                    RunOutcome::Deadlock
                } else {
                    RunOutcome::Idle
                };
            };
            let quantum = self.options.quantum;
            let consumed = crate::interp::step_thread(self, tid, quantum);
            executed += consumed as u64;
            self.vclock += consumed as u64;

            // CPU sampling (paper §3.2): charge the whole slice to the
            // isolate the thread is in *now* — the sampled estimator whose
            // imprecision §4.4 measures.
            if self.options.accounting && consumed > 0 {
                let iso = self.threads[tid.0 as usize].current_isolate;
                if let Some(i) = self.isolates.get_mut(iso.0 as usize) {
                    i.stats.cpu_sampled += consumed as u64;
                }
            }
            if self.trace_enabled && consumed > 0 {
                let iso = self.threads[tid.0 as usize].current_isolate;
                self.trace_emit(
                    crate::trace::EventKind::QuantumEnd,
                    Some(iso),
                    Some(tid),
                    consumed as u64,
                );
            }

            let t = &self.threads[tid.0 as usize];
            if t.is_runnable() {
                self.run_queue.push_back(tid);
            } else if t.is_terminated() {
                self.on_thread_exit(tid);
            }
            self.poll_unblock();
        }
    }

    fn next_runnable(&mut self) -> Option<ThreadId> {
        while let Some(tid) = self.run_queue.pop_front() {
            if self.threads[tid.0 as usize].is_runnable() {
                return Some(tid);
            }
        }
        None
    }

    /// Advances the virtual clock to the earliest sleeper and wakes it.
    /// Returns `false` when no thread is sleeping.
    fn advance_clock_to_next_wakeup(&mut self) -> bool {
        let mut min_until: Option<u64> = None;
        for t in &self.threads {
            if let ThreadState::Sleeping { until } = t.state {
                min_until = Some(min_until.map_or(until, |m: u64| m.min(until)));
            }
        }
        let Some(until) = min_until else { return false };
        self.vclock = self.vclock.max(until);
        let woken: Vec<ThreadId> = self
            .threads
            .iter()
            .filter(|t| matches!(t.state, ThreadState::Sleeping { until } if until <= self.vclock))
            .map(|t| t.id)
            .collect();
        for tid in woken {
            self.wake(tid);
        }
        true
    }

    /// Re-checks blocked threads whose wake condition may have changed
    /// (class init finished, interrupt delivered, sleep elapsed).
    pub(crate) fn poll_unblock(&mut self) {
        let now = self.vclock;
        let mut to_wake = Vec::new();
        let mut to_interrupt = Vec::new();
        for t in &self.threads {
            match t.state {
                ThreadState::Sleeping { .. }
                | ThreadState::WaitingOnMonitor(_)
                | ThreadState::BlockedOnPort { .. }
                | ThreadState::BlockedOnFuture { .. }
                | ThreadState::BlockedOnQuota
                    if t.interrupted =>
                {
                    // Interrupt pulls the thread out of its park with an
                    // InterruptedException (paper §3.3 uses exactly this to
                    // abort sleeps and I/O during isolate termination).
                    to_interrupt.push(t.id);
                }
                ThreadState::Sleeping { until } if until <= now => {
                    to_wake.push(t.id);
                }
                ThreadState::BlockedOnClassInit { class, isolate } => {
                    let mi = self.mirror_index(isolate);
                    let done = self.classes[class.0 as usize]
                        .mirrors
                        .get(mi)
                        .and_then(|m| m.as_ref())
                        .map(|m| matches!(m.init, InitState::Initialized | InitState::Failed))
                        .unwrap_or(true);
                    if done {
                        to_wake.push(t.id);
                    }
                }
                _ => {}
            }
        }
        for tid in to_wake {
            self.wake(tid);
        }
        for tid in to_interrupt {
            self.threads[tid.0 as usize].interrupted = false;
            let ex = crate::interp::alloc_exception(
                self,
                tid,
                "java/lang/InterruptedException",
                "interrupted while parked",
            );
            self.threads[tid.0 as usize].pending_exception = Some(ex);
            self.wake(tid);
        }
    }

    pub(crate) fn on_thread_exit(&mut self, tid: ThreadId) {
        let creator = self.threads[tid.0 as usize].creator_isolate;
        if self.options.accounting {
            if let Some(i) = self.isolates.get_mut(creator.0 as usize) {
                i.stats.threads_live = i.stats.threads_live.saturating_sub(1);
            }
        }
        // Wake joiners.
        let joiners: Vec<ThreadId> = self
            .threads
            .iter()
            .filter(|t| t.state == ThreadState::BlockedOnJoin(tid))
            .map(|t| t.id)
            .collect();
        for j in joiners {
            self.wake(j);
        }
    }

    /// Convenience: spawns a thread on a static method, runs to idle, and
    /// returns the method's return value. Errors on uncaught exceptions.
    pub fn call_static(
        &mut self,
        class: ClassId,
        name: &str,
        descriptor: &str,
        args: Vec<Value>,
    ) -> Result<Option<Value>> {
        let iso = {
            let c = &self.classes[class.0 as usize];
            if c.is_system {
                IsolateId::ISOLATE0
            } else {
                c.isolate
            }
        };
        self.call_static_as(class, name, descriptor, args, iso)
    }

    /// Like [`Vm::call_static`] with an explicit calling isolate.
    pub fn call_static_as(
        &mut self,
        class: ClassId,
        name: &str,
        descriptor: &str,
        args: Vec<Value>,
        caller: IsolateId,
    ) -> Result<Option<Value>> {
        let index = self.classes[class.0 as usize]
            .find_method(name, descriptor)
            .ok_or_else(|| VmError::NoSuchMember {
                what: format!(
                    "{}.{}:{}",
                    self.classes[class.0 as usize].name, name, descriptor
                ),
            })?;
        let mref = MethodRef { class, index };
        let tid = self.spawn_thread(&format!("call:{name}"), mref, args, caller)?;
        match self.run(None) {
            // A standalone VM has no scheduler to deliver port mail, so a
            // blocked cross-unit call can never complete here.
            RunOutcome::Deadlock | RunOutcome::Blocked => return Err(VmError::Deadlock),
            RunOutcome::BudgetExhausted => return Err(VmError::BudgetExhausted),
            RunOutcome::Idle => {}
        }
        self.thread_outcome(tid)
    }

    /// The outcome of a finished thread, as [`Vm::call_static`] reports
    /// it: its return value, or the uncaught exception that killed it as
    /// a [`VmError::UncaughtException`]. Shared with the cluster
    /// scheduler so a unit run under [`crate::sched::Cluster`] reports
    /// results identically to a plain `call_static` run.
    pub fn thread_outcome(&self, tid: ThreadId) -> Result<Option<Value>> {
        let t = self.thread(tid)?;
        if let Some(ex) = t.uncaught {
            let class_name = self.classes[self.heap.get(ex).class.0 as usize]
                .name
                .to_string();
            let message = self.exception_message(ex);
            return Err(VmError::UncaughtException {
                class_name,
                message,
            });
        }
        Ok(t.result)
    }

    /// Flushes every thread's pending exactly-counted instructions
    /// (`insns_since_switch`) into its *current* isolate through
    /// [`ResourceStats::charge_cpu`] — the same attribution an
    /// isolate-switch flush would make, just taken early. The cluster
    /// scheduler calls this at every quantum-slice boundary so no
    /// instruction is in flight when a unit migrates between workers;
    /// totals are unchanged because the in-VM flush points drain the
    /// same counter.
    pub fn flush_pending_cpu(&mut self) {
        if !self.options.accounting {
            return;
        }
        for t in 0..self.threads.len() {
            let insns = std::mem::take(&mut self.threads[t].insns_since_switch);
            if insns > 0 {
                let iso = self.threads[t].current_isolate;
                let mut charged = false;
                if let Some(i) = self.isolates.get_mut(iso.0 as usize) {
                    i.stats.charge_cpu(insns);
                    charged = true;
                }
                if charged {
                    let tid = self.threads[t].id;
                    self.trace_cpu_charge(iso, Some(tid), insns);
                }
            }
        }
    }

    /// The detail message of an exception object, if it has one.
    pub fn exception_message(&self, ex: GcRef) -> Option<String> {
        let obj = self.heap.get(ex);
        let class = &self.classes[obj.class.0 as usize];
        let slot = class.find_instance_slot("message")?;
        let ObjBody::Fields(fields) = &obj.body else {
            return None;
        };
        let r = fields[slot as usize].as_ref()?;
        self.read_string(r)
    }

    // ------------------------------------------------------------------
    // Introspection, console, roots
    // ------------------------------------------------------------------

    /// The VM's virtual clock (total interpreted instructions).
    pub fn vclock(&self) -> u64 {
        self.vclock
    }

    /// Total inter-isolate migrations performed.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Number of collections run.
    pub fn gc_count(&self) -> u64 {
        self.gc_count
    }

    /// Bytes currently on the heap.
    pub fn heap_used(&self) -> usize {
        self.heap.used_bytes()
    }

    /// Live object count.
    pub fn heap_objects(&self) -> usize {
        self.heap.live_objects()
    }

    /// Exit code if `System.exit` was called.
    pub fn exit_code(&self) -> Option<i32> {
        self.exit_code
    }

    /// Resource counters of one isolate.
    pub fn isolate_stats(&self, iso: IsolateId) -> Result<&ResourceStats> {
        Ok(&self.isolate(iso)?.stats)
    }

    /// Snapshot of every isolate's counters, for administrators.
    #[deprecated(
        since = "0.6.0",
        note = "use `Vm::metrics().isolates` — the unified reporting surface"
    )]
    pub fn snapshots(&self) -> Vec<IsolateSnapshot> {
        self.isolate_rows()
    }

    /// Builds the per-isolate accounting rows (shared by the deprecated
    /// [`Vm::snapshots`] and [`Vm::metrics`]).
    fn isolate_rows(&self) -> Vec<IsolateSnapshot> {
        self.isolates
            .iter()
            .map(|i| IsolateSnapshot {
                isolate: i.id,
                name: i.name.clone(),
                state: i.state,
                stats: i.stats.clone(),
            })
            .collect()
    }

    /// The unified metrics snapshot: always-on counters (vclock,
    /// migrations, GC epochs) and the per-isolate accounting rows, plus —
    /// when the flight recorder is on ([`VmOptions::trace`]) — the
    /// trace-derived counters and the per-call latency histogram.
    pub fn metrics(&self) -> crate::trace::VmMetrics {
        use crate::trace::EventKind as K;
        let mut m = crate::trace::VmMetrics {
            vclock: self.vclock,
            isolate_switches: self.migrations,
            gc_epochs: self.gc_count,
            isolates: self.isolate_rows(),
            ..Default::default()
        };
        if let Some(ts) = &self.trace {
            m.quanta = ts.kind_count(K::QuantumEnd);
            m.cpu_charges = ts.kind_count(K::CpuCharge);
            m.cpu_charged_insns = ts.cpu_charged_insns;
            m.sie_raised = ts.kind_count(K::SieRaised);
            m.threads_finished = ts.kind_count(K::ThreadFinish);
            m.isolates_terminated = ts.kind_count(K::IsolateTerminate);
            m.calls_sent = ts.kind_count(K::CallSend);
            m.oneways_sent = ts.kind_count(K::OnewaySend);
            m.calls_served = ts.kind_count(K::CallDeliver);
            m.replies_sent = ts.kind_count(K::ReplySend);
            m.replies_delivered = ts.kind_count(K::ReplyDeliver);
            m.posts_sent = ts.kind_count(K::FuturePost);
            m.futures_resolved = ts.kind_count(K::FutureResolve);
            m.futures_cancelled = ts.kind_count(K::FutureCancel);
            m.quota_parks = ts.kind_count(K::QuotaPark);
            m.quota_unparks = ts.kind_count(K::QuotaUnpark);
            m.services_exported = ts.kind_count(K::ServiceExport);
            m.services_revoked = ts.kind_count(K::ServiceRevoke);
            m.mailbox_high_water = ts.mailbox_high_water;
            m.call_latency = ts.call_latency.clone();
            m.events_recorded = ts.events_recorded;
            m.dropped_events = ts.ring.dropped_events();
        }
        m
    }

    /// Drains the flight recorder's ring, returning the recorded events
    /// in order (empty when tracing is off). The eager counters reported
    /// by [`Vm::metrics`] are unaffected.
    pub fn take_trace_events(&mut self) -> Vec<crate::trace::TraceEvent> {
        match self.trace.as_mut() {
            Some(ts) => ts.ring.drain_ordered(),
            None => Vec::new(),
        }
    }

    /// The `n` hottest methods by profile score (invocations weighted
    /// with back-edges — loop iterations dominate, as a JIT tier wants).
    /// Counters are only bumped while the flight recorder is on and the
    /// threaded engine runs, so this is empty on untraced runs.
    pub fn top_methods(&self, n: usize) -> Vec<crate::trace::MethodHotness> {
        let mut rows: Vec<crate::trace::MethodHotness> = self
            .classes
            .iter()
            .flat_map(|c| c.methods.iter().map(move |m| (c, m)))
            .filter_map(|(c, m)| {
                let p = m.prepared.as_ref()?;
                let (invocations, back_edges) = (p.hot_count.get(), p.back_edges.get());
                if invocations == 0 && back_edges == 0 {
                    return None;
                }
                Some(crate::trace::MethodHotness {
                    class_name: c.name.to_string(),
                    method_name: m.name.to_string(),
                    invocations,
                    back_edges,
                })
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.score()));
        rows.truncate(n);
        rows
    }

    // ------------------------------------------------------------------
    // Flight-recorder emit points (crate-internal)
    // ------------------------------------------------------------------

    /// Records one event. The `trace_enabled` test is the *entire* cost
    /// when tracing is off.
    #[inline]
    pub(crate) fn trace_emit(
        &mut self,
        kind: crate::trace::EventKind,
        iso: Option<IsolateId>,
        tid: Option<ThreadId>,
        payload: u64,
    ) {
        if self.trace_enabled {
            self.trace_emit_cold(kind, iso, tid, payload);
        }
    }

    // Not `#[cold]`: with the recorder on this runs a dozen times per
    // cross-unit call, and cold-section placement is measurable there.
    // The off path never reaches it — `trace_emit`'s cached-bool branch
    // is the entire off cost — so normal layout loses nothing.
    #[inline(never)]
    fn trace_emit_cold(
        &mut self,
        kind: crate::trace::EventKind,
        iso: Option<IsolateId>,
        tid: Option<ThreadId>,
        payload: u64,
    ) {
        use crate::trace::{clamp_id, TraceEvent, TRACE_NONE};
        let Some(ts) = self.trace.as_mut() else {
            return;
        };
        let ev = TraceEvent {
            vclock: self.vclock,
            payload,
            wall_us: ts.wall.sample(self.vclock),
            kind,
            unit: ts.unit,
            isolate: iso.map_or(TRACE_NONE, |i| clamp_id(i.0 as u32)),
            thread: tid.map_or(TRACE_NONE, |t| clamp_id(t.0)),
        };
        ts.kind_counts[kind as usize] += 1;
        ts.events_recorded += 1;
        ts.ring.push(ev);
    }

    /// Records an exact-accounting CPU flush of `insns` instructions into
    /// `iso`. Every [`ResourceStats::charge_cpu`] call site pairs with
    /// exactly one of these, so per-isolate `CpuCharge` payload sums
    /// equal `cpu_exact`.
    #[inline]
    pub(crate) fn trace_cpu_charge(&mut self, iso: IsolateId, tid: Option<ThreadId>, insns: u64) {
        if self.trace_enabled {
            if let Some(ts) = self.trace.as_mut() {
                ts.cpu_charged_insns += insns;
            }
            self.trace_emit_cold(crate::trace::EventKind::CpuCharge, Some(iso), tid, insns);
        }
    }

    /// Records an outbound cross-unit request (`kind` distinguishes a
    /// blocking `Service.call` from a pipelined `Service.post`),
    /// remembering its send-time vclock so [`Vm::trace_reply_deliver`]
    /// can compute the round trip.
    #[inline]
    pub(crate) fn trace_call_send(
        &mut self,
        call: u64,
        iso: IsolateId,
        tid: ThreadId,
        kind: crate::trace::EventKind,
    ) {
        if self.trace_enabled {
            let vclock = self.vclock;
            if let Some(ts) = self.trace.as_mut() {
                ts.call_starts.push((call, vclock));
            }
            self.trace_emit_cold(kind, Some(iso), Some(tid), call);
        }
    }

    /// Records a reply reaching its destination — a blocked caller
    /// (`ReplyDeliver`) or a pending future (`FutureResolve`); the event
    /// payload is the call's round-trip latency in vclock ticks, which
    /// also feeds the [`crate::trace::LatencyHistogram`] behind
    /// [`Vm::metrics`]. `tid` may be `ThreadId(u32::MAX)` when no thread
    /// is parked on the future (the clamp maps it to "no thread").
    #[inline]
    pub(crate) fn trace_reply_deliver(
        &mut self,
        call: u64,
        tid: ThreadId,
        kind: crate::trace::EventKind,
    ) {
        if self.trace_enabled {
            let vclock = self.vclock;
            let mut latency = 0;
            if let Some(ts) = self.trace.as_mut() {
                if let Some(i) = ts.call_starts.iter().position(|&(c, _)| c == call) {
                    latency = vclock.saturating_sub(ts.call_starts.swap_remove(i).1);
                }
                ts.call_latency.record(latency);
            }
            self.trace_emit_cold(kind, None, Some(tid), latency);
        }
    }

    /// Records a mailbox drain of `n` envelopes, tracking the high-water
    /// mark.
    #[inline]
    pub(crate) fn trace_mail_drain(&mut self, n: u64) {
        if self.trace_enabled {
            if let Some(ts) = self.trace.as_mut() {
                ts.mailbox_high_water = ts.mailbox_high_water.max(n);
            }
            self.trace_emit_cold(crate::trace::EventKind::MailDrain, None, None, n);
        }
    }

    /// Estimated *isolation* metadata footprint: task-class-mirror arrays
    /// plus per-isolate string maps and counters (the Figure 3 overheads).
    /// Execution-engine metadata is deliberately excluded — prepared
    /// instruction streams exist identically in `Shared` and `Isolated`
    /// mode and would dilute the isolation-overhead ratio; see
    /// [`Vm::engine_metadata_bytes`].
    pub fn metadata_bytes(&self) -> usize {
        let mirrors: usize = self.classes.iter().map(|c| c.mirror_metadata_bytes()).sum();
        let isolates: usize = self.isolates.iter().map(|i| i.metadata_bytes()).sum();
        mirrors + isolates
    }

    /// Estimated footprint of the quickened engine's pre-decoded
    /// instruction streams and side tables, across all methods that have
    /// executed at least once.
    pub fn engine_metadata_bytes(&self) -> usize {
        self.classes
            .iter()
            .flat_map(|c| &c.methods)
            .filter_map(|m| m.prepared.as_ref())
            .map(|p| p.metadata_bytes())
            .sum()
    }

    /// Lines printed by the guest through `System.println` so far,
    /// draining the buffer.
    pub fn take_console(&mut self) -> Vec<String> {
        std::mem::take(&mut self.console)
    }

    /// Appends a console line (used by print natives).
    pub fn console_print(&mut self, line: String) {
        self.console.push(line);
    }

    /// Pins an object as a host root (survives GC until unpinned).
    pub fn pin(&mut self, r: GcRef) -> usize {
        for (i, slot) in self.host_roots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(r);
                return i;
            }
        }
        self.host_roots.push(Some(r));
        self.host_roots.len() - 1
    }

    /// Releases a pinned root.
    pub fn unpin(&mut self, handle: usize) {
        if let Some(slot) = self.host_roots.get_mut(handle) {
            *slot = None;
        }
    }

    /// Reads a pinned root back.
    pub fn pinned(&self, handle: usize) -> Option<GcRef> {
        self.host_roots.get(handle).copied().flatten()
    }

    /// Direct heap access for embedders (read-only).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Direct mutable heap access for embedders (the OSGi layer and the
    /// communication models use this to copy object graphs).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// Marks an object as an accountable connection and charges its
    /// creation to `iso` (paper §3.2).
    pub fn mark_connection(&mut self, r: GcRef, iso: IsolateId) {
        self.heap.get_mut(r).is_connection = true;
        if self.options.accounting {
            if let Some(i) = self.isolates.get_mut(iso.0 as usize) {
                i.stats.connections_opened += 1;
            }
        }
    }

    /// Charges I/O to `iso` (paper §3.2, JRes-style instrumented streams).
    pub fn charge_io(&mut self, iso: IsolateId, read: u64, written: u64) {
        if self.options.accounting {
            if let Some(i) = self.isolates.get_mut(iso.0 as usize) {
                i.stats.io_read_bytes += read;
                i.stats.io_written_bytes += written;
            }
        }
    }

    /// Marks the VM as exited with `code` (`System.exit`).
    pub fn request_exit(&mut self, code: i32) {
        self.exit_code = Some(code);
    }

    // ------------------------------------------------------------------
    // Native-support API (used by `ijvm-jsl` / `ijvm-osgi` intrinsics)
    // ------------------------------------------------------------------

    /// The isolate `tid` is currently executing in.
    pub fn current_isolate(&self, tid: ThreadId) -> IsolateId {
        self.threads[tid.0 as usize].current_isolate
    }

    /// Parks the current thread for `duration` virtual nanoseconds
    /// (1 interpreted instruction ≈ 1 virtual ns). Used by `Thread.sleep`.
    pub fn native_sleep(&mut self, tid: ThreadId, duration: u64) {
        let until = self.vclock.saturating_add(duration.max(1));
        self.threads[tid.0 as usize].state = ThreadState::Sleeping { until };
        if self.options.accounting {
            let iso = self.threads[tid.0 as usize].creator_isolate;
            if let Some(i) = self.isolates.get_mut(iso.0 as usize) {
                i.stats.threads_parked += 1;
            }
        }
    }

    /// Blocks `tid` until `target` terminates. Used by `Thread.join`.
    /// Returns `false` (no block) when the target is already done.
    pub fn native_join(&mut self, tid: ThreadId, target: ThreadId) -> bool {
        if self
            .threads
            .get(target.0 as usize)
            .map(|t| t.is_terminated())
            .unwrap_or(true)
        {
            return false;
        }
        self.threads[tid.0 as usize].state = ThreadState::BlockedOnJoin(target);
        true
    }

    /// Reads and clears the interrupt flag of `tid`.
    pub fn take_interrupted(&mut self, tid: ThreadId) -> bool {
        std::mem::take(&mut self.threads[tid.0 as usize].interrupted)
    }

    /// Sets the interrupt flag of `tid` and wakes it if parked.
    pub fn interrupt(&mut self, tid: ThreadId) {
        self.threads[tid.0 as usize].interrupted = true;
        self.poll_unblock();
    }

    /// Spawns a green thread executing the *virtual* method
    /// `name:descriptor` on `receiver` (e.g. `Runnable.run()V`), charged
    /// to `creator`. Used by `Thread.start`.
    pub fn spawn_thread_on(
        &mut self,
        thread_name: &str,
        receiver: GcRef,
        name: &str,
        descriptor: &str,
        creator: IsolateId,
    ) -> Result<ThreadId> {
        let class = self.heap.get(receiver).class;
        let mref =
            crate::interp::lookup_virtual(self, class, name, descriptor).ok_or_else(|| {
                VmError::NoSuchMember {
                    what: format!(
                        "{}.{}:{}",
                        self.classes[class.0 as usize].name, name, descriptor
                    ),
                }
            })?;
        self.spawn_thread(thread_name, mref, vec![Value::Ref(receiver)], creator)
    }

    /// Whether a live-thread slot is still available (thread-creation
    /// attacks exhaust this, A5).
    pub fn can_spawn_thread(&self) -> bool {
        self.threads.iter().filter(|t| !t.is_terminated()).count() < self.options.max_threads
    }

    /// Number of currently live (non-terminated) threads.
    pub fn live_threads(&self) -> usize {
        self.threads.iter().filter(|t| !t.is_terminated()).count()
    }

    /// Per-thread state, for administrators and tests.
    pub fn thread_state_of(&self, tid: ThreadId) -> Result<ThreadState> {
        Ok(self.thread(tid)?.state)
    }

    /// The uncaught exception that killed `tid`, if any.
    pub fn thread_uncaught(&self, tid: ThreadId) -> Option<GcRef> {
        self.threads.get(tid.0 as usize).and_then(|t| t.uncaught)
    }

    /// The value returned by `tid`'s entry method, if it finished.
    pub fn thread_result(&self, tid: ThreadId) -> Option<Value> {
        self.threads.get(tid.0 as usize).and_then(|t| t.result)
    }

    /// Drops a finished thread's result and uncaught-exception slots so
    /// the collector can reclaim anything they referenced. Callers that
    /// keep a returned reference must pin it first.
    pub fn clear_thread_result(&mut self, tid: ThreadId) {
        if let Some(t) = self.threads.get_mut(tid.0 as usize) {
            t.result = None;
            t.uncaught = None;
        }
    }

    /// Adds `delegate` to `loader`'s delegation list: class resolution
    /// consults delegates after the bootstrap loader. This is how the OSGi
    /// framework wires bundle imports so a bundle can reference another
    /// bundle's classes (e.g. attack A1 referencing a victim's statics).
    pub fn add_loader_delegate(&mut self, loader: LoaderId, delegate: LoaderId) {
        let l = &mut self.loaders[loader.0 as usize];
        if !l.delegates.contains(&delegate) {
            l.delegates.push(delegate);
        }
    }

    /// State of one isolate.
    pub fn isolate_state(&self, iso: IsolateId) -> Result<IsolateState> {
        Ok(self.isolate(iso)?.state)
    }

    // ------------------------------------------------------------------
    // Public allocation and field helpers (for native implementations)
    // ------------------------------------------------------------------

    /// Allocates an instance of `class` charged to `iso`, with default
    /// field values and no constructor run. Returns `None` when the heap
    /// limit would be exceeded even after a collection (callers turn this
    /// into `OutOfMemoryError`).
    pub fn alloc_object(&mut self, class: ClassId, iso: IsolateId) -> Option<GcRef> {
        self.alloc_instance(class, iso).ok()
    }

    /// Allocates an `Object[]`-style reference array with the given
    /// element descriptor, charged to `iso`.
    pub fn alloc_ref_array(
        &mut self,
        iso: IsolateId,
        elem_desc: &str,
        len: usize,
    ) -> Option<GcRef> {
        let size = crate::heap::OBJECT_HEADER_BYTES + len * 8;
        if self.check_heap(size, iso).is_err() {
            return None;
        }
        let obj_class = self.well_known.object.expect("bootstrap installed");
        let desc = format!("[{elem_desc}");
        Some(self.alloc_raw(
            obj_class,
            iso,
            ObjBody::ArrRef {
                elem_desc: elem_desc.to_owned(),
                data: vec![Value::Null; len].into_boxed_slice(),
            },
            &desc,
        ))
    }

    /// Allocates a `char[]` with the given contents, charged to `iso`.
    pub fn alloc_chars(&mut self, iso: IsolateId, chars: &[u16]) -> Option<GcRef> {
        let size = crate::heap::OBJECT_HEADER_BYTES + chars.len() * 2;
        if self.check_heap(size, iso).is_err() {
            return None;
        }
        let obj_class = self.well_known.object.expect("bootstrap installed");
        Some(self.alloc_raw(obj_class, iso, ObjBody::ArrChar(chars.into()), "[C"))
    }

    /// Reads an instance field by name (searching the flattened layout).
    pub fn get_field(&self, obj: GcRef, name: &str) -> Option<Value> {
        let o = self.heap.get(obj);
        let slot = self.classes[o.class.0 as usize].find_instance_slot(name)?;
        match &o.body {
            ObjBody::Fields(fields) => fields.get(slot as usize).copied(),
            _ => None,
        }
    }

    /// Writes an instance field by name. Returns `false` when the field
    /// does not exist.
    pub fn set_field(&mut self, obj: GcRef, name: &str, v: Value) -> bool {
        let class = self.heap.get(obj).class;
        let Some(slot) = self.classes[class.0 as usize].find_instance_slot(name) else {
            return false;
        };
        match &mut self.heap.get_mut(obj).body {
            ObjBody::Fields(fields) => {
                fields[slot as usize] = v;
                true
            }
            _ => false,
        }
    }
}

fn code_stack_hint(class: &RuntimeClass, index: u16) -> usize {
    class.methods[index as usize]
        .code
        .as_ref()
        .map(|c| c.max_stack as usize)
        .unwrap_or(0)
}
