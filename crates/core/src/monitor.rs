//! Object monitors: `monitorenter`/`monitorexit`, `wait`/`notify`.
//!
//! Attack A2 exploits monitors on *shared* `java.lang.Class` objects: in
//! `Shared` mode a bundle can grab the lock a victim's synchronized static
//! method needs, freezing it forever. In `Isolated` mode each isolate has
//! its own `Class` object, so there is nothing shared to lock.

use crate::heap::MonitorState;
use crate::ids::ThreadId;
use crate::thread::ThreadState;
use crate::value::GcRef;
use crate::vm::{Thrown, Vm};

/// Result of a `monitorenter` attempt.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum EnterResult {
    /// The monitor is now owned by the thread.
    Acquired,
    /// The thread was queued and blocked.
    Blocked,
}

/// Attempts to enter `obj`'s monitor on behalf of `tid`.
pub(crate) fn monitor_enter(vm: &mut Vm, tid: ThreadId, obj: GcRef) -> EnterResult {
    let o = vm.heap.get_mut(obj);
    let mon = o
        .monitor
        .get_or_insert_with(|| Box::new(MonitorState::default()));
    match mon.owner {
        None => {
            mon.owner = Some(tid);
            mon.count = 1;
            EnterResult::Acquired
        }
        Some(owner) if owner == tid => {
            mon.count += 1;
            EnterResult::Acquired
        }
        Some(_) => {
            if !mon.entry_queue.contains(&tid) {
                mon.entry_queue.push_back(tid);
            }
            vm.thread_mut(tid).state = ThreadState::BlockedOnMonitor(obj);
            EnterResult::Blocked
        }
    }
}

/// Exits `obj`'s monitor; errors if `tid` does not own it.
pub(crate) fn monitor_exit(vm: &mut Vm, tid: ThreadId, obj: GcRef) -> Result<(), Thrown> {
    let o = vm.heap.get_mut(obj);
    let Some(mon) = o.monitor.as_mut() else {
        return Err(illegal_monitor_state());
    };
    if mon.owner != Some(tid) {
        return Err(illegal_monitor_state());
    }
    mon.count -= 1;
    if mon.count == 0 {
        mon.owner = None;
        if let Some(next) = mon.entry_queue.pop_front() {
            // Hand-off is not immediate: the woken thread re-executes its
            // monitorenter and contends again (deterministic round-robin).
            vm.wake(next);
        }
    }
    Ok(())
}

/// `Object.wait()`: releases the monitor entirely and parks the thread.
/// Returns the saved recursion count to restore on wake.
#[allow(dead_code)] // wired up by Object.wait natives in ijvm-jsl follow-ups
pub(crate) fn monitor_wait(vm: &mut Vm, tid: ThreadId, obj: GcRef) -> Result<u32, Thrown> {
    let o = vm.heap.get_mut(obj);
    let Some(mon) = o.monitor.as_mut() else {
        return Err(illegal_monitor_state());
    };
    if mon.owner != Some(tid) {
        return Err(illegal_monitor_state());
    }
    let saved = mon.count;
    mon.owner = None;
    mon.count = 0;
    mon.wait_set.push_back(tid);
    let next = mon.entry_queue.pop_front();
    vm.thread_mut(tid).state = ThreadState::WaitingOnMonitor(obj);
    if let Some(next) = next {
        vm.wake(next);
    }
    Ok(saved)
}

/// `Object.notify()`/`notifyAll()`: moves waiters to the entry queue.
#[allow(dead_code)]
pub(crate) fn monitor_notify(
    vm: &mut Vm,
    tid: ThreadId,
    obj: GcRef,
    all: bool,
) -> Result<(), Thrown> {
    let o = vm.heap.get_mut(obj);
    let Some(mon) = o.monitor.as_mut() else {
        return Err(illegal_monitor_state());
    };
    if mon.owner != Some(tid) {
        return Err(illegal_monitor_state());
    }
    let mut to_wake = Vec::new();
    while let Some(w) = mon.wait_set.pop_front() {
        mon.entry_queue.push_back(w);
        to_wake.push(w);
        if !all {
            break;
        }
    }
    // Woken threads recontend for the monitor when scheduled: they retry
    // the acquisition at their wait-resume point.
    for w in to_wake {
        vm.wake(w);
    }
    Ok(())
}

fn illegal_monitor_state() -> Thrown {
    Thrown::ByName {
        class_name: "java/lang/IllegalMonitorStateException",
        message: String::new(),
    }
}
