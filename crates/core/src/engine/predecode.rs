//! One-time translation of raw `Code` bytes into the [`XInsn`] stream.
//!
//! Pre-decoding runs in two passes. Pass 1 walks the bytes once to find
//! instruction boundaries, producing the pc↔index maps that exception
//! tables, suspension points and the disassembler use to move between the
//! byte-pc world (stored in frames) and the index world (used by the
//! quickened dispatch). Pass 2 decodes each instruction into a fixed-width
//! [`XInsn`], fusing immediates, collapsing the `*load_N`/`*store_N`
//! families, resolving numeric `ldc` against the constant pool, mapping
//! branch offsets to instruction indices, and unpacking switch payloads
//! into side tables.
//!
//! Pre-decoding is *total*: malformed bytes become [`XInsn::Invalid`] or
//! [`XInsn::Trap`] instructions that raise `VerifyError` when (and only
//! when) executed, matching the raw interpreter's behaviour of faulting
//! at execution time rather than load time.
//!
//! An optional third pass (`fuse_superinstructions`) runs a peephole
//! over the decoded stream, folding the `Load+Load+Iadd+Store` and
//! `Load+{IConst,Load}+IfICmp` families into single dispatch cases. The
//! fusion is *non-destructive*: only the pattern's first cell is
//! rewritten, the tail cells keep their original instructions, so branch
//! targets and suspension pcs inside a pattern stay executable and the
//! pc↔index maps are untouched.

use super::xinsn::{Cmp, CmpRhs, FusedCmp, IfaceSite, SwitchTable, TrapKind, XInsn, BAD_TARGET};
use super::PreparedCode;
use crate::class::CodeBody;
use ijvm_classfile::{ConstEntry, ConstPool, MethodDescriptor, Opcode};
use std::cell::Cell;
use std::sync::Arc;

/// Byte length of the instruction starting at `pc`, or `None` when its
/// operands run past the end of the code array.
fn insn_len(bytes: &[u8], pc: usize) -> Option<usize> {
    use Opcode as O;
    let op = match Opcode::from_byte(bytes[pc]) {
        Ok(op) => op,
        Err(_) => return Some(1), // raw interpreter advances pc by 1, then throws
    };
    let len = match op {
        O::Bipush | O::Ldc | O::Newarray => 2,
        O::Iload | O::Lload | O::Fload | O::Dload | O::Aload => 2,
        O::Istore | O::Lstore | O::Fstore | O::Dstore | O::Astore => 2,
        O::Sipush | O::LdcW | O::Ldc2W | O::Iinc => 3,
        O::Ifeq | O::Ifne | O::Iflt | O::Ifge | O::Ifgt | O::Ifle => 3,
        O::IfIcmpeq | O::IfIcmpne | O::IfIcmplt | O::IfIcmpge | O::IfIcmpgt | O::IfIcmple => 3,
        O::IfAcmpeq | O::IfAcmpne | O::Ifnull | O::Ifnonnull | O::Goto => 3,
        O::Getstatic | O::Putstatic | O::Getfield | O::Putfield => 3,
        O::Invokevirtual | O::Invokespecial | O::Invokestatic => 3,
        O::New | O::Anewarray | O::Checkcast | O::Instanceof => 3,
        O::Invokeinterface => 5,
        O::Tableswitch => {
            let mut p = pc + 1;
            while !p.is_multiple_of(4) {
                p += 1;
            }
            // default, low, high
            if p + 12 > bytes.len() {
                return None;
            }
            let low = read_i32(bytes, p + 4);
            let high = read_i32(bytes, p + 8);
            let n = (high as i64 - low as i64 + 1).max(0) as usize;
            p += 12;
            if p + 4 * n > bytes.len() {
                return None;
            }
            p + 4 * n - pc
        }
        O::Lookupswitch => {
            let mut p = pc + 1;
            while !p.is_multiple_of(4) {
                p += 1;
            }
            if p + 8 > bytes.len() {
                return None;
            }
            let npairs = read_i32(bytes, p + 4).max(0) as usize;
            p += 8;
            if p + 8 * npairs > bytes.len() {
                return None;
            }
            p + 8 * npairs - pc
        }
        _ => 1,
    };
    if pc + len > bytes.len() {
        None
    } else {
        Some(len)
    }
}

fn read_i32(bytes: &[u8], p: usize) -> i32 {
    i32::from_be_bytes([bytes[p], bytes[p + 1], bytes[p + 2], bytes[p + 3]])
}

fn read_u16(bytes: &[u8], p: usize) -> u16 {
    ((bytes[p] as u16) << 8) | bytes[p + 1] as u16
}

/// Maps a byte-pc branch target to an instruction index, or
/// [`BAD_TARGET`] when it is out of range or not a boundary.
fn map_target(pc_to_idx: &[u32], target: i64) -> u32 {
    if target < 0 || target as usize >= pc_to_idx.len() {
        return BAD_TARGET;
    }
    pc_to_idx[target as usize]
}

/// Pre-decodes one method's code into a [`PreparedCode`] with the
/// superinstruction peephole enabled (the production default).
pub fn predecode(code: &CodeBody, pool: &ConstPool) -> PreparedCode {
    predecode_with(code, pool, true)
}

/// Pre-decodes one method's code into a [`PreparedCode`], optionally
/// fusing superinstructions (`fuse = false` keeps the plain stream, for
/// ablation and the fused-vs-unfused differential tests).
pub fn predecode_with(code: &CodeBody, pool: &ConstPool, fuse: bool) -> PreparedCode {
    let bytes = &code.bytes;

    // Pass 1: instruction boundaries.
    let mut starts: Vec<u32> = Vec::with_capacity(bytes.len() / 2 + 1);
    let mut truncated = false;
    let mut pc = 0usize;
    while pc < bytes.len() {
        starts.push(pc as u32);
        match insn_len(bytes, pc) {
            Some(len) => pc += len,
            None => {
                truncated = true;
                break;
            }
        }
    }

    let mut pc_to_idx = vec![BAD_TARGET; bytes.len() + 1];
    for (idx, &start) in starts.iter().enumerate() {
        pc_to_idx[start as usize] = idx as u32;
    }
    // `bytes.len()` maps to the fell-off-end guard appended below, so a
    // frame suspended exactly past the last instruction resumes into it.
    pc_to_idx[bytes.len()] = starts.len() as u32;
    let mut idx_to_pc: Vec<u32> = starts.clone();
    idx_to_pc.push(bytes.len() as u32);

    // Pass 2: decode.
    let mut insns: Vec<Cell<XInsn>> = Vec::with_capacity(starts.len());
    let mut switches: Vec<SwitchTable> = Vec::new();
    let mut iface_sites: Vec<IfaceSite> = Vec::new();
    for (idx, &start) in starts.iter().enumerate() {
        if truncated && idx == starts.len() - 1 {
            insns.push(Cell::new(XInsn::Trap(TrapKind::Truncated)));
            break;
        }
        let insn = decode_one(
            bytes,
            start as usize,
            pool,
            &pc_to_idx,
            &mut switches,
            &mut iface_sites,
        );
        insns.push(Cell::new(insn));
    }
    // Pass 3 (optional): peephole-fuse superinstructions.
    let mut fused_cmps: Vec<FusedCmp> = Vec::new();
    if fuse {
        fuse_superinstructions(&mut insns, &mut fused_cmps);
    }

    // Guard: execution falling past the last instruction (malformed code
    // with no terminal return/goto/athrow) lands here and faults cleanly
    // instead of running off the stream. Its pc is `bytes.len()`, which
    // `idx_to_pc` already carries as its trailing entry.
    insns.push(Cell::new(XInsn::Trap(TrapKind::FellOffEnd)));

    PreparedCode {
        insns: insns.into_boxed_slice(),
        idx_to_pc: idx_to_pc.into_boxed_slice(),
        pc_to_idx: pc_to_idx.into_boxed_slice(),
        switches: switches.into_boxed_slice(),
        iface_sites: iface_sites.into_boxed_slice(),
        fused_cmps: fused_cmps.into_boxed_slice(),
        call_sites: std::cell::RefCell::new(Vec::new()),
        virt_sites: std::cell::RefCell::new(Vec::new()),
        ldc_sites: std::cell::RefCell::new(Vec::new()),
        threaded: std::cell::OnceCell::new(),
        hot_count: std::cell::Cell::new(0),
        back_edges: std::cell::Cell::new(0),
    }
}

/// Peephole pass: rewrites the first cell of each recognized pattern to a
/// superinstruction. The tail cells stay intact (non-destructive fusion),
/// so the only instructions eligible are pure ones that cannot fault —
/// mid-pattern suspension then behaves exactly like the unfused stream,
/// because resumption and short quanta execute the tail cells one by one.
/// Patterns whose branch target is [`BAD_TARGET`] (malformed bytecode)
/// are left unfused so the faulting pc matches the raw interpreter's.
fn fuse_superinstructions(insns: &mut [Cell<XInsn>], fused_cmps: &mut Vec<FusedCmp>) {
    let get = |i: usize| insns.get(i).map(|c| c.get());
    let mut i = 0;
    while i < insns.len() {
        // Load a; Load b; Iadd; Store c  →  AddStore{a,b,c} (width 4)
        if let (
            Some(XInsn::Load(a)),
            Some(XInsn::Load(b)),
            Some(XInsn::Iadd),
            Some(XInsn::Store(c)),
        ) = (get(i), get(i + 1), get(i + 2), get(i + 3))
        {
            insns[i].set(XInsn::AddStore { a, b, c });
            i += 4;
            continue;
        }
        // Load slot; IConst k; IfICmp  →  FusedCmpBr (width 3)
        // Load slot; Load s;   IfICmp  →  FusedCmpBr (width 3)
        if let Some(XInsn::Load(slot)) = get(i) {
            let rhs = match get(i + 1) {
                Some(XInsn::IConst(k)) => Some(CmpRhs::Const(k)),
                Some(XInsn::Load(s)) => Some(CmpRhs::Local(s)),
                _ => None,
            };
            if let (Some(rhs), Some(XInsn::IfICmp { cmp, target })) = (rhs, get(i + 2)) {
                if target != BAD_TARGET && fused_cmps.len() <= u16::MAX as usize {
                    fused_cmps.push(FusedCmp {
                        slot,
                        rhs,
                        cmp,
                        target,
                    });
                    insns[i].set(XInsn::FusedCmpBr((fused_cmps.len() - 1) as u16));
                    i += 3;
                    continue;
                }
            }
        }
        i += 1;
    }
}

fn decode_one(
    bytes: &[u8],
    pc: usize,
    pool: &ConstPool,
    pc_to_idx: &[u32],
    switches: &mut Vec<SwitchTable>,
    iface_sites: &mut Vec<IfaceSite>,
) -> XInsn {
    use Opcode as O;
    let op = match Opcode::from_byte(bytes[pc]) {
        Ok(op) => op,
        Err(_) => return XInsn::Invalid(bytes[pc]),
    };
    let branch = |off: i16| map_target(pc_to_idx, pc as i64 + off as i64);
    match op {
        O::Nop => XInsn::Nop,
        // ---- constants ----
        O::AconstNull => XInsn::AConstNull,
        O::IconstM1 => XInsn::IConst(-1),
        O::Iconst0 => XInsn::IConst(0),
        O::Iconst1 => XInsn::IConst(1),
        O::Iconst2 => XInsn::IConst(2),
        O::Iconst3 => XInsn::IConst(3),
        O::Iconst4 => XInsn::IConst(4),
        O::Iconst5 => XInsn::IConst(5),
        O::Lconst0 => XInsn::LConst(0),
        O::Lconst1 => XInsn::LConst(1),
        O::Fconst0 => XInsn::FConst(0.0),
        O::Fconst1 => XInsn::FConst(1.0),
        O::Fconst2 => XInsn::FConst(2.0),
        O::Dconst0 => XInsn::DConst(0.0),
        O::Dconst1 => XInsn::DConst(1.0),
        O::Bipush => XInsn::IConst(bytes[pc + 1] as i8 as i32),
        O::Sipush => XInsn::IConst(read_u16(bytes, pc + 1) as i16 as i32),
        O::Ldc | O::LdcW | O::Ldc2W => {
            let idx = if op == O::Ldc {
                bytes[pc + 1] as u16
            } else {
                read_u16(bytes, pc + 1)
            };
            // Numeric constants are isolate-independent: fold them now.
            match pool.get(idx) {
                Ok(ConstEntry::Integer(v)) => XInsn::IConst(*v),
                Ok(ConstEntry::Float(v)) => XInsn::FConst(*v),
                Ok(ConstEntry::Long(v)) => XInsn::LConst(*v),
                Ok(ConstEntry::Double(v)) => XInsn::DConst(*v),
                _ => XInsn::LdcSlow(idx),
            }
        }
        // ---- locals ----
        O::Iload | O::Lload | O::Fload | O::Dload | O::Aload => XInsn::Load(bytes[pc + 1] as u16),
        O::Iload0 | O::Iload1 | O::Iload2 | O::Iload3 => {
            XInsn::Load((op as u8 - O::Iload0 as u8) as u16)
        }
        O::Lload0 | O::Lload1 | O::Lload2 | O::Lload3 => {
            XInsn::Load((op as u8 - O::Lload0 as u8) as u16)
        }
        O::Fload0 | O::Fload1 | O::Fload2 | O::Fload3 => {
            XInsn::Load((op as u8 - O::Fload0 as u8) as u16)
        }
        O::Dload0 | O::Dload1 | O::Dload2 | O::Dload3 => {
            XInsn::Load((op as u8 - O::Dload0 as u8) as u16)
        }
        O::Aload0 | O::Aload1 | O::Aload2 | O::Aload3 => {
            XInsn::Load((op as u8 - O::Aload0 as u8) as u16)
        }
        O::Istore | O::Lstore | O::Fstore | O::Dstore | O::Astore => {
            XInsn::Store(bytes[pc + 1] as u16)
        }
        O::Istore0 | O::Istore1 | O::Istore2 | O::Istore3 => {
            XInsn::Store((op as u8 - O::Istore0 as u8) as u16)
        }
        O::Lstore0 | O::Lstore1 | O::Lstore2 | O::Lstore3 => {
            XInsn::Store((op as u8 - O::Lstore0 as u8) as u16)
        }
        O::Fstore0 | O::Fstore1 | O::Fstore2 | O::Fstore3 => {
            XInsn::Store((op as u8 - O::Fstore0 as u8) as u16)
        }
        O::Dstore0 | O::Dstore1 | O::Dstore2 | O::Dstore3 => {
            XInsn::Store((op as u8 - O::Dstore0 as u8) as u16)
        }
        O::Astore0 | O::Astore1 | O::Astore2 | O::Astore3 => {
            XInsn::Store((op as u8 - O::Astore0 as u8) as u16)
        }
        O::Iinc => XInsn::Iinc {
            slot: bytes[pc + 1] as u16,
            delta: bytes[pc + 2] as i8 as i16,
        },
        // ---- arrays ----
        O::Iaload
        | O::Laload
        | O::Faload
        | O::Daload
        | O::Aaload
        | O::Baload
        | O::Caload
        | O::Saload => XInsn::ArrLoad,
        O::Iastore
        | O::Lastore
        | O::Fastore
        | O::Dastore
        | O::Aastore
        | O::Bastore
        | O::Castore
        | O::Sastore => XInsn::ArrStore,
        O::Arraylength => XInsn::ArrayLength,
        O::Newarray => XInsn::NewArray(bytes[pc + 1]),
        O::Anewarray => XInsn::ANewArray(read_u16(bytes, pc + 1)),
        // ---- stack ----
        O::Pop => XInsn::Pop,
        O::Pop2 => XInsn::Pop2,
        O::Dup => XInsn::Dup,
        O::DupX1 => XInsn::DupX1,
        O::DupX2 => XInsn::DupX2,
        O::Dup2 => XInsn::Dup2,
        O::Dup2X1 => XInsn::Dup2X1,
        O::Dup2X2 => XInsn::Dup2X2,
        O::Swap => XInsn::Swap,
        // ---- arithmetic ----
        O::Iadd => XInsn::Iadd,
        O::Isub => XInsn::Isub,
        O::Imul => XInsn::Imul,
        O::Idiv => XInsn::Idiv,
        O::Irem => XInsn::Irem,
        O::Ineg => XInsn::Ineg,
        O::Ladd => XInsn::Ladd,
        O::Lsub => XInsn::Lsub,
        O::Lmul => XInsn::Lmul,
        O::Ldiv => XInsn::Ldiv,
        O::Lrem => XInsn::Lrem,
        O::Lneg => XInsn::Lneg,
        O::Fadd => XInsn::Fadd,
        O::Fsub => XInsn::Fsub,
        O::Fmul => XInsn::Fmul,
        O::Fdiv => XInsn::Fdiv,
        O::Frem => XInsn::Frem,
        O::Fneg => XInsn::Fneg,
        O::Dadd => XInsn::Dadd,
        O::Dsub => XInsn::Dsub,
        O::Dmul => XInsn::Dmul,
        O::Ddiv => XInsn::Ddiv,
        O::Drem => XInsn::Drem,
        O::Dneg => XInsn::Dneg,
        O::Ishl => XInsn::Ishl,
        O::Ishr => XInsn::Ishr,
        O::Iushr => XInsn::Iushr,
        O::Lshl => XInsn::Lshl,
        O::Lshr => XInsn::Lshr,
        O::Lushr => XInsn::Lushr,
        O::Iand => XInsn::Iand,
        O::Ior => XInsn::Ior,
        O::Ixor => XInsn::Ixor,
        O::Land => XInsn::Land,
        O::Lor => XInsn::Lor,
        O::Lxor => XInsn::Lxor,
        // ---- conversions ----
        O::I2l => XInsn::I2l,
        O::I2f => XInsn::I2f,
        O::I2d => XInsn::I2d,
        O::L2i => XInsn::L2i,
        O::L2f => XInsn::L2f,
        O::L2d => XInsn::L2d,
        O::F2i => XInsn::F2i,
        O::F2l => XInsn::F2l,
        O::F2d => XInsn::F2d,
        O::D2i => XInsn::D2i,
        O::D2l => XInsn::D2l,
        O::D2f => XInsn::D2f,
        O::I2b => XInsn::I2b,
        O::I2c => XInsn::I2c,
        O::I2s => XInsn::I2s,
        // ---- comparisons ----
        O::Lcmp => XInsn::Lcmp,
        O::Fcmpl => XInsn::Fcmp { nan_is_one: false },
        O::Fcmpg => XInsn::Fcmp { nan_is_one: true },
        O::Dcmpl => XInsn::Dcmp { nan_is_one: false },
        O::Dcmpg => XInsn::Dcmp { nan_is_one: true },
        // ---- branches ----
        O::Ifeq | O::Ifne | O::Iflt | O::Ifge | O::Ifgt | O::Ifle => {
            let cmp = match op {
                O::Ifeq => Cmp::Eq,
                O::Ifne => Cmp::Ne,
                O::Iflt => Cmp::Lt,
                O::Ifge => Cmp::Ge,
                O::Ifgt => Cmp::Gt,
                _ => Cmp::Le,
            };
            XInsn::If {
                cmp,
                target: branch(read_u16(bytes, pc + 1) as i16),
            }
        }
        O::IfIcmpeq | O::IfIcmpne | O::IfIcmplt | O::IfIcmpge | O::IfIcmpgt | O::IfIcmple => {
            let cmp = match op {
                O::IfIcmpeq => Cmp::Eq,
                O::IfIcmpne => Cmp::Ne,
                O::IfIcmplt => Cmp::Lt,
                O::IfIcmpge => Cmp::Ge,
                O::IfIcmpgt => Cmp::Gt,
                _ => Cmp::Le,
            };
            XInsn::IfICmp {
                cmp,
                target: branch(read_u16(bytes, pc + 1) as i16),
            }
        }
        O::IfAcmpeq | O::IfAcmpne => XInsn::IfACmp {
            eq: op == O::IfAcmpeq,
            target: branch(read_u16(bytes, pc + 1) as i16),
        },
        O::Ifnull | O::Ifnonnull => XInsn::IfNull {
            is_null: op == O::Ifnull,
            target: branch(read_u16(bytes, pc + 1) as i16),
        },
        O::Goto => XInsn::Goto(branch(read_u16(bytes, pc + 1) as i16)),
        O::Tableswitch => {
            let mut p = pc + 1;
            while !p.is_multiple_of(4) {
                p += 1;
            }
            let default = map_target(pc_to_idx, pc as i64 + read_i32(bytes, p) as i64);
            let low = read_i32(bytes, p + 4);
            let high = read_i32(bytes, p + 8);
            let n = (high as i64 - low as i64 + 1).max(0) as usize;
            let targets: Box<[u32]> = (0..n)
                .map(|i| {
                    map_target(
                        pc_to_idx,
                        pc as i64 + read_i32(bytes, p + 12 + 4 * i) as i64,
                    )
                })
                .collect();
            switches.push(SwitchTable::Table {
                default,
                low,
                targets,
            });
            XInsn::TableSwitch((switches.len() - 1) as u16)
        }
        O::Lookupswitch => {
            let mut p = pc + 1;
            while !p.is_multiple_of(4) {
                p += 1;
            }
            let default = map_target(pc_to_idx, pc as i64 + read_i32(bytes, p) as i64);
            let npairs = read_i32(bytes, p + 4).max(0) as usize;
            let pairs: Box<[(i32, u32)]> = (0..npairs)
                .map(|i| {
                    let base = p + 8 + 8 * i;
                    let key = read_i32(bytes, base);
                    let target =
                        map_target(pc_to_idx, pc as i64 + read_i32(bytes, base + 4) as i64);
                    (key, target)
                })
                .collect();
            switches.push(SwitchTable::Lookup { default, pairs });
            XInsn::LookupSwitch((switches.len() - 1) as u16)
        }
        // ---- returns ----
        O::Return => XInsn::Return,
        O::Ireturn | O::Lreturn | O::Freturn | O::Dreturn | O::Areturn => XInsn::ReturnValue,
        // ---- fields ----
        O::Getstatic => XInsn::GetStatic(read_u16(bytes, pc + 1)),
        O::Putstatic => XInsn::PutStatic(read_u16(bytes, pc + 1)),
        O::Getfield => XInsn::GetField(read_u16(bytes, pc + 1)),
        O::Putfield => XInsn::PutField(read_u16(bytes, pc + 1)),
        // ---- invocation ----
        O::Invokestatic => XInsn::InvokeStatic(read_u16(bytes, pc + 1)),
        O::Invokespecial => XInsn::InvokeSpecial(read_u16(bytes, pc + 1)),
        O::Invokevirtual => XInsn::InvokeVirtual(read_u16(bytes, pc + 1)),
        O::Invokeinterface => {
            let cp = read_u16(bytes, pc + 1);
            // Pre-read the member reference so execution never touches the
            // pool; fall back to the rtcp path when it is malformed.
            let site = pool.member_ref_at(cp).ok().and_then(|(_c, name, desc)| {
                let parsed = MethodDescriptor::parse(desc).ok()?;
                Some(IfaceSite {
                    name: Arc::from(name),
                    descriptor: Arc::from(desc),
                    arg_slots: parsed.param_slots() as u16 + 1,
                    cache: Cell::new(None),
                })
            });
            match site {
                Some(site) => {
                    iface_sites.push(site);
                    XInsn::InvokeInterface((iface_sites.len() - 1) as u16)
                }
                None => XInsn::InvokeIfaceSlow(cp),
            }
        }
        // ---- objects ----
        O::New => XInsn::New(read_u16(bytes, pc + 1)),
        O::Athrow => XInsn::Athrow,
        O::Checkcast => XInsn::Checkcast(read_u16(bytes, pc + 1)),
        O::Instanceof => XInsn::InstanceOf(read_u16(bytes, pc + 1)),
        O::Monitorenter => XInsn::MonitorEnter,
        O::Monitorexit => XInsn::MonitorExit,
    }
}
