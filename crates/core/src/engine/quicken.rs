//! The quickened dispatch loop.
//!
//! Executes threads over the pre-decoded [`XInsn`] stream instead of raw
//! classfile bytes. Constant-pool-indexed instructions arrive in their
//! slow form; the first execution resolves the reference (through the
//! same `resolve_*` helpers — and therefore the same `RtCp` cache and
//! error behaviour — as the raw interpreter) and rewrites the stream cell
//! in place to a direct-operand fast form, then re-dispatches the same
//! cell without recounting the instruction. In `Shared` isolation mode
//! static/`new`/`invokestatic` sites take a second transition to
//! init-elided forms once their class-initialization check has passed,
//! modelling the baseline JIT exactly like the raw interpreter's
//! `RtCp::*Init` fast paths.
//!
//! Semantics intentionally mirror `interp::step_thread_raw`
//! one-for-one: the instruction budget is counted per logical bytecode
//! instruction — operand-fused forms like `Iinc` count once, while
//! superinstructions charge their full logical width (an `AddStore` is 4
//! instructions) and de-fuse when the remaining quantum cannot cover it —
//! `insns_since_switch` flushes at the same yield points, frames always
//! carry *byte* pcs when the thread is suspended (so exception tables,
//! termination stack patching and the disassembler are engine-agnostic),
//! and calls migrate the thread with the same exact CPU flush whether
//! they take the fused `CallSite` path or the shared `invoke_resolved`
//! path.

use super::xinsn::{CmpRhs, LdcSite, SwitchTable, TrapKind, VirtSite, XInsn, BAD_TARGET};
use super::{build_call_site, ensure_prepared, EngineKind};
use crate::class::{ClassTarget, InitState, RtCp};
use crate::heap::ObjBody;
use crate::ids::ThreadId;
use crate::interp::{
    aioobe, alloc_prim_array, arith, check_not_poisoned, cmp3, do_return, ensure_initialized, f2i,
    f2l, fcmp, frame_prologue, internal_err, invoke_fused, invoke_resolved, is_instance,
    load_constant, lookup_virtual, materialize, npe, peek_receiver, resolve_class,
    resolve_direct_method, resolve_instance_field, resolve_interface_method, resolve_static_field,
    resolve_virtual_method, unwind, InitAction, InvokeAction, Prologue,
};
use crate::monitor::{monitor_enter, monitor_exit, EnterResult};
use crate::value::Value;
use crate::vm::{IsolationMode, Thrown, Vm};

/// Whether a fused virtual site's monomorphic cache can still be filled:
/// `Cold` caches the first fuseable receiver; `Polymorphic` (the cache
/// already holds a *different* class) never rebuilds, so megamorphic
/// sites stay allocation-free on the plain vtable path.
#[derive(PartialEq)]
enum CacheState {
    Cold,
    Polymorphic,
}

/// Executes thread `tid` for at most `budget` instructions over the
/// pre-decoded stream, returning how many were consumed.
#[allow(unused_assignments)] // flush resets local_insns even on exit paths
pub(crate) fn step_thread_quickened(vm: &mut Vm, tid: ThreadId, budget: u32) -> u32 {
    debug_assert_eq!(vm.options.engine, EngineKind::Quickened);
    let t = tid.0 as usize;
    let mut consumed: u32 = 0;

    'outer: while consumed < budget {
        let fidx = match frame_prologue(vm, tid) {
            Prologue::Run(fidx) => fidx,
            Prologue::Redeliver => continue 'outer,
            Prologue::Yield => return consumed,
        };

        let method = vm.threads[t].frames[fidx].method;
        let prepared = ensure_prepared(vm, method);
        let entry_pc = vm.threads[t].frames[fidx].pc;
        let Some(entry_idx) = prepared.index_of_pc(entry_pc) else {
            // Only reachable through malformed hand-crafted code; the raw
            // engine would read garbage here, we fail cleanly.
            let ex = materialize(
                vm,
                tid,
                Thrown::ByName {
                    class_name: "java/lang/VerifyError",
                    message: format!("pc {entry_pc} is not an instruction boundary"),
                },
            );
            if unwind(vm, tid, ex) {
                continue 'outer;
            }
            return consumed;
        };
        let mut idx = entry_idx as usize;
        let mut local_insns: u32 = 0;
        let shared_mode = vm.options.isolation == IsolationMode::Shared;

        macro_rules! fr {
            () => {
                vm.threads[t].frames[fidx]
            };
        }
        macro_rules! push {
            ($v:expr) => {
                fr!().stack.push($v)
            };
        }
        macro_rules! pop {
            () => {
                fr!().stack.pop().expect("operand stack underflow")
            };
        }
        // Flushes pending instruction counts and records the byte pc of
        // instruction index `$i` as the frame's resume point.
        macro_rules! flush_at {
            ($i:expr) => {{
                fr!().pc = prepared.idx_to_pc[$i];
                vm.threads[t].insns_since_switch += local_insns as u64;
                consumed += local_insns;
                #[allow(unused_assignments)]
                {
                    local_insns = 0;
                }
            }};
        }
        // Raises a Java exception from the current instruction; handler
        // ranges match against the faulting instruction's start pc.
        macro_rules! throw {
            ($cur:expr, $thrown:expr) => {{
                flush_at!($cur);
                let ex = materialize(vm, tid, $thrown);
                if unwind(vm, tid, ex) {
                    continue 'outer;
                }
                return consumed;
            }};
        }
        macro_rules! check {
            ($cur:expr, $res:expr) => {
                match $res {
                    Ok(v) => v,
                    Err(thrown) => throw!($cur, thrown),
                }
            };
        }
        // Arithmetic helpers (identical to the raw interpreter's).
        macro_rules! binop_i {
            ($m:ident) => {{
                let b = pop!().as_int();
                let a = pop!().as_int();
                push!(Value::Int(a.$m(b)));
            }};
            (op $op:tt) => {{
                let b = pop!().as_int();
                let a = pop!().as_int();
                push!(Value::Int(a $op b));
            }};
        }
        macro_rules! binop_l {
            ($m:ident) => {{
                let b = pop!().as_long();
                let a = pop!().as_long();
                push!(Value::Long(a.$m(b)));
            }};
            (op $op:tt) => {{
                let b = pop!().as_long();
                let a = pop!().as_long();
                push!(Value::Long(a $op b));
            }};
        }
        macro_rules! binop_f {
            ($op:tt) => {{
                let b = pop!().as_float();
                let a = pop!().as_float();
                push!(Value::Float(a $op b));
            }};
        }
        macro_rules! binop_d {
            ($op:tt) => {{
                let b = pop!().as_double();
                let a = pop!().as_double();
                push!(Value::Double(a $op b));
            }};
        }
        macro_rules! conv {
            ($get:ident, $to:ident, $ty:ty) => {{
                let v = pop!().$get();
                push!(Value::$to(v as $ty));
            }};
        }
        // Performs a call whose target method is already resolved and
        // routes the outcome: pushed or suspended frames yield back to
        // the prologue; a completed native falls through to the next
        // instruction unless the thread blocked or an exception was
        // injected during the native (e.g. isolate termination).
        macro_rules! finish_invoke {
            ($cur:expr, $target:expr, $arg_slots:expr) => {{
                let insn_pc = prepared.idx_to_pc[$cur] as usize;
                let action = check!(
                    $cur,
                    invoke_resolved(vm, tid, fidx, $target, $arg_slots, insn_pc)
                );
                match action {
                    InvokeAction::FramePushed | InvokeAction::Suspended => continue 'outer,
                    InvokeAction::NativeDone => {
                        if !vm.threads[t].is_runnable() || vm.threads[t].pending_exception.is_some()
                        {
                            continue 'outer;
                        }
                    }
                }
            }};
        }
        // Performs a call through a fused call site: the frame shape is
        // precomputed, the callee frame always pushes (fused targets are
        // plain bytecode), so control unconditionally yields back to the
        // prologue.
        macro_rules! fused_call {
            ($cur:expr, $site:expr) => {{
                check!($cur, invoke_fused(vm, tid, fidx, &$site));
                continue 'outer;
            }};
        }
        // Quickens an `invokestatic`/`invokespecial` slow form: resolves
        // the target, then rewrites the cell to the fused form (plain
        // bytecode targets — the resolved method and precomputed frame
        // shape move into a call site, so dispatch never re-reads
        // metadata) or to the resolved fallback (native / synchronized /
        // abstract targets, or a full side table).
        macro_rules! quicken_direct_call {
            ($cur:expr, $cp:expr, $fused:ident, $resolved:ident) => {{
                let class_id = vm.threads[t].frames[fidx].class;
                let target = check!($cur, resolve_direct_method(vm, class_id, $cp));
                let arg_slots =
                    vm.classes[target.class.0 as usize].methods[target.index as usize].arg_slots;
                match build_call_site(vm, target) {
                    Some(site) => {
                        let mut sites = prepared.call_sites.borrow_mut();
                        if sites.len() <= u16::MAX as usize {
                            sites.push(site);
                            let si = (sites.len() - 1) as u16;
                            drop(sites);
                            prepared.insns[$cur].set(XInsn::$fused(si));
                        } else {
                            drop(sites);
                            prepared.insns[$cur].set(XInsn::$resolved { target, arg_slots });
                        }
                    }
                    None => {
                        prepared.insns[$cur].set(XInsn::$resolved { target, arg_slots });
                    }
                }
            }};
        }
        // The per-execution class-initialization check I-JVM cannot elide
        // in Isolated mode (paper §3.1): when `<clinit>` must run (or is
        // running on another thread), the frame suspends at this
        // instruction and re-executes it afterwards.
        macro_rules! ensure_class_ready {
            ($cur:expr, $class:expr) => {{
                let cur_iso = vm.threads[t].current_isolate;
                let mi = vm.mirror_index(cur_iso);
                let ready = matches!(
                    vm.classes[$class.0 as usize].mirrors.get(mi),
                    Some(Some(m)) if m.init == InitState::Initialized
                );
                if !ready {
                    match check!($cur, ensure_initialized(vm, tid, $class, cur_iso)) {
                        InitAction::Ready => {}
                        InitAction::Suspend => {
                            vm.threads[t].frames[fidx].pc = prepared.idx_to_pc[$cur];
                            continue 'outer;
                        }
                    }
                }
            }};
        }

        loop {
            if consumed + local_insns >= budget {
                flush_at!(idx);
                return consumed;
            }
            let cur = idx;
            local_insns += 1;
            let mut next = cur + 1;

            // Branches taken by the executed instruction land here; traps
            // for targets inside another instruction's operands.
            macro_rules! branch_to {
                ($target:expr) => {{
                    let target = $target;
                    if target == BAD_TARGET {
                        throw!(
                            cur,
                            internal_err("branch into the middle of an instruction")
                        );
                    }
                    next = target as usize;
                }};
            }

            // The `'redo` loop re-dispatches the same cell after a slow
            // form has been quickened, without recounting the instruction.
            'redo: loop {
                match prepared.insns[cur].get() {
                    XInsn::Nop => {}
                    // ---- constants ----
                    XInsn::AConstNull => push!(Value::Null),
                    XInsn::IConst(v) => push!(Value::Int(v)),
                    XInsn::LConst(v) => push!(Value::Long(v)),
                    XInsn::FConst(v) => push!(Value::Float(v)),
                    XInsn::DConst(v) => push!(Value::Double(v)),
                    XInsn::LdcSlow(cp) => {
                        // String constants quicken to a per-site cached
                        // fast form; class constants (whose resolution can
                        // create mirrors) stay slow and re-resolve every
                        // execution like the raw interpreter.
                        let class_id = vm.threads[t].frames[fidx].class;
                        let is_string = matches!(
                            vm.classes[class_id.0 as usize].pool.get(cp),
                            Ok(ijvm_classfile::ConstEntry::String { .. })
                        );
                        if is_string {
                            let mut sites = prepared.ldc_sites.borrow_mut();
                            if sites.len() <= u16::MAX as usize {
                                sites.push(LdcSite {
                                    cp,
                                    cache: std::cell::Cell::new(None),
                                });
                                let si = (sites.len() - 1) as u16;
                                drop(sites);
                                prepared.insns[cur].set(XInsn::LdcStr(si));
                                continue 'redo;
                            }
                        }
                        flush_at!(next);
                        let v = check!(cur, load_constant(vm, tid, class_id, cp));
                        push!(v);
                    }
                    XInsn::LdcStr(si) => {
                        // Monomorphic (isolate, gc-epoch, ref) cache: a hit
                        // pushes the interned string without touching the
                        // isolate's intern map; any GC (epoch bump),
                        // isolate switch, or ref death re-resolves.
                        let iso = vm.threads[t].current_isolate;
                        let cached = prepared.ldc_sites.borrow()[si as usize].cache.get();
                        match cached {
                            Some((cc, epoch, r))
                                if cc == iso && epoch == vm.gc_count && vm.heap.is_live(r) =>
                            {
                                push!(Value::Ref(r));
                            }
                            _ => {
                                flush_at!(next);
                                let class_id = vm.threads[t].frames[fidx].class;
                                let cp = prepared.ldc_sites.borrow()[si as usize].cp;
                                let v = check!(cur, load_constant(vm, tid, class_id, cp));
                                if let Value::Ref(r) = v {
                                    let epoch = vm.gc_count;
                                    prepared.ldc_sites.borrow()[si as usize]
                                        .cache
                                        .set(Some((iso, epoch, r)));
                                }
                                push!(v);
                            }
                        }
                    }
                    // ---- locals ----
                    XInsn::Load(n) => {
                        let v = fr!().locals[n as usize];
                        push!(v);
                    }
                    XInsn::Store(n) => {
                        let v = pop!();
                        fr!().locals[n as usize] = v;
                    }
                    XInsn::Iinc { slot, delta } => {
                        let f = &mut fr!();
                        f.locals[slot as usize] =
                            Value::Int(f.locals[slot as usize].as_int().wrapping_add(delta as i32));
                    }
                    // ---- superinstructions ----
                    // Fused forms count their full logical width so the
                    // instruction budget, vclock and CPU accounting stay
                    // bit-identical to the unfused stream; when the
                    // remaining quantum cannot cover the width they
                    // de-fuse to their leading `Load` (the tail cells
                    // still hold the original instructions).
                    XInsn::AddStore { a, b, c } => {
                        if budget - consumed - local_insns >= 3 {
                            local_insns += 3;
                            let f = &mut fr!();
                            let v = f.locals[a as usize]
                                .as_int()
                                .wrapping_add(f.locals[b as usize].as_int());
                            f.locals[c as usize] = Value::Int(v);
                            next = cur + 4;
                        } else {
                            let v = fr!().locals[a as usize];
                            push!(v);
                        }
                    }
                    XInsn::FusedCmpBr(si) => {
                        let fc = prepared.fused_cmps[si as usize];
                        if budget - consumed - local_insns >= 2 {
                            local_insns += 2;
                            let f = &fr!();
                            let lhs = f.locals[fc.slot as usize].as_int();
                            let rhs = match fc.rhs {
                                CmpRhs::Const(k) => k,
                                CmpRhs::Local(s) => f.locals[s as usize].as_int(),
                            };
                            if fc.cmp.test(cmp3(lhs, rhs)) {
                                branch_to!(fc.target);
                            } else {
                                next = cur + 3;
                            }
                        } else {
                            let v = fr!().locals[fc.slot as usize];
                            push!(v);
                        }
                    }
                    // ---- array loads/stores ----
                    XInsn::ArrLoad => {
                        let idx_v = pop!().as_int();
                        let arr = pop!();
                        let Some(arr) = arr.as_ref() else {
                            throw!(cur, npe())
                        };
                        let obj = vm.heap.get(arr);
                        let len = obj.body.array_len().unwrap_or(0);
                        if idx_v < 0 || idx_v as usize >= len {
                            throw!(cur, aioobe(idx_v, len));
                        }
                        let i = idx_v as usize;
                        let v = match &obj.body {
                            ObjBody::ArrInt(a) => Value::Int(a[i]),
                            ObjBody::ArrLong(a) => Value::Long(a[i]),
                            ObjBody::ArrFloat(a) => Value::Float(a[i]),
                            ObjBody::ArrDouble(a) => Value::Double(a[i]),
                            ObjBody::ArrRef { data, .. } => data[i],
                            ObjBody::ArrByte(a) => Value::Int(a[i] as i32),
                            ObjBody::ArrChar(a) => Value::Int(a[i] as i32),
                            ObjBody::ArrShort(a) => Value::Int(a[i] as i32),
                            ObjBody::ArrBool(a) => Value::Int(a[i] as i32),
                            ObjBody::Fields(_) => {
                                throw!(cur, internal_err("array load on non-array"))
                            }
                        };
                        push!(v);
                    }
                    XInsn::ArrStore => {
                        let v = pop!();
                        let idx_v = pop!().as_int();
                        let arr = pop!();
                        let Some(arr) = arr.as_ref() else {
                            throw!(cur, npe())
                        };
                        let obj = vm.heap.get_mut(arr);
                        let len = obj.body.array_len().unwrap_or(0);
                        if idx_v < 0 || idx_v as usize >= len {
                            throw!(cur, aioobe(idx_v, len));
                        }
                        let i = idx_v as usize;
                        match &mut obj.body {
                            ObjBody::ArrInt(a) => a[i] = v.as_int(),
                            ObjBody::ArrLong(a) => a[i] = v.as_long(),
                            ObjBody::ArrFloat(a) => a[i] = v.as_float(),
                            ObjBody::ArrDouble(a) => a[i] = v.as_double(),
                            ObjBody::ArrRef { data, .. } => data[i] = v,
                            ObjBody::ArrByte(a) => a[i] = v.as_int() as i8,
                            ObjBody::ArrChar(a) => a[i] = v.as_int() as u16,
                            ObjBody::ArrShort(a) => a[i] = v.as_int() as i16,
                            ObjBody::ArrBool(a) => a[i] = (v.as_int() != 0) as u8,
                            ObjBody::Fields(_) => {
                                throw!(cur, internal_err("array store on non-array"))
                            }
                        }
                    }
                    // ---- stack manipulation ----
                    XInsn::Pop => {
                        pop!();
                    }
                    XInsn::Pop2 => {
                        pop!();
                        pop!();
                    }
                    XInsn::Dup => {
                        let v = *fr!().stack.last().expect("dup on empty stack");
                        push!(v);
                    }
                    XInsn::DupX1 => {
                        let a = pop!();
                        let b = pop!();
                        push!(a);
                        push!(b);
                        push!(a);
                    }
                    XInsn::DupX2 => {
                        let a = pop!();
                        let b = pop!();
                        let c = pop!();
                        push!(a);
                        push!(c);
                        push!(b);
                        push!(a);
                    }
                    XInsn::Dup2 => {
                        let a = pop!();
                        let b = pop!();
                        push!(b);
                        push!(a);
                        push!(b);
                        push!(a);
                    }
                    XInsn::Dup2X1 => {
                        let a = pop!();
                        let b = pop!();
                        let c = pop!();
                        push!(b);
                        push!(a);
                        push!(c);
                        push!(b);
                        push!(a);
                    }
                    XInsn::Dup2X2 => {
                        let a = pop!();
                        let b = pop!();
                        let c = pop!();
                        let d = pop!();
                        push!(b);
                        push!(a);
                        push!(d);
                        push!(c);
                        push!(b);
                        push!(a);
                    }
                    XInsn::Swap => {
                        let a = pop!();
                        let b = pop!();
                        push!(a);
                        push!(b);
                    }
                    // ---- arithmetic ----
                    XInsn::Iadd => binop_i!(wrapping_add),
                    XInsn::Isub => binop_i!(wrapping_sub),
                    XInsn::Imul => binop_i!(wrapping_mul),
                    XInsn::Idiv => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        if b == 0 {
                            throw!(cur, arith());
                        }
                        push!(Value::Int(a.wrapping_div(b)));
                    }
                    XInsn::Irem => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        if b == 0 {
                            throw!(cur, arith());
                        }
                        push!(Value::Int(a.wrapping_rem(b)));
                    }
                    XInsn::Ladd => binop_l!(wrapping_add),
                    XInsn::Lsub => binop_l!(wrapping_sub),
                    XInsn::Lmul => binop_l!(wrapping_mul),
                    XInsn::Ldiv => {
                        let b = pop!().as_long();
                        let a = pop!().as_long();
                        if b == 0 {
                            throw!(cur, arith());
                        }
                        push!(Value::Long(a.wrapping_div(b)));
                    }
                    XInsn::Lrem => {
                        let b = pop!().as_long();
                        let a = pop!().as_long();
                        if b == 0 {
                            throw!(cur, arith());
                        }
                        push!(Value::Long(a.wrapping_rem(b)));
                    }
                    XInsn::Fadd => binop_f!(+),
                    XInsn::Fsub => binop_f!(-),
                    XInsn::Fmul => binop_f!(*),
                    XInsn::Fdiv => binop_f!(/),
                    XInsn::Frem => {
                        let b = pop!().as_float();
                        let a = pop!().as_float();
                        push!(Value::Float(a % b));
                    }
                    XInsn::Dadd => binop_d!(+),
                    XInsn::Dsub => binop_d!(-),
                    XInsn::Dmul => binop_d!(*),
                    XInsn::Ddiv => binop_d!(/),
                    XInsn::Drem => {
                        let b = pop!().as_double();
                        let a = pop!().as_double();
                        push!(Value::Double(a % b));
                    }
                    XInsn::Ineg => {
                        let a = pop!().as_int();
                        push!(Value::Int(a.wrapping_neg()));
                    }
                    XInsn::Lneg => {
                        let a = pop!().as_long();
                        push!(Value::Long(a.wrapping_neg()));
                    }
                    XInsn::Fneg => {
                        let a = pop!().as_float();
                        push!(Value::Float(-a));
                    }
                    XInsn::Dneg => {
                        let a = pop!().as_double();
                        push!(Value::Double(-a));
                    }
                    XInsn::Ishl => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        push!(Value::Int(a.wrapping_shl(b as u32 & 31)));
                    }
                    XInsn::Ishr => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        push!(Value::Int(a.wrapping_shr(b as u32 & 31)));
                    }
                    XInsn::Iushr => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        push!(Value::Int(((a as u32).wrapping_shr(b as u32 & 31)) as i32));
                    }
                    XInsn::Lshl => {
                        let b = pop!().as_int();
                        let a = pop!().as_long();
                        push!(Value::Long(a.wrapping_shl(b as u32 & 63)));
                    }
                    XInsn::Lshr => {
                        let b = pop!().as_int();
                        let a = pop!().as_long();
                        push!(Value::Long(a.wrapping_shr(b as u32 & 63)));
                    }
                    XInsn::Lushr => {
                        let b = pop!().as_int();
                        let a = pop!().as_long();
                        push!(Value::Long(((a as u64).wrapping_shr(b as u32 & 63)) as i64));
                    }
                    XInsn::Iand => binop_i!(op &),
                    XInsn::Ior => binop_i!(op |),
                    XInsn::Ixor => binop_i!(op ^),
                    XInsn::Land => binop_l!(op &),
                    XInsn::Lor => binop_l!(op |),
                    XInsn::Lxor => binop_l!(op ^),
                    // ---- conversions ----
                    XInsn::I2l => conv!(as_int, Long, i64),
                    XInsn::I2f => conv!(as_int, Float, f32),
                    XInsn::I2d => conv!(as_int, Double, f64),
                    XInsn::L2i => conv!(as_long, Int, i32),
                    XInsn::L2f => conv!(as_long, Float, f32),
                    XInsn::L2d => conv!(as_long, Double, f64),
                    XInsn::F2i => {
                        let v = pop!().as_float();
                        push!(Value::Int(f2i(v)));
                    }
                    XInsn::F2l => {
                        let v = pop!().as_float();
                        push!(Value::Long(f2l(v as f64)));
                    }
                    XInsn::F2d => conv!(as_float, Double, f64),
                    XInsn::D2i => {
                        let v = pop!().as_double();
                        push!(Value::Int(f2i(v as f32)));
                    }
                    XInsn::D2l => {
                        let v = pop!().as_double();
                        push!(Value::Long(f2l(v)));
                    }
                    XInsn::D2f => conv!(as_double, Float, f32),
                    XInsn::I2b => {
                        let v = pop!().as_int();
                        push!(Value::Int(v as i8 as i32));
                    }
                    XInsn::I2c => {
                        let v = pop!().as_int();
                        push!(Value::Int(v as u16 as i32));
                    }
                    XInsn::I2s => {
                        let v = pop!().as_int();
                        push!(Value::Int(v as i16 as i32));
                    }
                    // ---- comparisons ----
                    XInsn::Lcmp => {
                        let b = pop!().as_long();
                        let a = pop!().as_long();
                        push!(Value::Int(cmp3(a, b)));
                    }
                    XInsn::Fcmp { nan_is_one } => {
                        let b = pop!().as_float();
                        let a = pop!().as_float();
                        push!(Value::Int(fcmp(a as f64, b as f64, nan_is_one)));
                    }
                    XInsn::Dcmp { nan_is_one } => {
                        let b = pop!().as_double();
                        let a = pop!().as_double();
                        push!(Value::Int(fcmp(a, b, nan_is_one)));
                    }
                    // ---- branches ----
                    XInsn::If { cmp, target } => {
                        let v = pop!().as_int();
                        if cmp.test(v) {
                            branch_to!(target);
                        }
                    }
                    XInsn::IfICmp { cmp, target } => {
                        let b = pop!().as_int();
                        let a = pop!().as_int();
                        if cmp.test(cmp3(a, b)) {
                            branch_to!(target);
                        }
                    }
                    XInsn::IfACmp { eq, target } => {
                        let b = pop!();
                        let a = pop!();
                        if eq == a.ref_eq(b) {
                            branch_to!(target);
                        }
                    }
                    XInsn::IfNull { is_null, target } => {
                        let v = pop!();
                        if is_null == matches!(v, Value::Null) {
                            branch_to!(target);
                        }
                    }
                    XInsn::Goto(target) => branch_to!(target),
                    XInsn::TableSwitch(si) => {
                        let key = pop!().as_int();
                        let target = match &prepared.switches[si as usize] {
                            SwitchTable::Table {
                                default,
                                low,
                                targets,
                            } => {
                                let off = key as i64 - *low as i64;
                                if off < 0 || off >= targets.len() as i64 {
                                    *default
                                } else {
                                    targets[off as usize]
                                }
                            }
                            SwitchTable::Lookup { .. } => {
                                unreachable!("tableswitch with lookup payload")
                            }
                        };
                        branch_to!(target);
                    }
                    XInsn::LookupSwitch(si) => {
                        let key = pop!().as_int();
                        let target = match &prepared.switches[si as usize] {
                            SwitchTable::Lookup { default, pairs } => pairs
                                .iter()
                                .find(|(k, _)| *k == key)
                                .map(|&(_, tgt)| tgt)
                                .unwrap_or(*default),
                            SwitchTable::Table { .. } => {
                                unreachable!("lookupswitch with table payload")
                            }
                        };
                        branch_to!(target);
                    }
                    // ---- returns ----
                    XInsn::Return => {
                        flush_at!(next);
                        if do_return(vm, tid, None) {
                            continue 'outer;
                        }
                        return consumed;
                    }
                    XInsn::ReturnValue => {
                        let v = pop!();
                        flush_at!(next);
                        if do_return(vm, tid, Some(v)) {
                            continue 'outer;
                        }
                        return consumed;
                    }
                    // ---- static fields ----
                    XInsn::GetStatic(cp) => {
                        flush_at!(next);
                        let class_id = vm.threads[t].frames[fidx].class;
                        let (class, slot) = check!(cur, resolve_static_field(vm, class_id, cp));
                        prepared.insns[cur].set(XInsn::GetStaticR { class, slot });
                        continue 'redo;
                    }
                    XInsn::PutStatic(cp) => {
                        flush_at!(next);
                        let class_id = vm.threads[t].frames[fidx].class;
                        let (class, slot) = check!(cur, resolve_static_field(vm, class_id, cp));
                        prepared.insns[cur].set(XInsn::PutStaticR { class, slot });
                        continue 'redo;
                    }
                    insn @ (XInsn::GetStaticR { class, slot }
                    | XInsn::PutStaticR { class, slot }) => {
                        let is_get = matches!(insn, XInsn::GetStaticR { .. });
                        // I-JVM: current-isolate load + mirror index + init
                        // state test on every access (paper §3.1); the
                        // resolution is quickened away, the checks are not.
                        let iso = vm.threads[t].current_isolate;
                        let mi = vm.mirror_index(iso);
                        let ready_value = match vm.classes[class.0 as usize].mirrors.get(mi) {
                            Some(Some(m)) if m.init == InitState::Initialized => {
                                Some(m.statics[slot as usize])
                            }
                            _ => None,
                        };
                        let hit = if let Some(v) = ready_value {
                            if is_get {
                                push!(v);
                            } else {
                                let v = pop!();
                                vm.classes[class.0 as usize].mirrors[mi]
                                    .as_mut()
                                    .expect("checked above")
                                    .statics[slot as usize] = v;
                            }
                            true
                        } else {
                            false
                        };
                        if !hit {
                            flush_at!(next);
                            match check!(cur, ensure_initialized(vm, tid, class, iso)) {
                                InitAction::Ready => {}
                                InitAction::Suspend => {
                                    // Re-execute this instruction once
                                    // <clinit> ran.
                                    vm.threads[t].frames[fidx].pc = prepared.idx_to_pc[cur];
                                    continue 'outer;
                                }
                            }
                            if is_get {
                                let v = vm.classes[class.0 as usize].mirrors[mi]
                                    .as_ref()
                                    .expect("mirror created by ensure_initialized")
                                    .statics[slot as usize];
                                push!(v);
                            } else {
                                let v = pop!();
                                vm.classes[class.0 as usize].mirrors[mi]
                                    .as_mut()
                                    .expect("mirror created by ensure_initialized")
                                    .statics[slot as usize] = v;
                            }
                        }
                        if shared_mode {
                            // Baseline fast path: the JIT removes the init
                            // check once the class is initialized.
                            prepared.insns[cur].set(if is_get {
                                XInsn::GetStaticI { class, slot }
                            } else {
                                XInsn::PutStaticI { class, slot }
                            });
                        }
                    }
                    XInsn::GetStaticI { class, slot } => {
                        let v = vm.classes[class.0 as usize].mirrors[0]
                            .as_ref()
                            .expect("fast entries only exist after init")
                            .statics[slot as usize];
                        push!(v);
                    }
                    XInsn::PutStaticI { class, slot } => {
                        let v = pop!();
                        vm.classes[class.0 as usize].mirrors[0]
                            .as_mut()
                            .expect("fast entries only exist after init")
                            .statics[slot as usize] = v;
                    }
                    // ---- instance fields ----
                    XInsn::GetField(cp) => {
                        flush_at!(next);
                        let class_id = vm.threads[t].frames[fidx].class;
                        let slot = check!(cur, resolve_instance_field(vm, class_id, cp));
                        prepared.insns[cur].set(XInsn::GetFieldR(slot));
                        continue 'redo;
                    }
                    XInsn::PutField(cp) => {
                        flush_at!(next);
                        let class_id = vm.threads[t].frames[fidx].class;
                        let slot = check!(cur, resolve_instance_field(vm, class_id, cp));
                        prepared.insns[cur].set(XInsn::PutFieldR(slot));
                        continue 'redo;
                    }
                    XInsn::GetFieldR(slot) => {
                        let r = pop!();
                        let Some(r) = r.as_ref() else {
                            throw!(cur, npe())
                        };
                        let obj = vm.heap.get(r);
                        let ObjBody::Fields(fields) = &obj.body else {
                            throw!(cur, internal_err("getfield on array"))
                        };
                        let v = fields[slot as usize];
                        push!(v);
                    }
                    XInsn::PutFieldR(slot) => {
                        let v = pop!();
                        let r = pop!();
                        let Some(r) = r.as_ref() else {
                            throw!(cur, npe())
                        };
                        let obj = vm.heap.get_mut(r);
                        let ObjBody::Fields(fields) = &mut obj.body else {
                            throw!(cur, internal_err("putfield on array"))
                        };
                        fields[slot as usize] = v;
                    }
                    // ---- invocation ----
                    XInsn::InvokeStatic(cp) => {
                        flush_at!(next);
                        quicken_direct_call!(cur, cp, InvokeStaticF, InvokeStaticR);
                        continue 'redo;
                    }
                    XInsn::InvokeSpecial(cp) => {
                        flush_at!(next);
                        quicken_direct_call!(cur, cp, InvokeDirectF, InvokeDirectR);
                        continue 'redo;
                    }
                    XInsn::InvokeStaticR { target, arg_slots } => {
                        flush_at!(next);
                        ensure_class_ready!(cur, target.class);
                        if shared_mode {
                            prepared.insns[cur].set(XInsn::InvokeStaticI { target, arg_slots });
                        }
                        finish_invoke!(cur, target, arg_slots);
                    }
                    XInsn::InvokeStaticI { target, arg_slots }
                    | XInsn::InvokeDirectR { target, arg_slots } => {
                        flush_at!(next);
                        finish_invoke!(cur, target, arg_slots);
                    }
                    XInsn::InvokeStaticF(si) => {
                        flush_at!(next);
                        let site = prepared.call_sites.borrow()[si as usize].share();
                        // Shared mode drops the init check after first
                        // execution (InvokeStaticFI), like the baseline
                        // JIT; Isolated mode re-checks every time.
                        ensure_class_ready!(cur, site.target.class);
                        if shared_mode {
                            prepared.insns[cur].set(XInsn::InvokeStaticFI(si));
                        }
                        fused_call!(cur, site);
                    }
                    XInsn::InvokeStaticFI(si) | XInsn::InvokeDirectF(si) => {
                        flush_at!(next);
                        let site = prepared.call_sites.borrow()[si as usize].share();
                        fused_call!(cur, site);
                    }
                    XInsn::InvokeVirtual(cp) => {
                        flush_at!(next);
                        let class_id = vm.threads[t].frames[fidx].class;
                        let (vslot, arg_slots) =
                            check!(cur, resolve_virtual_method(vm, class_id, cp));
                        let mut sites = prepared.virt_sites.borrow_mut();
                        if sites.len() <= u16::MAX as usize {
                            sites.push(VirtSite {
                                vslot,
                                arg_slots,
                                cache: std::cell::RefCell::new(None),
                            });
                            let si = (sites.len() - 1) as u16;
                            drop(sites);
                            prepared.insns[cur].set(XInsn::InvokeVirtualF(si));
                        } else {
                            drop(sites);
                            prepared.insns[cur].set(XInsn::InvokeVirtualR { vslot, arg_slots });
                        }
                        continue 'redo;
                    }
                    XInsn::InvokeVirtualR { vslot, arg_slots } => {
                        flush_at!(next);
                        let receiver = check!(cur, peek_receiver(vm, t, fidx, arg_slots));
                        let rc = vm.heap.get(receiver).class;
                        let target = match vm.classes[rc.0 as usize].vtable.get(vslot as usize) {
                            Some(&mref) => mref,
                            None => throw!(
                                cur,
                                Thrown::ByName {
                                    class_name: "java/lang/AbstractMethodError",
                                    message: format!("vtable slot {vslot} missing"),
                                }
                            ),
                        };
                        finish_invoke!(cur, target, arg_slots);
                    }
                    XInsn::InvokeVirtualF(si) => {
                        flush_at!(next);
                        let (vslot, arg_slots, cached) = {
                            let sites = prepared.virt_sites.borrow();
                            let s = &sites[si as usize];
                            let out = (
                                s.vslot,
                                s.arg_slots,
                                s.cache.borrow().as_ref().map(|(c, cs)| (*c, cs.share())),
                            );
                            out
                        };
                        let receiver = check!(cur, peek_receiver(vm, t, fidx, arg_slots));
                        let rc = vm.heap.get(receiver).class;
                        // Monomorphic shape cache: a hit skips the vtable
                        // read and all method-metadata loads. A miss on an
                        // already-populated cache means the site is
                        // polymorphic — don't rebuild/overwrite per call
                        // (that would allocate on every invoke); keep the
                        // cached class and take the plain vtable path.
                        let cache_state = match &cached {
                            Some((cc, site)) if *cc == rc => {
                                let site = site.share();
                                fused_call!(cur, site);
                            }
                            Some(_) => CacheState::Polymorphic,
                            None => CacheState::Cold,
                        };
                        let target = match vm.classes[rc.0 as usize].vtable.get(vslot as usize) {
                            Some(&mref) => mref,
                            None => throw!(
                                cur,
                                Thrown::ByName {
                                    class_name: "java/lang/AbstractMethodError",
                                    message: format!("vtable slot {vslot} missing"),
                                }
                            ),
                        };
                        if cache_state == CacheState::Cold {
                            match build_call_site(vm, target) {
                                Some(site) => {
                                    {
                                        let sites = prepared.virt_sites.borrow();
                                        *sites[si as usize].cache.borrow_mut() =
                                            Some((rc, site.share()));
                                    }
                                    fused_call!(cur, site);
                                }
                                // Native/synchronized targets keep the
                                // shared path (monitor entry, native
                                // dispatch).
                                None => finish_invoke!(cur, target, arg_slots),
                            }
                        } else {
                            finish_invoke!(cur, target, arg_slots);
                        }
                    }
                    XInsn::InvokeInterface(site) => {
                        flush_at!(next);
                        let s = &prepared.iface_sites[site as usize];
                        let arg_slots = s.arg_slots;
                        let receiver = check!(cur, peek_receiver(vm, t, fidx, arg_slots));
                        let rc = vm.heap.get(receiver).class;
                        // Per-site inline cache, migrated out of RtCp into
                        // the stream.
                        let target = match s.cache.get() {
                            Some((cc, mref)) if cc == rc => mref,
                            _ => {
                                let found = match lookup_virtual(vm, rc, &s.name, &s.descriptor) {
                                    Some(m) => m,
                                    None => throw!(
                                        cur,
                                        Thrown::ByName {
                                            class_name: "java/lang/AbstractMethodError",
                                            message: format!(
                                                "{}{} on {}",
                                                s.name,
                                                s.descriptor,
                                                vm.classes[rc.0 as usize].name
                                            ),
                                        }
                                    ),
                                };
                                s.cache.set(Some((rc, found)));
                                found
                            }
                        };
                        finish_invoke!(cur, target, arg_slots);
                    }
                    XInsn::InvokeIfaceSlow(cp) => {
                        // Pool entry was malformed at pre-decode time: run
                        // the raw interpreter's rtcp path verbatim.
                        flush_at!(next);
                        let class_id = vm.threads[t].frames[fidx].class;
                        let (name, desc, arg_slots) =
                            check!(cur, resolve_interface_method(vm, class_id, cp));
                        let receiver = check!(cur, peek_receiver(vm, t, fidx, arg_slots));
                        let rc = vm.heap.get(receiver).class;
                        let cached = match &vm.classes[class_id.0 as usize].rtcp[cp as usize] {
                            RtCp::InterfaceMethod {
                                cache: Some((cc, mref)),
                                ..
                            } if *cc == rc => Some(*mref),
                            _ => None,
                        };
                        let target = match cached {
                            Some(mref) => mref,
                            None => {
                                let found = match lookup_virtual(vm, rc, &name, &desc) {
                                    Some(m) => m,
                                    None => throw!(
                                        cur,
                                        Thrown::ByName {
                                            class_name: "java/lang/AbstractMethodError",
                                            message: format!(
                                                "{name}{desc} on {}",
                                                vm.classes[rc.0 as usize].name
                                            ),
                                        }
                                    ),
                                };
                                if let RtCp::InterfaceMethod { cache, .. } =
                                    &mut vm.classes[class_id.0 as usize].rtcp[cp as usize]
                                {
                                    *cache = Some((rc, found));
                                }
                                found
                            }
                        };
                        finish_invoke!(cur, target, arg_slots);
                    }
                    // ---- objects ----
                    XInsn::New(cp) => {
                        flush_at!(next);
                        let class_id = vm.threads[t].frames[fidx].class;
                        let target = check!(cur, resolve_class(vm, class_id, cp));
                        let ClassTarget::Class(new_class) = target else {
                            throw!(cur, internal_err("new on array type"))
                        };
                        prepared.insns[cur].set(XInsn::NewR(new_class));
                        continue 'redo;
                    }
                    XInsn::NewR(new_class) => {
                        flush_at!(next);
                        let iso = vm.threads[t].current_isolate;
                        check!(cur, check_not_poisoned(vm, tid, new_class));
                        ensure_class_ready!(cur, new_class);
                        if shared_mode {
                            prepared.insns[cur].set(XInsn::NewI(new_class));
                        }
                        let r = check!(cur, vm.alloc_instance(new_class, iso));
                        push!(Value::Ref(r));
                    }
                    XInsn::NewI(new_class) => {
                        // Baseline fast path: init check elided, as a JIT
                        // would after first execution.
                        let iso = vm.threads[t].current_isolate;
                        let r = check!(cur, vm.alloc_instance(new_class, iso));
                        push!(Value::Ref(r));
                    }
                    XInsn::NewArray(atype) => {
                        flush_at!(next);
                        let len = pop!().as_int();
                        if len < 0 {
                            throw!(
                                cur,
                                Thrown::ByName {
                                    class_name: "java/lang/NegativeArraySizeException",
                                    message: len.to_string(),
                                }
                            );
                        }
                        let iso = vm.threads[t].current_isolate;
                        let r = check!(cur, alloc_prim_array(vm, iso, atype, len as usize));
                        push!(Value::Ref(r));
                    }
                    XInsn::ANewArray(cp) => {
                        flush_at!(next);
                        let class_id = vm.threads[t].frames[fidx].class;
                        let target = check!(cur, resolve_class(vm, class_id, cp));
                        let len = pop!().as_int();
                        if len < 0 {
                            throw!(
                                cur,
                                Thrown::ByName {
                                    class_name: "java/lang/NegativeArraySizeException",
                                    message: len.to_string(),
                                }
                            );
                        }
                        let elem_desc = match &target {
                            ClassTarget::Class(c) => {
                                format!("L{};", vm.classes[c.0 as usize].name)
                            }
                            ClassTarget::Array(d) => d.clone(),
                        };
                        let iso = vm.threads[t].current_isolate;
                        let size = crate::heap::OBJECT_HEADER_BYTES + len as usize * 8;
                        check!(cur, vm.check_heap(size, iso));
                        let desc = format!("[{elem_desc}");
                        let obj_class = vm.well_known.object.expect("bootstrap installed");
                        let body = ObjBody::ArrRef {
                            elem_desc,
                            data: vec![Value::Null; len as usize].into_boxed_slice(),
                        };
                        let r = vm.alloc_raw(obj_class, iso, body, &desc);
                        push!(Value::Ref(r));
                    }
                    XInsn::ArrayLength => {
                        let r = pop!();
                        let Some(r) = r.as_ref() else {
                            throw!(cur, npe())
                        };
                        let len = vm.heap.get(r).body.array_len();
                        let Some(len) = len else {
                            throw!(cur, internal_err("arraylength on non-array"))
                        };
                        push!(Value::Int(len as i32));
                    }
                    XInsn::Athrow => {
                        let r = pop!();
                        let Some(r) = r.as_ref() else {
                            throw!(cur, npe())
                        };
                        flush_at!(next);
                        if unwind(vm, tid, r) {
                            continue 'outer;
                        }
                        return consumed;
                    }
                    XInsn::Checkcast(cp) => {
                        flush_at!(next);
                        let class_id = vm.threads[t].frames[fidx].class;
                        let target = check!(cur, resolve_class(vm, class_id, cp));
                        let v = *fr!().stack.last().expect("checkcast on empty stack");
                        if let Value::Ref(r) = v {
                            if !is_instance(vm, r, &target) {
                                let from = vm.classes[vm.heap.get(r).class.0 as usize].name.clone();
                                throw!(
                                    cur,
                                    Thrown::ByName {
                                        class_name: "java/lang/ClassCastException",
                                        message: format!("{from} cannot be cast"),
                                    }
                                );
                            }
                        }
                    }
                    XInsn::InstanceOf(cp) => {
                        flush_at!(next);
                        let class_id = vm.threads[t].frames[fidx].class;
                        let target = check!(cur, resolve_class(vm, class_id, cp));
                        let v = pop!();
                        let res = match v {
                            Value::Ref(r) => is_instance(vm, r, &target) as i32,
                            _ => 0,
                        };
                        push!(Value::Int(res));
                    }
                    // ---- monitors ----
                    XInsn::MonitorEnter => {
                        let v = *fr!().stack.last().expect("monitorenter on empty stack");
                        let Some(r) = v.as_ref() else {
                            pop!();
                            throw!(cur, npe())
                        };
                        flush_at!(next);
                        match monitor_enter(vm, tid, r) {
                            EnterResult::Acquired => {
                                pop!();
                            }
                            EnterResult::Blocked => {
                                // Retry the monitorenter when rescheduled.
                                vm.threads[t].frames[fidx].pc = prepared.idx_to_pc[cur];
                                return consumed;
                            }
                        }
                    }
                    XInsn::MonitorExit => {
                        let v = pop!();
                        let Some(r) = v.as_ref() else {
                            throw!(cur, npe())
                        };
                        flush_at!(next);
                        check!(cur, monitor_exit(vm, tid, r));
                    }
                    // ---- traps ----
                    XInsn::Invalid(byte) => {
                        throw!(
                            cur,
                            Thrown::ByName {
                                class_name: "java/lang/VerifyError",
                                message: format!("bad opcode {byte:#04x}"),
                            }
                        );
                    }
                    XInsn::Trap(kind) => {
                        let msg = match kind {
                            TrapKind::Truncated => "code ends in the middle of an instruction",
                            TrapKind::BadBranch => "branch into the middle of an instruction",
                            TrapKind::FellOffEnd => "execution ran off the end of the code",
                        };
                        throw!(cur, internal_err(msg));
                    }
                }
                break 'redo;
            }
            idx = next;
        }
    }
    consumed
}
