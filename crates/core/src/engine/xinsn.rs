//! The pre-decoded internal instruction set.
//!
//! [`XInsn`] is a fixed-width (16-byte), `Copy` representation of one
//! bytecode instruction with its operands fused in: immediate constants
//! are materialized, the `iload_0`…`aload_3` short families collapse into
//! a single typeless [`XInsn::Load`], and branch targets are pre-computed
//! *instruction indices* rather than byte offsets, so the dispatch loop
//! never re-reads operand bytes and never re-aligns switch payloads.
//!
//! Constant-pool-indexed instructions start in their *slow* form carrying
//! the pool index (`GetStatic`, `InvokeVirtual`, …). On first execution
//! the quickened dispatch resolves them and rewrites the cell in place to
//! a *resolved* form (`GetStaticR`, `InvokeVirtualR`, …) carrying direct
//! slot/vtable/method operands — the classic quickening transition. In
//! `Shared` isolation mode a second transition to the *init-elided* forms
//! (`GetStaticI`, `NewI`, `InvokeStaticI`) models the baseline JIT
//! dropping the class-initialization check once it has passed, exactly
//! like the `RtCp::StaticFieldInit`/`ClassInit`/`DirectMethodInit` fast
//! paths of the raw interpreter.

use crate::class::CodeBody;
use crate::ids::{ClassId, IsolateId, MethodRef};
use crate::vmrc::VmRc;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Comparison kind for `if*` and `if_icmp*` branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `== 0` / `a == b`
    Eq,
    /// `!= 0` / `a != b`
    Ne,
    /// `< 0` / `a < b`
    Lt,
    /// `>= 0` / `a >= b`
    Ge,
    /// `> 0` / `a > b`
    Gt,
    /// `<= 0` / `a <= b`
    Le,
}

impl Cmp {
    /// Evaluates the comparison against zero.
    #[inline]
    pub fn test(self, v: i32) -> bool {
        match self {
            Cmp::Eq => v == 0,
            Cmp::Ne => v != 0,
            Cmp::Lt => v < 0,
            Cmp::Ge => v >= 0,
            Cmp::Gt => v > 0,
            Cmp::Le => v <= 0,
        }
    }
}

/// A branch target that points into the middle of an instruction (only
/// reachable through malformed hand-crafted bytecode). Executing it
/// raises `VerifyError`.
pub const BAD_TARGET: u32 = u32::MAX;

/// Why a [`XInsn::Trap`] was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    /// The instruction's operand bytes run past the end of the code.
    Truncated,
    /// A branch lands inside another instruction's operands.
    BadBranch,
    /// Execution ran past the last instruction (method code with no
    /// terminal `return`/`goto`/`athrow`). Every stream ends with this
    /// guard so the dispatch loop needs no per-instruction bounds check.
    FellOffEnd,
}

/// One pre-decoded instruction. Fixed-width and `Copy`, so the stream is
/// a dense array and quickening is a single `Cell::set`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum XInsn {
    /// No operation.
    Nop,
    // ---- constants (immediates fused at pre-decode time) ----
    /// Push an `int` constant (`iconst_*`, `bipush`, `sipush`, numeric `ldc`).
    IConst(i32),
    /// Push a `long` constant.
    LConst(i64),
    /// Push a `float` constant.
    FConst(f32),
    /// Push a `double` constant.
    DConst(f64),
    /// Push `null`.
    AConstNull,
    /// `ldc` of a string/class constant: isolate-dependent, resolved on
    /// every execution through the current isolate's maps. String
    /// constants quicken to [`XInsn::LdcStr`] on first execution; class
    /// constants stay slow (their resolution can create mirrors).
    LdcSlow(u16),
    /// Quickened `ldc` of a string constant with a per-site monomorphic
    /// `(isolate, gc-epoch, ref)` cache; operand indexes
    /// [`super::PreparedCode::ldc_sites`]. A hit pushes the interned ref
    /// without touching the isolate's intern map; the cache invalidates
    /// whenever the GC epoch advances (collections can reshape the heap,
    /// and isolate termination clears intern maps and always collects),
    /// or when a different isolate executes the site.
    LdcStr(u16),
    // ---- locals (typeless in this VM's one-slot model) ----
    /// Push local slot `n` (all `*load` forms).
    Load(u16),
    /// Pop into local slot `n` (all `*store` forms).
    Store(u16),
    /// `iinc slot, delta`.
    Iinc {
        /// Local slot.
        slot: u16,
        /// Signed increment.
        delta: i16,
    },
    // ---- superinstructions (peephole-fused at pre-decode time) ----
    /// Fused `Load a; Load b; Iadd; Store c` (the classic accumulate
    /// shape). Counts as **4** logical instructions. The fused cell
    /// replaces only the *first* component; the tail cells keep their
    /// original instructions, so branches into the middle of the pattern
    /// and resumptions at a mid-pattern pc execute unfused, and when the
    /// remaining quantum cannot cover the full width the dispatch loop
    /// de-fuses to the leading `Load` — scheduling stays bit-identical to
    /// the unfused stream.
    AddStore {
        /// First operand's local slot.
        a: u16,
        /// Second operand's local slot.
        b: u16,
        /// Destination local slot.
        c: u16,
    },
    /// Fused compare-and-branch (`Load` + `IConst`/`Load` + `IfICmp`);
    /// operand indexes [`super::PreparedCode::fused_cmps`]. Counts as
    /// **3** logical instructions; de-fuses like [`XInsn::AddStore`].
    FusedCmpBr(u16),
    // ---- arrays ----
    /// All `*aload` forms (the element type lives in the array body).
    ArrLoad,
    /// All `*astore` forms.
    ArrStore,
    /// `arraylength`.
    ArrayLength,
    /// `newarray atype`.
    NewArray(u8),
    /// `anewarray cp_index`.
    ANewArray(u16),
    // ---- operand stack ----
    /// `pop`
    Pop,
    /// `pop2`
    Pop2,
    /// `dup`
    Dup,
    /// `dup_x1`
    DupX1,
    /// `dup_x2`
    DupX2,
    /// `dup2`
    Dup2,
    /// `dup2_x1`
    Dup2X1,
    /// `dup2_x2`
    Dup2X2,
    /// `swap`
    Swap,
    // ---- arithmetic ----
    /// `iadd`
    Iadd,
    /// `isub`
    Isub,
    /// `imul`
    Imul,
    /// `idiv`
    Idiv,
    /// `irem`
    Irem,
    /// `ineg`
    Ineg,
    /// `ladd`
    Ladd,
    /// `lsub`
    Lsub,
    /// `lmul`
    Lmul,
    /// `ldiv`
    Ldiv,
    /// `lrem`
    Lrem,
    /// `lneg`
    Lneg,
    /// `fadd`
    Fadd,
    /// `fsub`
    Fsub,
    /// `fmul`
    Fmul,
    /// `fdiv`
    Fdiv,
    /// `frem`
    Frem,
    /// `fneg`
    Fneg,
    /// `dadd`
    Dadd,
    /// `dsub`
    Dsub,
    /// `dmul`
    Dmul,
    /// `ddiv`
    Ddiv,
    /// `drem`
    Drem,
    /// `dneg`
    Dneg,
    /// `ishl`
    Ishl,
    /// `ishr`
    Ishr,
    /// `iushr`
    Iushr,
    /// `lshl`
    Lshl,
    /// `lshr`
    Lshr,
    /// `lushr`
    Lushr,
    /// `iand`
    Iand,
    /// `ior`
    Ior,
    /// `ixor`
    Ixor,
    /// `land`
    Land,
    /// `lor`
    Lor,
    /// `lxor`
    Lxor,
    // ---- conversions ----
    /// `i2l`
    I2l,
    /// `i2f`
    I2f,
    /// `i2d`
    I2d,
    /// `l2i`
    L2i,
    /// `l2f`
    L2f,
    /// `l2d`
    L2d,
    /// `f2i`
    F2i,
    /// `f2l`
    F2l,
    /// `f2d`
    F2d,
    /// `d2i`
    D2i,
    /// `d2l`
    D2l,
    /// `d2f`
    D2f,
    /// `i2b`
    I2b,
    /// `i2c`
    I2c,
    /// `i2s`
    I2s,
    // ---- comparisons ----
    /// `lcmp`
    Lcmp,
    /// `fcmpl`/`fcmpg`
    Fcmp {
        /// NaN compares as `1` (`fcmpg`) instead of `-1` (`fcmpl`).
        nan_is_one: bool,
    },
    /// `dcmpl`/`dcmpg`
    Dcmp {
        /// NaN compares as `1` (`dcmpg`) instead of `-1` (`dcmpl`).
        nan_is_one: bool,
    },
    // ---- branches (targets are instruction indices) ----
    /// `ifeq`…`ifle`.
    If {
        /// Comparison against zero.
        cmp: Cmp,
        /// Target instruction index.
        target: u32,
    },
    /// `if_icmpeq`…`if_icmple`.
    IfICmp {
        /// Comparison between the two popped ints.
        cmp: Cmp,
        /// Target instruction index.
        target: u32,
    },
    /// `if_acmpeq`/`if_acmpne`.
    IfACmp {
        /// Branch on reference equality (`if_acmpeq`) or inequality.
        eq: bool,
        /// Target instruction index.
        target: u32,
    },
    /// `ifnull`/`ifnonnull`.
    IfNull {
        /// Branch when null (`ifnull`) or when non-null.
        is_null: bool,
        /// Target instruction index.
        target: u32,
    },
    /// `goto`.
    Goto(u32),
    /// `tableswitch`; operand indexes [`super::PreparedCode::switches`].
    TableSwitch(u16),
    /// `lookupswitch`; operand indexes [`super::PreparedCode::switches`].
    LookupSwitch(u16),
    // ---- returns ----
    /// `return`.
    Return,
    /// `ireturn`/`lreturn`/`freturn`/`dreturn`/`areturn`.
    ReturnValue,
    // ---- fields ----
    /// Unresolved `getstatic cp` (quickens to [`XInsn::GetStaticR`]).
    GetStatic(u16),
    /// Unresolved `putstatic cp`.
    PutStatic(u16),
    /// Resolved static read; the per-isolate mirror lookup and the
    /// initialization check still run on every execution (paper §3.1:
    /// I-JVM cannot elide them).
    GetStaticR {
        /// Class whose mirror holds the slot.
        class: ClassId,
        /// Slot in the mirror's statics array.
        slot: u32,
    },
    /// Resolved static write (checks as [`XInsn::GetStaticR`]).
    PutStaticR {
        /// Class whose mirror holds the slot.
        class: ClassId,
        /// Slot in the mirror's statics array.
        slot: u32,
    },
    /// `Shared`-mode static read with the init check elided (the baseline
    /// JIT's behaviour after first execution).
    GetStaticI {
        /// Class whose mirror holds the slot.
        class: ClassId,
        /// Slot in the mirror's statics array.
        slot: u32,
    },
    /// `Shared`-mode static write with the init check elided.
    PutStaticI {
        /// Class whose mirror holds the slot.
        class: ClassId,
        /// Slot in the mirror's statics array.
        slot: u32,
    },
    /// Unresolved `getfield cp` (quickens to [`XInsn::GetFieldR`]).
    GetField(u16),
    /// Unresolved `putfield cp`.
    PutField(u16),
    /// Resolved instance read: direct slot in the flattened layout.
    GetFieldR(u32),
    /// Resolved instance write.
    PutFieldR(u32),
    // ---- invocation ----
    /// Unresolved `invokestatic cp`.
    InvokeStatic(u16),
    /// Unresolved `invokespecial cp`.
    InvokeSpecial(u16),
    /// Resolved `invokestatic`; the target-class init check still runs on
    /// every execution in `Isolated` mode.
    InvokeStaticR {
        /// Resolved target method.
        target: MethodRef,
        /// Argument slots including receiver.
        arg_slots: u16,
    },
    /// `Shared`-mode `invokestatic` with the init check elided.
    InvokeStaticI {
        /// Resolved target method.
        target: MethodRef,
        /// Argument slots including receiver.
        arg_slots: u16,
    },
    /// Resolved `invokespecial` (no init check involved).
    InvokeDirectR {
        /// Resolved target method.
        target: MethodRef,
        /// Argument slots including receiver.
        arg_slots: u16,
    },
    /// Unresolved `invokevirtual cp`.
    InvokeVirtual(u16),
    /// Resolved `invokevirtual`: direct vtable slot. Fallback form used
    /// when a fused [`XInsn::InvokeVirtualF`] site cannot be allocated.
    InvokeVirtualR {
        /// Slot in the receiver's vtable.
        vslot: u32,
        /// Argument slots including receiver.
        arg_slots: u16,
    },
    /// Fused `invokestatic`: operand indexes
    /// [`super::PreparedCode::call_sites`], whose [`CallSite`] carries the
    /// resolved target *and* the precomputed frame shape, so dispatch
    /// pushes the callee frame without re-reading method metadata. The
    /// per-execution class-initialization check still runs (paper §3.1).
    InvokeStaticF(u16),
    /// `Shared`-mode fused `invokestatic` with the init check elided.
    InvokeStaticFI(u16),
    /// Fused `invokespecial` (no init check involved); operand indexes
    /// [`super::PreparedCode::call_sites`].
    InvokeDirectF(u16),
    /// Fused `invokevirtual` with a per-site monomorphic shape cache;
    /// operand indexes [`super::PreparedCode::virt_sites`].
    InvokeVirtualF(u16),
    /// `invokeinterface` with a pre-decoded per-site inline cache;
    /// operand indexes [`super::PreparedCode::iface_sites`].
    InvokeInterface(u16),
    /// `invokeinterface` whose member reference could not be pre-decoded;
    /// falls back to the raw interpreter's rtcp path.
    InvokeIfaceSlow(u16),
    // ---- objects ----
    /// Unresolved `new cp` (quickens to [`XInsn::NewR`]).
    New(u16),
    /// Resolved `new`; poisoning and init checks still run per execution.
    NewR(ClassId),
    /// `Shared`-mode `new` with the init check elided.
    NewI(ClassId),
    /// `athrow`.
    Athrow,
    /// `checkcast cp` (resolution is rtcp-cached; not quickened).
    Checkcast(u16),
    /// `instanceof cp`.
    InstanceOf(u16),
    /// `monitorenter`.
    MonitorEnter,
    /// `monitorexit`.
    MonitorExit,
    // ---- traps ----
    /// An opcode byte the decoder rejects; throws `VerifyError` exactly
    /// like the raw interpreter (which also advances pc by one).
    Invalid(u8),
    /// Malformed encoding discovered at pre-decode time.
    Trap(TrapKind),
}

/// Side-table payload for `tableswitch`/`lookupswitch`.
#[derive(Debug, Clone)]
pub enum SwitchTable {
    /// `tableswitch`: dense jump table.
    Table {
        /// Target when the key is outside `[low, high]` (instruction index).
        default: u32,
        /// Lowest key.
        low: i32,
        /// Per-key targets for `low..=high` (instruction indices).
        targets: Box<[u32]>,
    },
    /// `lookupswitch`: sorted match pairs.
    Lookup {
        /// Target when no pair matches (instruction index).
        default: u32,
        /// `(key, target)` pairs in file order.
        pairs: Box<[(i32, u32)]>,
    },
}

/// The right-hand operand of a [`XInsn::FusedCmpBr`] superinstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpRhs {
    /// Fused `IConst` operand.
    Const(i32),
    /// Fused second `Load` operand (a local slot).
    Local(u16),
}

/// Side-table payload of a [`XInsn::FusedCmpBr`] superinstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedCmp {
    /// Local slot of the left-hand operand (the leading `Load`, which is
    /// also what the de-fused fallback executes).
    pub slot: u16,
    /// Right-hand operand.
    pub rhs: CmpRhs,
    /// Comparison between the two operands.
    pub cmp: Cmp,
    /// Target instruction index when the comparison holds.
    pub target: u32,
}

/// A fused call site: the resolved target method plus the precomputed
/// frame shape, captured when an `invoke*` instruction quickens. Carrying
/// the shape here lets the dispatch loop build the callee frame — pooled
/// locals carved from the caller's operand stack, isolate routing, the
/// shared `CodeBody` — without touching `RuntimeMethod` again. Only plain
/// bytecode methods fuse; natives, `synchronized` and abstract targets
/// stay on the resolved forms and the shared `invoke_resolved` path.
#[derive(Debug)]
pub struct CallSite {
    /// Resolved target method.
    pub target: MethodRef,
    /// Argument slots including the receiver.
    pub arg_slots: u16,
    /// The callee frame's local-slot count.
    pub max_locals: u16,
    /// The callee frame's operand-stack capacity hint.
    pub max_stack: u16,
    /// The callee's bytecode, shared with its `RuntimeMethod`.
    pub code: VmRc<CodeBody>,
    /// `true` when the target belongs to the Java System Library (skips
    /// the poisoning check and executes in the caller's isolate).
    pub is_system: bool,
    /// The isolate the callee frame executes in: `None` to stay in the
    /// caller's isolate (system code, `Shared` mode), `Some` to migrate
    /// the thread (paper §3.1) — CPU accounting flushes exactly at that
    /// boundary, same as the unfused path.
    pub frame_isolate: Option<IsolateId>,
}

/// Per-call-site state of a fused `invokevirtual`: the resolved vtable
/// slot plus a monomorphic inline cache mapping the last receiver class
/// to its full [`CallSite`] shape.
#[derive(Debug)]
pub struct VirtSite {
    /// Slot in the receiver's vtable.
    pub vslot: u32,
    /// Argument slots including the receiver.
    pub arg_slots: u16,
    /// Last receiver class and the fused shape its target resolved to.
    /// Misses (megamorphic sites, unfuseable targets) fall back to the
    /// vtable lookup and the shared `invoke_resolved` path.
    pub cache: RefCell<Option<(ClassId, VmRc<CallSite>)>>,
}

/// Per-site state of a quickened string `ldc` ([`XInsn::LdcStr`]).
///
/// The cache is monomorphic in the executing isolate: string literals
/// resolve through the *current isolate's* intern map (paper §3.1), so a
/// prepared stream shared across isolates (system-library code executes
/// in its caller's isolate) must re-resolve when a different isolate
/// arrives. The GC epoch guards liveness: any collection may reshape the
/// heap, and isolate termination — which clears the intern map the
/// cached ref came from — always runs one.
#[derive(Debug)]
pub struct LdcSite {
    /// The original constant-pool index, for the re-resolve path.
    pub cp: u16,
    /// `(executing isolate, gc epoch at fill time, interned string)`.
    pub cache: Cell<Option<(IsolateId, u64, crate::value::GcRef)>>,
}

/// Per-call-site state of a pre-decoded `invokeinterface`: the member
/// reference (read once from the pool) plus the inline cache that the raw
/// interpreter kept in `RtCp::InterfaceMethod`, migrated into the stream.
#[derive(Debug)]
pub struct IfaceSite {
    /// Method name.
    pub name: Arc<str>,
    /// Method descriptor.
    pub descriptor: Arc<str>,
    /// Argument slots including the receiver.
    pub arg_slots: u16,
    /// Inline cache: last receiver class and the target it resolved to.
    pub cache: Cell<Option<(ClassId, MethodRef)>>,
}
