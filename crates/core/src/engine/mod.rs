//! The quickened execution engine.
//!
//! The raw interpreter ([`crate::interp`]) re-decodes every instruction
//! from classfile bytes on every execution: an `Opcode::from_byte` table
//! lookup plus operand re-reads, branch-offset arithmetic and switch
//! re-alignment, and a constant-pool indirection for every field access
//! and call. This module removes all of that work from the hot path with
//! the classic VM *quickening* design, in three layers:
//!
//! 1. **Pre-decoding** ([`predecode`]) — on a method's first execution its
//!    `Code` bytes are translated once into a dense, fixed-width
//!    [`XInsn`] stream with fused operands and branch targets resolved to
//!    instruction indices, plus a pc↔index map so exception tables (which
//!    stay byte-addressed) and suspension points keep working.
//! 2. **Quickening** ([`quicken`]) — constant-pool-indexed instructions
//!    (`getfield`, `getstatic`, `invoke*`, `new`, …) start in slow form;
//!    the first execution resolves them and rewrites the stream cell in
//!    place to a direct-operand fast form. The interface-call inline
//!    caches the raw interpreter kept in `RtCp` become per-call-site
//!    caches in the stream.
//! 3. **Dispatch** — [`quicken::step_thread_quickened`] drives threads
//!    over the stream with semantics identical to the raw interpreter:
//!    instruction-budget quanta, CPU-sampling weights, inter-isolate
//!    migration on invoke, and `StoppedIsolateException` injection all
//!    behave the same, which the differential tests assert.
//!
//! The per-method [`PreparedCode`] cache hangs off
//! [`crate::class::RuntimeMethod::prepared`]; it is built lazily and torn
//! down with the owning loader when its isolate is terminated.
//! [`crate::vm::VmOptions::engine`] selects [`EngineKind::Raw`] or
//! [`EngineKind::Quickened`], keeping both paths alive for §4.4-style
//! ablations and A/B benchmarking.

pub mod predecode;
pub mod quicken;
pub mod xinsn;

pub use predecode::predecode;
pub use xinsn::{Cmp, IfaceSite, SwitchTable, TrapKind, XInsn, BAD_TARGET};

use crate::ids::MethodRef;
use crate::vm::Vm;
use std::cell::Cell;
use std::rc::Rc;

/// Which execution engine drives bytecode frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Decode classfile bytes on every instruction (the seed interpreter;
    /// kept for ablation and differential testing).
    Raw,
    /// Pre-decode each method once into an [`XInsn`] stream and dispatch
    /// over it with in-place quickening (the default).
    #[default]
    Quickened,
}

/// A method's pre-decoded, quickenable instruction stream plus the side
/// tables the stream indexes into.
#[derive(Debug)]
pub struct PreparedCode {
    /// The instruction stream. `Cell` so quickening can rewrite a site in
    /// place while the stream is shared with executing frames. Always
    /// ends with a [`xinsn::TrapKind::FellOffEnd`] guard, so execution
    /// running past the last real instruction faults cleanly without a
    /// per-instruction bounds check.
    pub insns: Box<[Cell<XInsn>]>,
    /// Instruction index → start byte pc; the trailing guard's entry is
    /// `bytes.len()`, so "the pc after the last instruction" maps too.
    pub idx_to_pc: Box<[u32]>,
    /// Byte pc → instruction index, [`BAD_TARGET`] on non-boundaries.
    pub pc_to_idx: Box<[u32]>,
    /// `tableswitch`/`lookupswitch` payloads.
    pub switches: Box<[SwitchTable]>,
    /// Per-site state of pre-decoded `invokeinterface` instructions.
    pub iface_sites: Box<[IfaceSite]>,
}

impl PreparedCode {
    /// The instruction index executing at byte pc `pc`, if `pc` is an
    /// instruction boundary.
    pub fn index_of_pc(&self, pc: u32) -> Option<u32> {
        match self.pc_to_idx.get(pc as usize) {
            Some(&idx) if idx != BAD_TARGET => Some(idx),
            _ => None,
        }
    }

    /// The start byte pc of instruction `idx`.
    pub fn pc_of_index(&self, idx: u32) -> Option<u32> {
        self.idx_to_pc.get(idx as usize).copied()
    }

    /// Approximate heap footprint, for metadata accounting.
    pub fn metadata_bytes(&self) -> usize {
        self.insns.len() * std::mem::size_of::<Cell<XInsn>>()
            + self.idx_to_pc.len() * 4
            + self.pc_to_idx.len() * 4
            + self.switches.len() * std::mem::size_of::<SwitchTable>()
            + self.iface_sites.len() * std::mem::size_of::<IfaceSite>()
    }
}

/// Returns `method`'s prepared stream, building and caching it on first
/// use. The cache lives on the [`crate::class::RuntimeMethod`] and is
/// dropped when the owning loader's isolate is terminated.
pub(crate) fn ensure_prepared(vm: &mut Vm, method: MethodRef) -> Rc<PreparedCode> {
    let class = &vm.classes[method.class.0 as usize];
    let m = &class.methods[method.index as usize];
    if let Some(p) = &m.prepared {
        return Rc::clone(p);
    }
    let code = m
        .code
        .as_ref()
        .expect("ensure_prepared on non-bytecode method")
        .clone();
    let prepared = Rc::new(predecode(&code, &class.pool));
    vm.classes[method.class.0 as usize].methods[method.index as usize].prepared =
        Some(Rc::clone(&prepared));
    prepared
}
