//! The pre-decoded execution engines.
//!
//! The raw interpreter ([`crate::interp`]) re-decodes every instruction
//! from classfile bytes on every execution: an `Opcode::from_byte` table
//! lookup plus operand re-reads, branch-offset arithmetic and switch
//! re-alignment, and a constant-pool indirection for every field access
//! and call. This module removes all of that work from the hot path with
//! the classic VM *quickening* design, in four layers:
//!
//! 1. **Pre-decoding** ([`mod@predecode`]) — on a method's first execution its
//!    `Code` bytes are translated once into a dense, fixed-width
//!    [`XInsn`] stream with fused operands and branch targets resolved to
//!    instruction indices, plus a pc↔index map so exception tables (which
//!    stay byte-addressed) and suspension points keep working.
//! 2. **Quickening** — constant-pool-indexed instructions (`getfield`,
//!    `getstatic`, `invoke*`, `new`, …) start in slow form; the first
//!    execution resolves them and rewrites the stream cell in place to a
//!    direct-operand fast form. The interface-call inline caches the raw
//!    interpreter kept in `RtCp` become per-call-site caches in the
//!    stream, and string `ldc` sites gain a per-isolate, GC-epoch-guarded
//!    cache.
//! 3. **Threading** ([`handlers::lower`]) — for the threaded engine each
//!    [`XInsn`] lowers once (lazily) into a [`handlers::TCell`]: a handler
//!    function pointer plus operands packed into one `u64`.
//! 4. **Dispatch** — `quicken::step_thread_quickened` drives threads
//!    over the `XInsn` stream with one big `match`;
//!    `handlers::step_thread_threaded` (the default) drives them over
//!    the cell stream with an indirect call per instruction. Both have
//!    semantics identical to the raw interpreter: instruction-budget
//!    quanta, CPU-sampling weights, inter-isolate migration on invoke,
//!    and `StoppedIsolateException` injection all behave the same, which
//!    the differential tests assert.
//!
//! The per-method [`PreparedCode`] cache hangs off
//! [`crate::class::RuntimeMethod::prepared`]; it is built lazily and torn
//! down with the owning loader when its isolate is terminated.
//! [`crate::vm::VmOptions::engine`] selects [`EngineKind::Raw`],
//! [`EngineKind::Quickened`] or [`EngineKind::Threaded`], keeping all
//! paths alive for §4.4-style ablations, A/B benchmarking, and the
//! three-way differential oracle.
//!
//! Every engine's quantum hook doubles as the parallel scheduler's
//! migration point: when the instruction budget expires, fused
//! superinstructions de-fuse, pending exact CPU is flushable
//! ([`crate::vm::Vm::flush_pending_cpu`]), and control returns to the
//! driver — at which point the whole VM unit may hop to another OS
//! worker ([`crate::sched`]). All engine metadata migrates with it: the
//! interior-mutable caches here are single-VM state (see the `Sync`
//! safety note on [`PreparedCode`]), never shared across units.

pub mod handlers;
pub mod predecode;
pub mod quicken;
pub mod xinsn;

pub use predecode::{predecode, predecode_with};
pub use xinsn::{
    CallSite, Cmp, CmpRhs, FusedCmp, IfaceSite, LdcSite, SwitchTable, TrapKind, VirtSite, XInsn,
    BAD_TARGET,
};

use crate::ids::MethodRef;
use crate::vm::Vm;
use crate::vmrc::VmRc;
use handlers::TCell;
use std::cell::{Cell, OnceCell, RefCell};

/// Which execution engine drives bytecode frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum EngineKind {
    /// Decode classfile bytes on every instruction (the seed interpreter;
    /// kept for ablation and differential testing).
    Raw,
    /// Pre-decode each method once into an [`XInsn`] stream and dispatch
    /// over it with a giant `match`, quickening cells in place. Retained
    /// as a second differential oracle (and for ablation): it shares the
    /// [`XInsn`] stream with [`EngineKind::Threaded`] but none of its
    /// handler lowering, so a bug in either dispatch layer shows up as a
    /// three-way divergence.
    Quickened,
    /// Direct-threaded dispatch (the default): each [`XInsn`] lowers once
    /// into a [`handlers::TCell`] carrying a handler function pointer
    /// plus packed operands, and the dispatch loop is an indirect call
    /// per instruction — no opcode `match` on the hot path. Quickening
    /// rewrites the cell's handler pointer in place.
    #[default]
    Threaded,
}

/// A method's pre-decoded, quickenable instruction stream plus the side
/// tables the stream indexes into.
#[derive(Debug)]
pub struct PreparedCode {
    /// The instruction stream. `Cell` so quickening can rewrite a site in
    /// place while the stream is shared with executing frames. Always
    /// ends with a [`xinsn::TrapKind::FellOffEnd`] guard, so execution
    /// running past the last real instruction faults cleanly without a
    /// per-instruction bounds check.
    pub insns: Box<[Cell<XInsn>]>,
    /// Instruction index → start byte pc; the trailing guard's entry is
    /// `bytes.len()`, so "the pc after the last instruction" maps too.
    pub idx_to_pc: Box<[u32]>,
    /// Byte pc → instruction index, [`BAD_TARGET`] on non-boundaries.
    pub pc_to_idx: Box<[u32]>,
    /// `tableswitch`/`lookupswitch` payloads.
    pub switches: Box<[SwitchTable]>,
    /// Per-site state of pre-decoded `invokeinterface` instructions.
    pub iface_sites: Box<[IfaceSite]>,
    /// Payloads of [`XInsn::FusedCmpBr`] superinstructions, built by the
    /// pre-decode peephole pass.
    pub fused_cmps: Box<[FusedCmp]>,
    /// Fused call sites, appended when `invokestatic`/`invokespecial`
    /// sites quicken to their `F` forms. `RefCell` because quickening
    /// appends while the stream is shared with executing frames.
    pub call_sites: RefCell<Vec<VmRc<CallSite>>>,
    /// Fused `invokevirtual` sites, appended on first execution.
    pub virt_sites: RefCell<Vec<VirtSite>>,
    /// Quickened string-`ldc` sites, appended when an [`XInsn::LdcSlow`]
    /// over a string constant first executes.
    pub ldc_sites: RefCell<Vec<LdcSite>>,
    /// The direct-threaded cell stream, lowered lazily from `insns` on the
    /// threaded engine's first dispatch (other engines never pay for it).
    /// Same length and indexing as `insns`; threaded quickening rewrites
    /// these cells and leaves `insns` untouched.
    threaded: OnceCell<Box<[Cell<TCell>]>>,
    /// Profile counter: method entries at pc 0, bumped by the threaded
    /// engine only while the flight recorder is on
    /// ([`crate::vm::VmOptions::trace`]) — see
    /// [`crate::vm::Vm::top_methods`]. `Cell` like the quickening caches:
    /// interior-mutable, sound because a `Vm` is never shared across
    /// threads.
    pub hot_count: Cell<u64>,
    /// Profile counter: backward branches taken (loop iterations), under
    /// the same gate as `hot_count`.
    pub back_edges: Cell<u64>,
}

impl PreparedCode {
    /// The instruction index executing at byte pc `pc`, if `pc` is an
    /// instruction boundary.
    pub fn index_of_pc(&self, pc: u32) -> Option<u32> {
        match self.pc_to_idx.get(pc as usize) {
            Some(&idx) if idx != BAD_TARGET => Some(idx),
            _ => None,
        }
    }

    /// The start byte pc of instruction `idx`.
    pub fn pc_of_index(&self, idx: u32) -> Option<u32> {
        self.idx_to_pc.get(idx as usize).copied()
    }

    /// The direct-threaded cell stream, lowering it from the [`XInsn`]
    /// stream on first use.
    pub fn threaded_cells(&self) -> &[Cell<TCell>] {
        self.threaded.get_or_init(|| {
            self.insns
                .iter()
                .map(|c| Cell::new(handlers::lower(c.get())))
                .collect()
        })
    }

    /// Approximate heap footprint, for metadata accounting.
    pub fn metadata_bytes(&self) -> usize {
        self.insns.len() * std::mem::size_of::<Cell<XInsn>>()
            + self.idx_to_pc.len() * 4
            + self.pc_to_idx.len() * 4
            + self.switches.len() * std::mem::size_of::<SwitchTable>()
            + self.iface_sites.len() * std::mem::size_of::<IfaceSite>()
            + self.fused_cmps.len() * std::mem::size_of::<FusedCmp>()
            + self.call_sites.borrow().len() * std::mem::size_of::<CallSite>()
            + self.virt_sites.borrow().len() * std::mem::size_of::<VirtSite>()
            + self.ldc_sites.borrow().len() * std::mem::size_of::<LdcSite>()
            + self
                .threaded
                .get()
                .map_or(0, |t| t.len() * std::mem::size_of::<Cell<TCell>>())
    }
}

/// Captures `target`'s frame shape into a [`CallSite`], or `None` when
/// the target cannot take the fused call path (native, `synchronized`, or
/// abstract methods keep the shared `invoke_resolved` path, whose monitor
/// and native dispatch must run per call).
pub(crate) fn build_call_site(vm: &Vm, target: MethodRef) -> Option<VmRc<CallSite>> {
    let class = &vm.classes[target.class.0 as usize];
    let m = &class.methods[target.index as usize];
    if m.access.is_native() || m.synchronized {
        return None;
    }
    let code = m.code.as_ref()?.share();
    let is_system = class.is_system;
    // `None` routes the callee frame to the caller's isolate, exactly as
    // `Vm::make_frame` would (the predicate is shared, so the fused path
    // can never diverge from the raw interpreter's routing).
    let frame_isolate = if vm.frame_executes_in_caller(target) {
        None
    } else {
        Some(class.isolate)
    };
    Some(VmRc::new(CallSite {
        target,
        arg_slots: m.arg_slots,
        max_locals: code.max_locals,
        max_stack: code.max_stack,
        code,
        is_system,
        frame_isolate,
    }))
}

/// Returns `method`'s prepared stream, building and caching it on first
/// use. The cache lives on the [`crate::class::RuntimeMethod`] and is
/// dropped when the owning loader's isolate is terminated.
pub(crate) fn ensure_prepared(vm: &mut Vm, method: MethodRef) -> VmRc<PreparedCode> {
    let class = &vm.classes[method.class.0 as usize];
    let m = &class.methods[method.index as usize];
    if let Some(p) = &m.prepared {
        return p.share();
    }
    let code = m
        .code
        .as_ref()
        .expect("ensure_prepared on non-bytecode method")
        .share();
    let prepared = VmRc::new(predecode_with(
        &code,
        &class.pool,
        vm.options.superinstructions,
    ));
    vm.classes[method.class.0 as usize].methods[method.index as usize].prepared =
        Some(prepared.share());
    prepared
}
