//! The direct-threaded dispatch engine.
//!
//! [`super::quicken`] dispatches with one giant `match` over [`XInsn`];
//! this module replaces the match with *call threading*: pre-decode
//! lowers every `XInsn` once into a [`TCell`] — a handler **function
//! pointer** plus its operands packed into one `u64` — and the dispatch
//! loop is nothing but an indirect call per instruction:
//!
//! ```text
//! loop { match (cells[idx].handler)(&mut ctx, cells[idx].operand) { … } }
//! ```
//!
//! # Handler calling convention
//!
//! A handler is `fn(&mut Ctx<'_>, u64) -> Flow`. The [`Ctx`] carries the
//! VM, the executing thread/frame, the [`PreparedCode`], and the quantum
//! bookkeeping (`consumed`/`local_insns`); the `u64` is the cell's packed
//! operand (slot numbers, branch targets, side-table indices, resolved
//! class/slot pairs — see the `pack_*` helpers). A handler "tail-jumps"
//! by returning [`Flow`]:
//!
//! * [`Flow::Next`] — continue at `ctx.next` (pre-set to the following
//!   cell; branch handlers overwrite it with their target index);
//! * [`Flow::Redo`] — the handler quickened itself (rewrote its own cell
//!   to a faster handler); re-dispatch the same cell without recounting
//!   the instruction;
//! * [`Flow::Outer`] — control left the current frame (call, return,
//!   exception, suspension); re-run the frame prologue;
//! * [`Flow::Yield`] — the thread cannot make progress; give the quantum
//!   back to the scheduler.
//!
//! Quickening is a handler-pointer rewrite: a slow handler (e.g.
//! `objects::h_getstatic_slow`) resolves through the same `resolve_*`
//! helpers as the other engines, then `Cell::set`s its own cell to the
//! fast handler with resolved operands and returns `Flow::Redo`.
//!
//! Semantics are intentionally bit-identical to the quickened match
//! engine (and therefore to the raw interpreter): the same per-logical-
//! instruction budget accounting, the same flush points into
//! `insns_since_switch`, the same superinstruction de-fusing at quantum
//! boundaries, and the same byte-pc frame suspension. The three-engine
//! differential suite asserts this.

pub(crate) mod arith;
pub(crate) mod data;
pub(crate) mod flow;
pub(crate) mod invoke;
pub(crate) mod objects;

use super::xinsn::{TrapKind, XInsn};
use super::{ensure_prepared, EngineKind, PreparedCode};
use crate::ids::{ClassId, MethodRef, ThreadId};
use crate::interp::{
    ensure_initialized, frame_prologue, invoke_fused, invoke_resolved, materialize, unwind,
    InitAction, InvokeAction, Prologue,
};
use crate::vm::{IsolationMode, Thrown, Vm};

/// A handler function: executes one instruction given its packed operand.
pub type Handler = fn(&mut Ctx<'_>, u64) -> Flow;

/// One direct-threaded cell: the handler pointer plus its operands packed
/// into a single word. 16 bytes, `Copy`, so the stream is a dense array
/// and quickening is a single `Cell::set` of the whole cell.
#[derive(Debug, Clone, Copy)]
pub struct TCell {
    /// The instruction's handler.
    pub handler: Handler,
    /// Packed operands (see the `pack_*`/`unpack_*` helpers).
    pub operand: u64,
}

/// What a handler tells the dispatch loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Continue at `ctx.next` (the following cell unless a branch
    /// overwrote it).
    Next,
    /// The cell was rewritten (quickening); re-dispatch it without
    /// recounting the instruction.
    Redo,
    /// Control left the frame; re-run the frame prologue.
    Outer,
    /// The thread cannot make progress; return the consumed count.
    Yield,
}

/// Everything a handler can touch, threaded through the dispatch loop.
pub struct Ctx<'a> {
    /// The VM.
    pub vm: &'a mut Vm,
    /// Executing thread.
    pub tid: ThreadId,
    /// `tid.0 as usize`, hoisted.
    pub t: usize,
    /// Index of the executing frame in the thread's frame stack.
    pub fidx: usize,
    /// The method's prepared streams and side tables.
    pub prepared: &'a PreparedCode,
    /// The instruction budget for this step call.
    pub budget: u32,
    /// Instructions flushed so far this step call.
    pub consumed: u32,
    /// Instructions executed since the last flush.
    pub local_insns: u32,
    /// Index of the cell being executed.
    pub cur: usize,
    /// Index the dispatch loop continues at on [`Flow::Next`].
    pub next: usize,
    /// `IsolationMode::Shared`, hoisted (enables the init-elided forms).
    pub shared_mode: bool,
}

// Hot-path frame helpers as macros so the borrow ends at the statement.
macro_rules! tfr {
    ($c:expr) => {
        $c.vm.threads[$c.t].frames[$c.fidx]
    };
}
macro_rules! tpush {
    ($c:expr, $v:expr) => {
        $crate::engine::handlers::tfr!($c).stack.push($v)
    };
}
macro_rules! tpop {
    ($c:expr) => {
        $crate::engine::handlers::tfr!($c)
            .stack
            .pop()
            .expect("operand stack underflow")
    };
}
/// `check!` of the match engine: unwraps or throws from the current cell.
macro_rules! tchk {
    ($c:expr, $r:expr) => {
        match $r {
            Ok(v) => v,
            Err(thrown) => return $c.throw(thrown),
        }
    };
}
pub(crate) use {tchk, tfr, tpop, tpush};

impl Ctx<'_> {
    /// Flushes pending instruction counts and records the byte pc of
    /// instruction index `i` as the frame's resume point (the `flush_at!`
    /// of the match engine).
    #[inline]
    pub fn flush_at(&mut self, i: usize) {
        tfr!(self).pc = self.prepared.idx_to_pc[i];
        self.vm.threads[self.t].insns_since_switch += self.local_insns as u64;
        self.consumed += self.local_insns;
        self.local_insns = 0;
    }

    /// Raises a Java exception from the current instruction; handler
    /// ranges match against the faulting instruction's start pc.
    #[cold]
    pub(crate) fn throw(&mut self, thrown: Thrown) -> Flow {
        self.flush_at(self.cur);
        let ex = materialize(self.vm, self.tid, thrown);
        if unwind(self.vm, self.tid, ex) {
            Flow::Outer
        } else {
            Flow::Yield
        }
    }

    /// Redirects dispatch to a branch target, faulting on targets inside
    /// another instruction's operands.
    #[inline]
    pub fn branch_to(&mut self, target: u32) -> Flow {
        if target == super::BAD_TARGET {
            return self.throw(crate::interp::internal_err(
                "branch into the middle of an instruction",
            ));
        }
        if target as usize <= self.cur && self.vm.trace_enabled {
            self.prepared
                .back_edges
                .set(self.prepared.back_edges.get() + 1);
        }
        self.next = target as usize;
        Flow::Next
    }

    /// Rewrites the current cell to the lowering of `x` (the quickening
    /// transition) and re-dispatches it.
    #[inline]
    pub fn requicken(&mut self, x: XInsn) -> Flow {
        self.prepared.threaded_cells()[self.cur].set(lower(x));
        Flow::Redo
    }

    /// The `finish_invoke!` of the match engine: performs a call whose
    /// target method is already resolved and routes the outcome.
    pub fn finish_invoke(&mut self, target: MethodRef, arg_slots: u16) -> Flow {
        let insn_pc = self.prepared.idx_to_pc[self.cur] as usize;
        match invoke_resolved(self.vm, self.tid, self.fidx, target, arg_slots, insn_pc) {
            Err(thrown) => self.throw(thrown),
            Ok(InvokeAction::FramePushed | InvokeAction::Suspended) => Flow::Outer,
            Ok(InvokeAction::NativeDone) => {
                if !self.vm.threads[self.t].is_runnable()
                    || self.vm.threads[self.t].pending_exception.is_some()
                {
                    Flow::Outer
                } else {
                    Flow::Next
                }
            }
        }
    }

    /// The `fused_call!` of the match engine: calls through a fused call
    /// site; the callee frame always pushes, so control yields back to
    /// the prologue.
    pub fn fused_call(&mut self, site: &super::CallSite) -> Flow {
        match invoke_fused(self.vm, self.tid, self.fidx, site) {
            Err(thrown) => self.throw(thrown),
            Ok(()) => Flow::Outer,
        }
    }

    /// The per-execution class-initialization check I-JVM cannot elide in
    /// Isolated mode (paper §3.1). `None` means ready — proceed; `Some`
    /// carries the flow to return (suspension or thrown error).
    pub fn ensure_class_ready(&mut self, class: ClassId) -> Option<Flow> {
        let cur_iso = self.vm.threads[self.t].current_isolate;
        let mi = self.vm.mirror_index(cur_iso);
        let ready = matches!(
            self.vm.classes[class.0 as usize].mirrors.get(mi),
            Some(Some(m)) if m.init == crate::class::InitState::Initialized
        );
        if !ready {
            match ensure_initialized(self.vm, self.tid, class, cur_iso) {
                Err(thrown) => return Some(self.throw(thrown)),
                Ok(InitAction::Ready) => {}
                Ok(InitAction::Suspend) => {
                    tfr!(self).pc = self.prepared.idx_to_pc[self.cur];
                    return Some(Flow::Outer);
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// Operand packing
// ---------------------------------------------------------------------

#[inline]
pub(crate) fn pack2(a: u32, b: u32) -> u64 {
    a as u64 | (b as u64) << 32
}
#[inline]
pub(crate) fn lo32(op: u64) -> u32 {
    op as u32
}
#[inline]
pub(crate) fn hi32(op: u64) -> u32 {
    (op >> 32) as u32
}

/// Packs a resolved method target plus arg slots: `class | index << 32 |
/// arg_slots << 48`.
#[inline]
pub(crate) fn pack_method(target: MethodRef, arg_slots: u16) -> u64 {
    target.class.0 as u64 | (target.index as u64) << 32 | (arg_slots as u64) << 48
}
#[inline]
pub(crate) fn unpack_method(op: u64) -> (MethodRef, u16) {
    (
        MethodRef {
            class: ClassId(op as u32),
            index: (op >> 32) as u16,
        },
        (op >> 48) as u16,
    )
}

/// Encodes a [`super::Cmp`] into 3 operand bits.
#[inline]
pub(crate) fn cmp_code(c: super::Cmp) -> u64 {
    use super::Cmp::*;
    match c {
        Eq => 0,
        Ne => 1,
        Lt => 2,
        Ge => 3,
        Gt => 4,
        Le => 5,
    }
}
#[inline]
pub(crate) fn cmp_from(code: u32) -> super::Cmp {
    use super::Cmp::*;
    match code {
        0 => Eq,
        1 => Ne,
        2 => Lt,
        3 => Ge,
        4 => Gt,
        _ => Le,
    }
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/// Lowers one [`XInsn`] into its threaded cell: handler pointer + packed
/// operands. Total over every variant (including resolved fast forms, so
/// quickening transitions reuse it: `requicken(XInsn::…)`).
pub fn lower(x: XInsn) -> TCell {
    use XInsn as X;
    let c = |handler: Handler, operand: u64| TCell { handler, operand };
    match x {
        X::Nop => c(data::h_nop, 0),
        // ---- constants ----
        X::AConstNull => c(data::h_aconst_null, 0),
        X::IConst(v) => c(data::h_iconst, v as u32 as u64),
        X::LConst(v) => c(data::h_lconst, v as u64),
        X::FConst(v) => c(data::h_fconst, v.to_bits() as u64),
        X::DConst(v) => c(data::h_dconst, v.to_bits()),
        X::LdcSlow(cp) => c(data::h_ldc_slow, cp as u64),
        X::LdcStr(si) => c(data::h_ldc_str, si as u64),
        // ---- locals ----
        X::Load(n) => c(data::h_load, n as u64),
        X::Store(n) => c(data::h_store, n as u64),
        X::Iinc { slot, delta } => c(data::h_iinc, slot as u64 | (delta as u16 as u64) << 16),
        // ---- superinstructions ----
        X::AddStore { a, b, c: dst } => c(
            flow::h_addstore,
            a as u64 | (b as u64) << 16 | (dst as u64) << 32,
        ),
        X::FusedCmpBr(si) => c(flow::h_fusedcmpbr, si as u64),
        // ---- arrays ----
        X::ArrLoad => c(objects::h_arrload, 0),
        X::ArrStore => c(objects::h_arrstore, 0),
        X::ArrayLength => c(objects::h_arraylength, 0),
        X::NewArray(atype) => c(objects::h_newarray, atype as u64),
        X::ANewArray(cp) => c(objects::h_anewarray, cp as u64),
        // ---- operand stack ----
        X::Pop => c(data::h_pop, 0),
        X::Pop2 => c(data::h_pop2, 0),
        X::Dup => c(data::h_dup, 0),
        X::DupX1 => c(data::h_dup_x1, 0),
        X::DupX2 => c(data::h_dup_x2, 0),
        X::Dup2 => c(data::h_dup2, 0),
        X::Dup2X1 => c(data::h_dup2_x1, 0),
        X::Dup2X2 => c(data::h_dup2_x2, 0),
        X::Swap => c(data::h_swap, 0),
        // ---- arithmetic ----
        X::Iadd => c(arith::h_iadd, 0),
        X::Isub => c(arith::h_isub, 0),
        X::Imul => c(arith::h_imul, 0),
        X::Idiv => c(arith::h_idiv, 0),
        X::Irem => c(arith::h_irem, 0),
        X::Ineg => c(arith::h_ineg, 0),
        X::Ladd => c(arith::h_ladd, 0),
        X::Lsub => c(arith::h_lsub, 0),
        X::Lmul => c(arith::h_lmul, 0),
        X::Ldiv => c(arith::h_ldiv, 0),
        X::Lrem => c(arith::h_lrem, 0),
        X::Lneg => c(arith::h_lneg, 0),
        X::Fadd => c(arith::h_fadd, 0),
        X::Fsub => c(arith::h_fsub, 0),
        X::Fmul => c(arith::h_fmul, 0),
        X::Fdiv => c(arith::h_fdiv, 0),
        X::Frem => c(arith::h_frem, 0),
        X::Fneg => c(arith::h_fneg, 0),
        X::Dadd => c(arith::h_dadd, 0),
        X::Dsub => c(arith::h_dsub, 0),
        X::Dmul => c(arith::h_dmul, 0),
        X::Ddiv => c(arith::h_ddiv, 0),
        X::Drem => c(arith::h_drem, 0),
        X::Dneg => c(arith::h_dneg, 0),
        X::Ishl => c(arith::h_ishl, 0),
        X::Ishr => c(arith::h_ishr, 0),
        X::Iushr => c(arith::h_iushr, 0),
        X::Lshl => c(arith::h_lshl, 0),
        X::Lshr => c(arith::h_lshr, 0),
        X::Lushr => c(arith::h_lushr, 0),
        X::Iand => c(arith::h_iand, 0),
        X::Ior => c(arith::h_ior, 0),
        X::Ixor => c(arith::h_ixor, 0),
        X::Land => c(arith::h_land, 0),
        X::Lor => c(arith::h_lor, 0),
        X::Lxor => c(arith::h_lxor, 0),
        // ---- conversions ----
        X::I2l => c(arith::h_i2l, 0),
        X::I2f => c(arith::h_i2f, 0),
        X::I2d => c(arith::h_i2d, 0),
        X::L2i => c(arith::h_l2i, 0),
        X::L2f => c(arith::h_l2f, 0),
        X::L2d => c(arith::h_l2d, 0),
        X::F2i => c(arith::h_f2i, 0),
        X::F2l => c(arith::h_f2l, 0),
        X::F2d => c(arith::h_f2d, 0),
        X::D2i => c(arith::h_d2i, 0),
        X::D2l => c(arith::h_d2l, 0),
        X::D2f => c(arith::h_d2f, 0),
        X::I2b => c(arith::h_i2b, 0),
        X::I2c => c(arith::h_i2c, 0),
        X::I2s => c(arith::h_i2s, 0),
        // ---- comparisons ----
        X::Lcmp => c(arith::h_lcmp, 0),
        X::Fcmp { nan_is_one } => c(arith::h_fcmp, nan_is_one as u64),
        X::Dcmp { nan_is_one } => c(arith::h_dcmp, nan_is_one as u64),
        // ---- branches ----
        X::If { cmp, target } => c(flow::h_if, target as u64 | cmp_code(cmp) << 32),
        X::IfICmp { cmp, target } => c(flow::h_ificmp, target as u64 | cmp_code(cmp) << 32),
        X::IfACmp { eq, target } => c(flow::h_ifacmp, target as u64 | (eq as u64) << 32),
        X::IfNull { is_null, target } => c(flow::h_ifnull, target as u64 | (is_null as u64) << 32),
        X::Goto(target) => c(flow::h_goto, target as u64),
        X::TableSwitch(si) => c(flow::h_tableswitch, si as u64),
        X::LookupSwitch(si) => c(flow::h_lookupswitch, si as u64),
        // ---- returns ----
        X::Return => c(flow::h_return, 0),
        X::ReturnValue => c(flow::h_return_value, 0),
        // ---- fields ----
        X::GetStatic(cp) => c(objects::h_getstatic_slow, cp as u64),
        X::PutStatic(cp) => c(objects::h_putstatic_slow, cp as u64),
        X::GetStaticR { class, slot } => c(objects::h_getstatic_r, pack2(class.0, slot)),
        X::PutStaticR { class, slot } => c(objects::h_putstatic_r, pack2(class.0, slot)),
        X::GetStaticI { class, slot } => c(objects::h_getstatic_i, pack2(class.0, slot)),
        X::PutStaticI { class, slot } => c(objects::h_putstatic_i, pack2(class.0, slot)),
        X::GetField(cp) => c(objects::h_getfield_slow, cp as u64),
        X::PutField(cp) => c(objects::h_putfield_slow, cp as u64),
        X::GetFieldR(slot) => c(objects::h_getfield_r, slot as u64),
        X::PutFieldR(slot) => c(objects::h_putfield_r, slot as u64),
        // ---- invocation ----
        X::InvokeStatic(cp) => c(invoke::h_invokestatic_slow, cp as u64),
        X::InvokeSpecial(cp) => c(invoke::h_invokespecial_slow, cp as u64),
        X::InvokeStaticR { target, arg_slots } => {
            c(invoke::h_invokestatic_r, pack_method(target, arg_slots))
        }
        X::InvokeStaticI { target, arg_slots } => {
            c(invoke::h_invoke_direct, pack_method(target, arg_slots))
        }
        X::InvokeDirectR { target, arg_slots } => {
            c(invoke::h_invoke_direct, pack_method(target, arg_slots))
        }
        X::InvokeStaticF(si) => c(invoke::h_invokestatic_f, si as u64),
        X::InvokeStaticFI(si) => c(invoke::h_invoke_fused_site, si as u64),
        X::InvokeDirectF(si) => c(invoke::h_invoke_fused_site, si as u64),
        X::InvokeVirtual(cp) => c(invoke::h_invokevirtual_slow, cp as u64),
        X::InvokeVirtualR { vslot, arg_slots } => {
            c(invoke::h_invokevirtual_r, pack2(vslot, arg_slots as u32))
        }
        X::InvokeVirtualF(si) => c(invoke::h_invokevirtual_f, si as u64),
        X::InvokeInterface(site) => c(invoke::h_invokeinterface, site as u64),
        X::InvokeIfaceSlow(cp) => c(invoke::h_invokeiface_slow, cp as u64),
        // ---- objects ----
        X::New(cp) => c(objects::h_new_slow, cp as u64),
        X::NewR(class) => c(objects::h_new_r, class.0 as u64),
        X::NewI(class) => c(objects::h_new_i, class.0 as u64),
        X::Athrow => c(flow::h_athrow, 0),
        X::Checkcast(cp) => c(objects::h_checkcast, cp as u64),
        X::InstanceOf(cp) => c(objects::h_instanceof, cp as u64),
        X::MonitorEnter => c(objects::h_monitorenter, 0),
        X::MonitorExit => c(objects::h_monitorexit, 0),
        // ---- traps ----
        X::Invalid(byte) => c(flow::h_invalid, byte as u64),
        X::Trap(kind) => c(
            flow::h_trap,
            match kind {
                TrapKind::Truncated => 0,
                TrapKind::BadBranch => 1,
                TrapKind::FellOffEnd => 2,
            },
        ),
    }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// Executes thread `tid` for at most `budget` instructions over the
/// threaded cell stream, returning how many were consumed. Structure and
/// accounting mirror [`super::quicken::step_thread_quickened`] exactly.
pub(crate) fn step_thread_threaded(vm: &mut Vm, tid: ThreadId, budget: u32) -> u32 {
    debug_assert_eq!(vm.options.engine, EngineKind::Threaded);
    let t = tid.0 as usize;
    let mut consumed: u32 = 0;

    'outer: while consumed < budget {
        let fidx = match frame_prologue(vm, tid) {
            Prologue::Run(fidx) => fidx,
            Prologue::Redeliver => continue 'outer,
            Prologue::Yield => return consumed,
        };

        let method = vm.threads[t].frames[fidx].method;
        let prepared = ensure_prepared(vm, method);
        let entry_pc = vm.threads[t].frames[fidx].pc;
        // Profiling seed for the JIT tier: count method entries (pc 0 ⇒
        // a fresh invocation, not a resumed frame). Approximate — a
        // frame suspended at pc 0 recounts on resume — and gated on the
        // recorder so untraced dispatch pays nothing.
        if vm.trace_enabled && entry_pc == 0 {
            prepared.hot_count.set(prepared.hot_count.get() + 1);
        }
        let Some(entry_idx) = prepared.index_of_pc(entry_pc) else {
            // Only reachable through malformed hand-crafted code; the raw
            // engine would read garbage here, we fail cleanly.
            let ex = materialize(
                vm,
                tid,
                Thrown::ByName {
                    class_name: "java/lang/VerifyError",
                    message: format!("pc {entry_pc} is not an instruction boundary"),
                },
            );
            if unwind(vm, tid, ex) {
                continue 'outer;
            }
            return consumed;
        };
        let tcells = prepared.threaded_cells();
        let shared_mode = vm.options.isolation == IsolationMode::Shared;
        let mut ctx = Ctx {
            vm,
            tid,
            t,
            fidx,
            prepared: &prepared,
            budget,
            consumed,
            local_insns: 0,
            cur: entry_idx as usize,
            next: entry_idx as usize,
            shared_mode,
        };

        let mut idx = entry_idx as usize;
        loop {
            if ctx.consumed + ctx.local_insns >= budget {
                ctx.flush_at(idx);
                return ctx.consumed;
            }
            ctx.cur = idx;
            ctx.next = idx + 1;
            ctx.local_insns += 1;
            let mut cell = tcells[idx].get();
            loop {
                match (cell.handler)(&mut ctx, cell.operand) {
                    Flow::Next => break,
                    Flow::Redo => cell = tcells[ctx.cur].get(),
                    Flow::Outer => {
                        consumed = ctx.consumed;
                        continue 'outer;
                    }
                    Flow::Yield => return ctx.consumed,
                }
            }
            idx = ctx.next;
        }
    }
    consumed
}

// Re-borrow note: `tcells` and `ctx.prepared` are shared borrows of the
// `Arc<PreparedCode>` owned by the loop iteration, while `ctx.vm` holds
// the exclusive VM borrow — the streams live outside the VM object, so
// handlers can rewrite cells while mutating VM state.

/// Exercises lowering totality: every `XInsn` must have a cell (compile
/// fails otherwise because `lower` has no catch-all arm).
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowering_packs_and_unpacks_methods() {
        let target = MethodRef {
            class: ClassId(0xABCD_1234),
            index: 0x5678,
        };
        let (m, a) = unpack_method(pack_method(target, 0x9ABC));
        assert_eq!(m, target);
        assert_eq!(a, 0x9ABC);
    }

    #[test]
    fn cmp_codes_round_trip() {
        use crate::engine::Cmp;
        for c in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Ge, Cmp::Gt, Cmp::Le] {
            assert_eq!(cmp_from(cmp_code(c) as u32), c);
        }
    }
}
