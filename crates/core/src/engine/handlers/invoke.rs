//! Handlers: every `invoke*` form. Slow handlers resolve and rewrite
//! their cell to the fused form (plain bytecode targets: the resolved
//! method and precomputed frame shape move into a [`CallSite`]) or the
//! resolved fallback (native / synchronized / abstract targets, or a
//! full side table); fused handlers push the callee frame through
//! `invoke_fused` without re-reading method metadata.

use super::{lo32, pack_method, tchk, tfr, unpack_method, Ctx, Flow};
use crate::class::RtCp;
use crate::engine::build_call_site;
use crate::engine::xinsn::{VirtSite, XInsn};
use crate::interp::{
    lookup_virtual, peek_receiver, resolve_direct_method, resolve_interface_method,
    resolve_virtual_method,
};
use crate::vm::Thrown;
use std::cell::RefCell;

/// Whether a fused virtual site's monomorphic cache can still be filled
/// (see the match engine's `CacheState`).
#[derive(PartialEq)]
enum CacheState {
    Cold,
    Polymorphic,
}

/// Quickens an `invokestatic`/`invokespecial` slow form (the match
/// engine's `quicken_direct_call!`).
fn quicken_direct_call(c: &mut Ctx<'_>, cp: u16, is_static: bool) -> Flow {
    c.flush_at(c.next);
    let class_id = tfr!(c).class;
    let target = tchk!(c, resolve_direct_method(c.vm, class_id, cp));
    let arg_slots = c.vm.classes[target.class.0 as usize].methods[target.index as usize].arg_slots;
    match build_call_site(c.vm, target) {
        Some(site) => {
            let mut sites = c.prepared.call_sites.borrow_mut();
            if sites.len() <= u16::MAX as usize {
                sites.push(site);
                let si = (sites.len() - 1) as u16;
                drop(sites);
                c.requicken(if is_static {
                    XInsn::InvokeStaticF(si)
                } else {
                    XInsn::InvokeDirectF(si)
                })
            } else {
                drop(sites);
                c.requicken(if is_static {
                    XInsn::InvokeStaticR { target, arg_slots }
                } else {
                    XInsn::InvokeDirectR { target, arg_slots }
                })
            }
        }
        None => c.requicken(if is_static {
            XInsn::InvokeStaticR { target, arg_slots }
        } else {
            XInsn::InvokeDirectR { target, arg_slots }
        }),
    }
}

pub(crate) fn h_invokestatic_slow(c: &mut Ctx<'_>, op: u64) -> Flow {
    quicken_direct_call(c, lo32(op) as u16, true)
}

pub(crate) fn h_invokespecial_slow(c: &mut Ctx<'_>, op: u64) -> Flow {
    quicken_direct_call(c, lo32(op) as u16, false)
}

/// Resolved `invokestatic`: the target-class init check still runs on
/// every execution in `Isolated` mode; `Shared` mode drops it after the
/// first execution, like the baseline JIT.
pub(crate) fn h_invokestatic_r(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let (target, arg_slots) = unpack_method(op);
    if let Some(f) = c.ensure_class_ready(target.class) {
        return f;
    }
    if c.shared_mode {
        c.prepared.threaded_cells()[c.cur].set(super::TCell {
            handler: h_invoke_direct,
            operand: pack_method(target, arg_slots),
        });
    }
    c.finish_invoke(target, arg_slots)
}

/// `InvokeStaticI` / `InvokeDirectR`: resolved target, no init check.
pub(crate) fn h_invoke_direct(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let (target, arg_slots) = unpack_method(op);
    c.finish_invoke(target, arg_slots)
}

/// Fused `invokestatic`: `Shared` mode drops the init check after first
/// execution ([`h_invoke_fused_site`]); `Isolated` re-checks every time.
pub(crate) fn h_invokestatic_f(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let si = lo32(op);
    let site = c.prepared.call_sites.borrow()[si as usize].share();
    if let Some(f) = c.ensure_class_ready(site.target.class) {
        return f;
    }
    if c.shared_mode {
        c.prepared.threaded_cells()[c.cur].set(super::TCell {
            handler: h_invoke_fused_site,
            operand: si as u64,
        });
    }
    c.fused_call(&site)
}

/// `InvokeStaticFI` / `InvokeDirectF`: straight through the call site.
pub(crate) fn h_invoke_fused_site(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let site = c.prepared.call_sites.borrow()[lo32(op) as usize].share();
    c.fused_call(&site)
}

pub(crate) fn h_invokevirtual_slow(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let class_id = tfr!(c).class;
    let (vslot, arg_slots) = tchk!(c, resolve_virtual_method(c.vm, class_id, lo32(op) as u16));
    let mut sites = c.prepared.virt_sites.borrow_mut();
    if sites.len() <= u16::MAX as usize {
        sites.push(VirtSite {
            vslot,
            arg_slots,
            cache: RefCell::new(None),
        });
        let si = (sites.len() - 1) as u16;
        drop(sites);
        c.requicken(XInsn::InvokeVirtualF(si))
    } else {
        drop(sites);
        c.requicken(XInsn::InvokeVirtualR { vslot, arg_slots })
    }
}

fn missing_vslot(vslot: u32) -> Thrown {
    Thrown::ByName {
        class_name: "java/lang/AbstractMethodError",
        message: format!("vtable slot {vslot} missing"),
    }
}

pub(crate) fn h_invokevirtual_r(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let vslot = lo32(op);
    let arg_slots = (op >> 32) as u16;
    let receiver = tchk!(c, peek_receiver(c.vm, c.t, c.fidx, arg_slots));
    let rc = c.vm.heap.get(receiver).class;
    let target = match c.vm.classes[rc.0 as usize].vtable.get(vslot as usize) {
        Some(&mref) => mref,
        None => return c.throw(missing_vslot(vslot)),
    };
    c.finish_invoke(target, arg_slots)
}

pub(crate) fn h_invokevirtual_f(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let si = lo32(op) as usize;
    let (vslot, arg_slots, cached) = {
        let sites = c.prepared.virt_sites.borrow();
        let s = &sites[si];
        let out = (
            s.vslot,
            s.arg_slots,
            s.cache.borrow().as_ref().map(|(c, cs)| (*c, cs.share())),
        );
        out
    };
    let receiver = tchk!(c, peek_receiver(c.vm, c.t, c.fidx, arg_slots));
    let rc = c.vm.heap.get(receiver).class;
    // Monomorphic shape cache: a hit skips the vtable read and all
    // method-metadata loads. A miss on an already-populated cache means
    // the site is polymorphic — don't rebuild/overwrite per call; keep
    // the cached class and take the plain vtable path.
    let cache_state = match &cached {
        Some((cc, site)) if *cc == rc => {
            let site = site.share();
            return c.fused_call(&site);
        }
        Some(_) => CacheState::Polymorphic,
        None => CacheState::Cold,
    };
    let target = match c.vm.classes[rc.0 as usize].vtable.get(vslot as usize) {
        Some(&mref) => mref,
        None => return c.throw(missing_vslot(vslot)),
    };
    if cache_state == CacheState::Cold {
        match build_call_site(c.vm, target) {
            Some(site) => {
                {
                    let sites = c.prepared.virt_sites.borrow();
                    *sites[si].cache.borrow_mut() = Some((rc, site.share()));
                }
                c.fused_call(&site)
            }
            // Native/synchronized targets keep the shared path (monitor
            // entry, native dispatch).
            None => c.finish_invoke(target, arg_slots),
        }
    } else {
        c.finish_invoke(target, arg_slots)
    }
}

pub(crate) fn h_invokeinterface(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let s = &c.prepared.iface_sites[lo32(op) as usize];
    let arg_slots = s.arg_slots;
    let receiver = tchk!(c, peek_receiver(c.vm, c.t, c.fidx, arg_slots));
    let rc = c.vm.heap.get(receiver).class;
    // Per-site inline cache, migrated out of RtCp into the stream.
    let target = match s.cache.get() {
        Some((cc, mref)) if cc == rc => mref,
        _ => {
            let found = match lookup_virtual(c.vm, rc, &s.name, &s.descriptor) {
                Some(m) => m,
                None => {
                    let msg = format!(
                        "{}{} on {}",
                        s.name, s.descriptor, c.vm.classes[rc.0 as usize].name
                    );
                    return c.throw(Thrown::ByName {
                        class_name: "java/lang/AbstractMethodError",
                        message: msg,
                    });
                }
            };
            s.cache.set(Some((rc, found)));
            found
        }
    };
    c.finish_invoke(target, arg_slots)
}

/// Pool entry was malformed at pre-decode time: run the raw
/// interpreter's rtcp path verbatim.
pub(crate) fn h_invokeiface_slow(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let cp = lo32(op) as u16;
    let class_id = tfr!(c).class;
    let (name, desc, arg_slots) = tchk!(c, resolve_interface_method(c.vm, class_id, cp));
    let receiver = tchk!(c, peek_receiver(c.vm, c.t, c.fidx, arg_slots));
    let rc = c.vm.heap.get(receiver).class;
    let cached = match &c.vm.classes[class_id.0 as usize].rtcp[cp as usize] {
        RtCp::InterfaceMethod {
            cache: Some((cc, mref)),
            ..
        } if *cc == rc => Some(*mref),
        _ => None,
    };
    let target = match cached {
        Some(mref) => mref,
        None => {
            let found = match lookup_virtual(c.vm, rc, &name, &desc) {
                Some(m) => m,
                None => {
                    let msg = format!("{name}{desc} on {}", c.vm.classes[rc.0 as usize].name);
                    return c.throw(Thrown::ByName {
                        class_name: "java/lang/AbstractMethodError",
                        message: msg,
                    });
                }
            };
            if let RtCp::InterfaceMethod { cache, .. } =
                &mut c.vm.classes[class_id.0 as usize].rtcp[cp as usize]
            {
                *cache = Some((rc, found));
            }
            found
        }
    };
    c.finish_invoke(target, arg_slots)
}
