//! Handlers: constants (including the quickened string `ldc`), locals,
//! and operand-stack manipulation.

use super::{lo32, tchk, tfr, tpop, tpush, Ctx, Flow};
use crate::engine::xinsn::{LdcSite, XInsn};
use crate::interp::load_constant;
use crate::value::Value;
use ijvm_classfile::ConstEntry;
use std::cell::Cell;

pub(crate) fn h_nop(_c: &mut Ctx<'_>, _op: u64) -> Flow {
    Flow::Next
}

// ---- constants ----

pub(crate) fn h_aconst_null(c: &mut Ctx<'_>, _op: u64) -> Flow {
    tpush!(c, Value::Null);
    Flow::Next
}

pub(crate) fn h_iconst(c: &mut Ctx<'_>, op: u64) -> Flow {
    tpush!(c, Value::Int(lo32(op) as i32));
    Flow::Next
}

pub(crate) fn h_lconst(c: &mut Ctx<'_>, op: u64) -> Flow {
    tpush!(c, Value::Long(op as i64));
    Flow::Next
}

pub(crate) fn h_fconst(c: &mut Ctx<'_>, op: u64) -> Flow {
    tpush!(c, Value::Float(f32::from_bits(lo32(op))));
    Flow::Next
}

pub(crate) fn h_dconst(c: &mut Ctx<'_>, op: u64) -> Flow {
    tpush!(c, Value::Double(f64::from_bits(op)));
    Flow::Next
}

/// Slow `ldc` of a string/class constant. String constants quicken to
/// [`h_ldc_str`] with a per-site cache; class constants (whose
/// resolution can create mirrors) stay on this handler and re-resolve
/// through [`load_constant`] every execution, exactly like the raw
/// interpreter.
pub(crate) fn h_ldc_slow(c: &mut Ctx<'_>, op: u64) -> Flow {
    let cp = lo32(op) as u16;
    let class_id = tfr!(c).class;
    let is_string = matches!(
        c.vm.classes[class_id.0 as usize].pool.get(cp),
        Ok(ConstEntry::String { .. })
    );
    if is_string {
        let mut sites = c.prepared.ldc_sites.borrow_mut();
        if sites.len() <= u16::MAX as usize {
            sites.push(LdcSite {
                cp,
                cache: Cell::new(None),
            });
            let si = (sites.len() - 1) as u16;
            drop(sites);
            return c.requicken(XInsn::LdcStr(si));
        }
    }
    c.flush_at(c.next);
    let v = tchk!(c, load_constant(c.vm, c.tid, class_id, cp));
    tpush!(c, v);
    Flow::Next
}

/// Quickened string `ldc`: a `(isolate, gc-epoch, ref)` cache hit pushes
/// the interned string without touching the intern map; any GC (epoch
/// bump), isolate switch, or interned-ref death re-resolves and refills.
pub(crate) fn h_ldc_str(c: &mut Ctx<'_>, op: u64) -> Flow {
    let si = lo32(op) as usize;
    let iso = c.vm.threads[c.t].current_isolate;
    let cached = c.prepared.ldc_sites.borrow()[si].cache.get();
    match cached {
        Some((cc, epoch, r)) if cc == iso && epoch == c.vm.gc_count && c.vm.heap.is_live(r) => {
            tpush!(c, Value::Ref(r));
        }
        _ => {
            c.flush_at(c.next);
            let class_id = tfr!(c).class;
            let cp = c.prepared.ldc_sites.borrow()[si].cp;
            let v = tchk!(c, load_constant(c.vm, c.tid, class_id, cp));
            if let Value::Ref(r) = v {
                let epoch = c.vm.gc_count;
                c.prepared.ldc_sites.borrow()[si]
                    .cache
                    .set(Some((iso, epoch, r)));
            }
            tpush!(c, v);
        }
    }
    Flow::Next
}

// ---- locals ----

pub(crate) fn h_load(c: &mut Ctx<'_>, op: u64) -> Flow {
    let v = tfr!(c).locals[lo32(op) as usize];
    tpush!(c, v);
    Flow::Next
}

pub(crate) fn h_store(c: &mut Ctx<'_>, op: u64) -> Flow {
    let v = tpop!(c);
    tfr!(c).locals[lo32(op) as usize] = v;
    Flow::Next
}

pub(crate) fn h_iinc(c: &mut Ctx<'_>, op: u64) -> Flow {
    let slot = (op as u16) as usize;
    let delta = (op >> 16) as u16 as i16 as i32;
    let f = &mut tfr!(c);
    f.locals[slot] = Value::Int(f.locals[slot].as_int().wrapping_add(delta));
    Flow::Next
}

// ---- operand stack ----

pub(crate) fn h_pop(c: &mut Ctx<'_>, _op: u64) -> Flow {
    tpop!(c);
    Flow::Next
}

pub(crate) fn h_pop2(c: &mut Ctx<'_>, _op: u64) -> Flow {
    tpop!(c);
    tpop!(c);
    Flow::Next
}

pub(crate) fn h_dup(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let v = *tfr!(c).stack.last().expect("dup on empty stack");
    tpush!(c, v);
    Flow::Next
}

pub(crate) fn h_dup_x1(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let a = tpop!(c);
    let b = tpop!(c);
    tpush!(c, a);
    tpush!(c, b);
    tpush!(c, a);
    Flow::Next
}

pub(crate) fn h_dup_x2(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let a = tpop!(c);
    let b = tpop!(c);
    let d = tpop!(c);
    tpush!(c, a);
    tpush!(c, d);
    tpush!(c, b);
    tpush!(c, a);
    Flow::Next
}

pub(crate) fn h_dup2(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let a = tpop!(c);
    let b = tpop!(c);
    tpush!(c, b);
    tpush!(c, a);
    tpush!(c, b);
    tpush!(c, a);
    Flow::Next
}

pub(crate) fn h_dup2_x1(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let a = tpop!(c);
    let b = tpop!(c);
    let d = tpop!(c);
    tpush!(c, b);
    tpush!(c, a);
    tpush!(c, d);
    tpush!(c, b);
    tpush!(c, a);
    Flow::Next
}

pub(crate) fn h_dup2_x2(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let a = tpop!(c);
    let b = tpop!(c);
    let d = tpop!(c);
    let e = tpop!(c);
    tpush!(c, b);
    tpush!(c, a);
    tpush!(c, e);
    tpush!(c, d);
    tpush!(c, b);
    tpush!(c, a);
    Flow::Next
}

pub(crate) fn h_swap(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let a = tpop!(c);
    let b = tpop!(c);
    tpush!(c, a);
    tpush!(c, b);
    Flow::Next
}
