//! Handlers: arithmetic, shifts, bit logic, conversions, comparisons.
//! Semantics are identical to the raw interpreter's (wrapping integer
//! arithmetic, JVM NaN rules via [`fcmp`], saturating float→int via
//! [`f2i`]/[`f2l`]).

use super::{tpop, tpush, Ctx, Flow};
use crate::interp::{arith, cmp3, f2i, f2l, fcmp};
use crate::value::Value;

macro_rules! binop {
    ($name:ident, $as:ident, $ctor:ident, m $m:ident) => {
        pub(crate) fn $name(c: &mut Ctx<'_>, _op: u64) -> Flow {
            let b = tpop!(c).$as();
            let a = tpop!(c).$as();
            tpush!(c, Value::$ctor(a.$m(b)));
            Flow::Next
        }
    };
    ($name:ident, $as:ident, $ctor:ident, op $op:tt) => {
        pub(crate) fn $name(c: &mut Ctx<'_>, _op: u64) -> Flow {
            let b = tpop!(c).$as();
            let a = tpop!(c).$as();
            tpush!(c, Value::$ctor(a $op b));
            Flow::Next
        }
    };
}

macro_rules! divrem {
    ($name:ident, $as:ident, $ctor:ident, $m:ident) => {
        pub(crate) fn $name(c: &mut Ctx<'_>, _op: u64) -> Flow {
            let b = tpop!(c).$as();
            let a = tpop!(c).$as();
            if b == 0 {
                return c.throw(arith());
            }
            tpush!(c, Value::$ctor(a.$m(b)));
            Flow::Next
        }
    };
}

macro_rules! unop {
    ($name:ident, $as:ident, $ctor:ident, $f:expr) => {
        #[allow(clippy::redundant_closure_call)]
        pub(crate) fn $name(c: &mut Ctx<'_>, _op: u64) -> Flow {
            let a = tpop!(c).$as();
            let r = ($f)(a);
            tpush!(c, Value::$ctor(r));
            Flow::Next
        }
    };
}

macro_rules! shift {
    ($name:ident, $as:ident, $ctor:ident, $m:ident, $mask:expr) => {
        pub(crate) fn $name(c: &mut Ctx<'_>, _op: u64) -> Flow {
            let b = tpop!(c).as_int();
            let a = tpop!(c).$as();
            tpush!(c, Value::$ctor(a.$m(b as u32 & $mask)));
            Flow::Next
        }
    };
}

macro_rules! conv {
    ($name:ident, $get:ident, $to:ident, $ty:ty) => {
        pub(crate) fn $name(c: &mut Ctx<'_>, _op: u64) -> Flow {
            let v = tpop!(c).$get();
            tpush!(c, Value::$to(v as $ty));
            Flow::Next
        }
    };
}

// ---- int ----
binop!(h_iadd, as_int, Int, m wrapping_add);
binop!(h_isub, as_int, Int, m wrapping_sub);
binop!(h_imul, as_int, Int, m wrapping_mul);
divrem!(h_idiv, as_int, Int, wrapping_div);
divrem!(h_irem, as_int, Int, wrapping_rem);
unop!(h_ineg, as_int, Int, i32::wrapping_neg);
binop!(h_iand, as_int, Int, op &);
binop!(h_ior, as_int, Int, op |);
binop!(h_ixor, as_int, Int, op ^);
shift!(h_ishl, as_int, Int, wrapping_shl, 31);
shift!(h_ishr, as_int, Int, wrapping_shr, 31);

pub(crate) fn h_iushr(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let b = tpop!(c).as_int();
    let a = tpop!(c).as_int();
    tpush!(
        c,
        Value::Int(((a as u32).wrapping_shr(b as u32 & 31)) as i32)
    );
    Flow::Next
}

// ---- long ----
binop!(h_ladd, as_long, Long, m wrapping_add);
binop!(h_lsub, as_long, Long, m wrapping_sub);
binop!(h_lmul, as_long, Long, m wrapping_mul);
divrem!(h_ldiv, as_long, Long, wrapping_div);
divrem!(h_lrem, as_long, Long, wrapping_rem);
unop!(h_lneg, as_long, Long, i64::wrapping_neg);
binop!(h_land, as_long, Long, op &);
binop!(h_lor, as_long, Long, op |);
binop!(h_lxor, as_long, Long, op ^);
shift!(h_lshl, as_long, Long, wrapping_shl, 63);
shift!(h_lshr, as_long, Long, wrapping_shr, 63);

pub(crate) fn h_lushr(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let b = tpop!(c).as_int();
    let a = tpop!(c).as_long();
    tpush!(
        c,
        Value::Long(((a as u64).wrapping_shr(b as u32 & 63)) as i64)
    );
    Flow::Next
}

// ---- float ----
binop!(h_fadd, as_float, Float, op+);
binop!(h_fsub, as_float, Float, op -);
binop!(h_fmul, as_float, Float, op *);
binop!(h_fdiv, as_float, Float, op /);
binop!(h_frem, as_float, Float, op %);
unop!(h_fneg, as_float, Float, |a: f32| -a);

// ---- double ----
binop!(h_dadd, as_double, Double, op+);
binop!(h_dsub, as_double, Double, op -);
binop!(h_dmul, as_double, Double, op *);
binop!(h_ddiv, as_double, Double, op /);
binop!(h_drem, as_double, Double, op %);
unop!(h_dneg, as_double, Double, |a: f64| -a);

// ---- conversions ----
conv!(h_i2l, as_int, Long, i64);
conv!(h_i2f, as_int, Float, f32);
conv!(h_i2d, as_int, Double, f64);
conv!(h_l2i, as_long, Int, i32);
conv!(h_l2f, as_long, Float, f32);
conv!(h_l2d, as_long, Double, f64);
conv!(h_f2d, as_float, Double, f64);
conv!(h_d2f, as_double, Float, f32);
unop!(h_f2i, as_float, Int, f2i);
unop!(h_f2l, as_float, Long, |v: f32| f2l(v as f64));
unop!(h_d2i, as_double, Int, |v: f64| f2i(v as f32));
unop!(h_d2l, as_double, Long, f2l);
unop!(h_i2b, as_int, Int, |v: i32| v as i8 as i32);
unop!(h_i2c, as_int, Int, |v: i32| v as u16 as i32);
unop!(h_i2s, as_int, Int, |v: i32| v as i16 as i32);

// ---- comparisons ----

pub(crate) fn h_lcmp(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let b = tpop!(c).as_long();
    let a = tpop!(c).as_long();
    tpush!(c, Value::Int(cmp3(a, b)));
    Flow::Next
}

pub(crate) fn h_fcmp(c: &mut Ctx<'_>, op: u64) -> Flow {
    let b = tpop!(c).as_float();
    let a = tpop!(c).as_float();
    tpush!(c, Value::Int(fcmp(a as f64, b as f64, op != 0)));
    Flow::Next
}

pub(crate) fn h_dcmp(c: &mut Ctx<'_>, op: u64) -> Flow {
    let b = tpop!(c).as_double();
    let a = tpop!(c).as_double();
    tpush!(c, Value::Int(fcmp(a, b, op != 0)));
    Flow::Next
}
