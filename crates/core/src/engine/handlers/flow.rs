//! Handlers: branches, switches, superinstructions, returns, and traps.

use super::{cmp_from, hi32, lo32, tfr, tpop, tpush, Ctx, Flow};
use crate::engine::xinsn::{CmpRhs, SwitchTable};
use crate::interp::{cmp3, do_return, internal_err, unwind};
use crate::value::Value;
use crate::vm::Thrown;

// ---- branches ----

pub(crate) fn h_if(c: &mut Ctx<'_>, op: u64) -> Flow {
    let v = tpop!(c).as_int();
    if cmp_from(hi32(op)).test(v) {
        return c.branch_to(lo32(op));
    }
    Flow::Next
}

pub(crate) fn h_ificmp(c: &mut Ctx<'_>, op: u64) -> Flow {
    let b = tpop!(c).as_int();
    let a = tpop!(c).as_int();
    if cmp_from(hi32(op)).test(cmp3(a, b)) {
        return c.branch_to(lo32(op));
    }
    Flow::Next
}

pub(crate) fn h_ifacmp(c: &mut Ctx<'_>, op: u64) -> Flow {
    let b = tpop!(c);
    let a = tpop!(c);
    if (hi32(op) != 0) == a.ref_eq(b) {
        return c.branch_to(lo32(op));
    }
    Flow::Next
}

pub(crate) fn h_ifnull(c: &mut Ctx<'_>, op: u64) -> Flow {
    let v = tpop!(c);
    if (hi32(op) != 0) == matches!(v, Value::Null) {
        return c.branch_to(lo32(op));
    }
    Flow::Next
}

pub(crate) fn h_goto(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.branch_to(lo32(op))
}

pub(crate) fn h_tableswitch(c: &mut Ctx<'_>, op: u64) -> Flow {
    let key = tpop!(c).as_int();
    let target = match &c.prepared.switches[lo32(op) as usize] {
        SwitchTable::Table {
            default,
            low,
            targets,
        } => {
            let off = key as i64 - *low as i64;
            if off < 0 || off >= targets.len() as i64 {
                *default
            } else {
                targets[off as usize]
            }
        }
        SwitchTable::Lookup { .. } => unreachable!("tableswitch with lookup payload"),
    };
    c.branch_to(target)
}

pub(crate) fn h_lookupswitch(c: &mut Ctx<'_>, op: u64) -> Flow {
    let key = tpop!(c).as_int();
    let target = match &c.prepared.switches[lo32(op) as usize] {
        SwitchTable::Lookup { default, pairs } => pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, tgt)| tgt)
            .unwrap_or(*default),
        SwitchTable::Table { .. } => unreachable!("lookupswitch with table payload"),
    };
    c.branch_to(target)
}

// ---- superinstructions ----
// Fused forms count their full logical width so the instruction budget,
// vclock and CPU accounting stay bit-identical to the unfused stream;
// when the remaining quantum cannot cover the width they de-fuse to
// their leading `Load` (the tail cells still hold the originals).

pub(crate) fn h_addstore(c: &mut Ctx<'_>, op: u64) -> Flow {
    let a = op as u16 as usize;
    let b = (op >> 16) as u16 as usize;
    let dst = (op >> 32) as u16 as usize;
    if c.budget - c.consumed - c.local_insns >= 3 {
        c.local_insns += 3;
        let f = &mut tfr!(c);
        let v = f.locals[a].as_int().wrapping_add(f.locals[b].as_int());
        f.locals[dst] = Value::Int(v);
        c.next = c.cur + 4;
    } else {
        let v = tfr!(c).locals[a];
        tpush!(c, v);
    }
    Flow::Next
}

pub(crate) fn h_fusedcmpbr(c: &mut Ctx<'_>, op: u64) -> Flow {
    let fc = c.prepared.fused_cmps[lo32(op) as usize];
    if c.budget - c.consumed - c.local_insns >= 2 {
        c.local_insns += 2;
        let f = &tfr!(c);
        let lhs = f.locals[fc.slot as usize].as_int();
        let rhs = match fc.rhs {
            CmpRhs::Const(k) => k,
            CmpRhs::Local(s) => f.locals[s as usize].as_int(),
        };
        if fc.cmp.test(cmp3(lhs, rhs)) {
            return c.branch_to(fc.target);
        }
        c.next = c.cur + 3;
    } else {
        let v = tfr!(c).locals[fc.slot as usize];
        tpush!(c, v);
    }
    Flow::Next
}

// ---- returns ----

pub(crate) fn h_return(c: &mut Ctx<'_>, _op: u64) -> Flow {
    c.flush_at(c.next);
    if do_return(c.vm, c.tid, None) {
        Flow::Outer
    } else {
        Flow::Yield
    }
}

pub(crate) fn h_return_value(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let v = tpop!(c);
    c.flush_at(c.next);
    if do_return(c.vm, c.tid, Some(v)) {
        Flow::Outer
    } else {
        Flow::Yield
    }
}

/// `athrow` lives here with the other frame-leaving handlers.
pub(crate) fn h_athrow(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let r = tpop!(c);
    let Some(r) = r.as_ref() else {
        return c.throw(crate::interp::npe());
    };
    c.flush_at(c.next);
    if unwind(c.vm, c.tid, r) {
        Flow::Outer
    } else {
        Flow::Yield
    }
}

// ---- traps ----

pub(crate) fn h_invalid(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.throw(Thrown::ByName {
        class_name: "java/lang/VerifyError",
        message: format!("bad opcode {:#04x}", op as u8),
    })
}

pub(crate) fn h_trap(c: &mut Ctx<'_>, op: u64) -> Flow {
    let msg = match op {
        0 => "code ends in the middle of an instruction",
        1 => "branch into the middle of an instruction",
        _ => "execution ran off the end of the code",
    };
    c.throw(internal_err(msg))
}
