//! Handlers: static and instance fields, allocation, arrays, type tests,
//! and monitors. Slow forms resolve through the shared `resolve_*`
//! helpers and rewrite their cell to the resolved handler (quickening);
//! in `Shared` mode statics and `new` take a second transition to the
//! init-elided handlers, modelling the baseline JIT exactly like the
//! match engine's `*I` forms.

use super::{hi32, lo32, tchk, tfr, tpop, tpush, Ctx, Flow};
use crate::class::{ClassTarget, InitState};
use crate::engine::xinsn::XInsn;
use crate::heap::ObjBody;
use crate::ids::ClassId;
use crate::interp::{
    aioobe, alloc_prim_array, check_not_poisoned, ensure_initialized, internal_err, is_instance,
    npe, resolve_class, resolve_instance_field, resolve_static_field, InitAction,
};
use crate::monitor::{monitor_enter, monitor_exit, EnterResult};
use crate::value::Value;
use crate::vm::Thrown;

// ---- arrays ----

pub(crate) fn h_arrload(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let idx_v = tpop!(c).as_int();
    let arr = tpop!(c);
    let Some(arr) = arr.as_ref() else {
        return c.throw(npe());
    };
    let obj = c.vm.heap.get(arr);
    let len = obj.body.array_len().unwrap_or(0);
    if idx_v < 0 || idx_v as usize >= len {
        return c.throw(aioobe(idx_v, len));
    }
    let i = idx_v as usize;
    let v = match &obj.body {
        ObjBody::ArrInt(a) => Value::Int(a[i]),
        ObjBody::ArrLong(a) => Value::Long(a[i]),
        ObjBody::ArrFloat(a) => Value::Float(a[i]),
        ObjBody::ArrDouble(a) => Value::Double(a[i]),
        ObjBody::ArrRef { data, .. } => data[i],
        ObjBody::ArrByte(a) => Value::Int(a[i] as i32),
        ObjBody::ArrChar(a) => Value::Int(a[i] as i32),
        ObjBody::ArrShort(a) => Value::Int(a[i] as i32),
        ObjBody::ArrBool(a) => Value::Int(a[i] as i32),
        ObjBody::Fields(_) => return c.throw(internal_err("array load on non-array")),
    };
    tpush!(c, v);
    Flow::Next
}

pub(crate) fn h_arrstore(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let v = tpop!(c);
    let idx_v = tpop!(c).as_int();
    let arr = tpop!(c);
    let Some(arr) = arr.as_ref() else {
        return c.throw(npe());
    };
    let obj = c.vm.heap.get_mut(arr);
    let len = obj.body.array_len().unwrap_or(0);
    if idx_v < 0 || idx_v as usize >= len {
        return c.throw(aioobe(idx_v, len));
    }
    let i = idx_v as usize;
    match &mut obj.body {
        ObjBody::ArrInt(a) => a[i] = v.as_int(),
        ObjBody::ArrLong(a) => a[i] = v.as_long(),
        ObjBody::ArrFloat(a) => a[i] = v.as_float(),
        ObjBody::ArrDouble(a) => a[i] = v.as_double(),
        ObjBody::ArrRef { data, .. } => data[i] = v,
        ObjBody::ArrByte(a) => a[i] = v.as_int() as i8,
        ObjBody::ArrChar(a) => a[i] = v.as_int() as u16,
        ObjBody::ArrShort(a) => a[i] = v.as_int() as i16,
        ObjBody::ArrBool(a) => a[i] = (v.as_int() != 0) as u8,
        ObjBody::Fields(_) => return c.throw(internal_err("array store on non-array")),
    }
    Flow::Next
}

pub(crate) fn h_arraylength(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let r = tpop!(c);
    let Some(r) = r.as_ref() else {
        return c.throw(npe());
    };
    let len = c.vm.heap.get(r).body.array_len();
    let Some(len) = len else {
        return c.throw(internal_err("arraylength on non-array"));
    };
    tpush!(c, Value::Int(len as i32));
    Flow::Next
}

pub(crate) fn h_newarray(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let len = tpop!(c).as_int();
    if len < 0 {
        return c.throw(Thrown::ByName {
            class_name: "java/lang/NegativeArraySizeException",
            message: len.to_string(),
        });
    }
    let iso = c.vm.threads[c.t].current_isolate;
    let r = tchk!(c, alloc_prim_array(c.vm, iso, lo32(op) as u8, len as usize));
    tpush!(c, Value::Ref(r));
    Flow::Next
}

pub(crate) fn h_anewarray(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let class_id = tfr!(c).class;
    let target = tchk!(c, resolve_class(c.vm, class_id, lo32(op) as u16));
    let len = tpop!(c).as_int();
    if len < 0 {
        return c.throw(Thrown::ByName {
            class_name: "java/lang/NegativeArraySizeException",
            message: len.to_string(),
        });
    }
    let elem_desc = match &target {
        ClassTarget::Class(cl) => format!("L{};", c.vm.classes[cl.0 as usize].name),
        ClassTarget::Array(d) => d.clone(),
    };
    let iso = c.vm.threads[c.t].current_isolate;
    let size = crate::heap::OBJECT_HEADER_BYTES + len as usize * 8;
    tchk!(c, c.vm.check_heap(size, iso));
    let desc = format!("[{elem_desc}");
    let obj_class = c.vm.well_known.object.expect("bootstrap installed");
    let body = ObjBody::ArrRef {
        elem_desc,
        data: vec![Value::Null; len as usize].into_boxed_slice(),
    };
    let r = c.vm.alloc_raw(obj_class, iso, body, &desc);
    tpush!(c, Value::Ref(r));
    Flow::Next
}

// ---- static fields ----

pub(crate) fn h_getstatic_slow(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let class_id = tfr!(c).class;
    let (class, slot) = tchk!(c, resolve_static_field(c.vm, class_id, lo32(op) as u16));
    c.requicken(XInsn::GetStaticR { class, slot })
}

pub(crate) fn h_putstatic_slow(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let class_id = tfr!(c).class;
    let (class, slot) = tchk!(c, resolve_static_field(c.vm, class_id, lo32(op) as u16));
    c.requicken(XInsn::PutStaticR { class, slot })
}

/// Shared body of the resolved static access handlers. I-JVM cannot
/// quicken away the current-isolate load, mirror indirection, or init
/// state test (paper §3.1) — only the constant-pool resolution.
fn static_r(c: &mut Ctx<'_>, op: u64, is_get: bool) -> Flow {
    let class = ClassId(lo32(op));
    let slot = hi32(op);
    let iso = c.vm.threads[c.t].current_isolate;
    let mi = c.vm.mirror_index(iso);
    let ready_value = match c.vm.classes[class.0 as usize].mirrors.get(mi) {
        Some(Some(m)) if m.init == InitState::Initialized => Some(m.statics[slot as usize]),
        _ => None,
    };
    let hit = if let Some(v) = ready_value {
        if is_get {
            tpush!(c, v);
        } else {
            let v = tpop!(c);
            c.vm.classes[class.0 as usize].mirrors[mi]
                .as_mut()
                .expect("checked above")
                .statics[slot as usize] = v;
        }
        true
    } else {
        false
    };
    if !hit {
        c.flush_at(c.next);
        match ensure_initialized(c.vm, c.tid, class, iso) {
            Err(thrown) => return c.throw(thrown),
            Ok(InitAction::Ready) => {}
            Ok(InitAction::Suspend) => {
                // Re-execute this instruction once <clinit> ran.
                tfr!(c).pc = c.prepared.idx_to_pc[c.cur];
                return Flow::Outer;
            }
        }
        if is_get {
            let v = c.vm.classes[class.0 as usize].mirrors[mi]
                .as_ref()
                .expect("mirror created by ensure_initialized")
                .statics[slot as usize];
            tpush!(c, v);
        } else {
            let v = tpop!(c);
            c.vm.classes[class.0 as usize].mirrors[mi]
                .as_mut()
                .expect("mirror created by ensure_initialized")
                .statics[slot as usize] = v;
        }
    }
    if c.shared_mode {
        // Baseline fast path: the JIT removes the init check once the
        // class is initialized.
        c.prepared.threaded_cells()[c.cur].set(super::lower(if is_get {
            XInsn::GetStaticI { class, slot }
        } else {
            XInsn::PutStaticI { class, slot }
        }));
    }
    Flow::Next
}

pub(crate) fn h_getstatic_r(c: &mut Ctx<'_>, op: u64) -> Flow {
    static_r(c, op, true)
}

pub(crate) fn h_putstatic_r(c: &mut Ctx<'_>, op: u64) -> Flow {
    static_r(c, op, false)
}

pub(crate) fn h_getstatic_i(c: &mut Ctx<'_>, op: u64) -> Flow {
    let v = c.vm.classes[lo32(op) as usize].mirrors[0]
        .as_ref()
        .expect("fast entries only exist after init")
        .statics[hi32(op) as usize];
    tpush!(c, v);
    Flow::Next
}

pub(crate) fn h_putstatic_i(c: &mut Ctx<'_>, op: u64) -> Flow {
    let v = tpop!(c);
    c.vm.classes[lo32(op) as usize].mirrors[0]
        .as_mut()
        .expect("fast entries only exist after init")
        .statics[hi32(op) as usize] = v;
    Flow::Next
}

// ---- instance fields ----

pub(crate) fn h_getfield_slow(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let class_id = tfr!(c).class;
    let slot = tchk!(c, resolve_instance_field(c.vm, class_id, lo32(op) as u16));
    c.requicken(XInsn::GetFieldR(slot))
}

pub(crate) fn h_putfield_slow(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let class_id = tfr!(c).class;
    let slot = tchk!(c, resolve_instance_field(c.vm, class_id, lo32(op) as u16));
    c.requicken(XInsn::PutFieldR(slot))
}

pub(crate) fn h_getfield_r(c: &mut Ctx<'_>, op: u64) -> Flow {
    let r = tpop!(c);
    let Some(r) = r.as_ref() else {
        return c.throw(npe());
    };
    let obj = c.vm.heap.get(r);
    let ObjBody::Fields(fields) = &obj.body else {
        return c.throw(internal_err("getfield on array"));
    };
    let v = fields[lo32(op) as usize];
    tpush!(c, v);
    Flow::Next
}

pub(crate) fn h_putfield_r(c: &mut Ctx<'_>, op: u64) -> Flow {
    let v = tpop!(c);
    let r = tpop!(c);
    let Some(r) = r.as_ref() else {
        return c.throw(npe());
    };
    let obj = c.vm.heap.get_mut(r);
    let ObjBody::Fields(fields) = &mut obj.body else {
        return c.throw(internal_err("putfield on array"));
    };
    fields[lo32(op) as usize] = v;
    Flow::Next
}

// ---- objects ----

pub(crate) fn h_new_slow(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let class_id = tfr!(c).class;
    let target = tchk!(c, resolve_class(c.vm, class_id, lo32(op) as u16));
    let ClassTarget::Class(new_class) = target else {
        return c.throw(internal_err("new on array type"));
    };
    c.requicken(XInsn::NewR(new_class))
}

pub(crate) fn h_new_r(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let new_class = ClassId(lo32(op));
    let iso = c.vm.threads[c.t].current_isolate;
    tchk!(c, check_not_poisoned(c.vm, c.tid, new_class));
    if let Some(f) = c.ensure_class_ready(new_class) {
        return f;
    }
    if c.shared_mode {
        c.prepared.threaded_cells()[c.cur].set(super::lower(XInsn::NewI(new_class)));
    }
    let r = tchk!(c, c.vm.alloc_instance(new_class, iso));
    tpush!(c, Value::Ref(r));
    Flow::Next
}

/// Baseline fast path: init check elided, as a JIT would after first
/// execution.
pub(crate) fn h_new_i(c: &mut Ctx<'_>, op: u64) -> Flow {
    let iso = c.vm.threads[c.t].current_isolate;
    let r = tchk!(c, c.vm.alloc_instance(ClassId(lo32(op)), iso));
    tpush!(c, Value::Ref(r));
    Flow::Next
}

pub(crate) fn h_checkcast(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let class_id = tfr!(c).class;
    let target = tchk!(c, resolve_class(c.vm, class_id, lo32(op) as u16));
    let v = *tfr!(c).stack.last().expect("checkcast on empty stack");
    if let Value::Ref(r) = v {
        if !is_instance(c.vm, r, &target) {
            let from = c.vm.classes[c.vm.heap.get(r).class.0 as usize].name.clone();
            return c.throw(Thrown::ByName {
                class_name: "java/lang/ClassCastException",
                message: format!("{from} cannot be cast"),
            });
        }
    }
    Flow::Next
}

pub(crate) fn h_instanceof(c: &mut Ctx<'_>, op: u64) -> Flow {
    c.flush_at(c.next);
    let class_id = tfr!(c).class;
    let target = tchk!(c, resolve_class(c.vm, class_id, lo32(op) as u16));
    let v = tpop!(c);
    let res = match v {
        Value::Ref(r) => is_instance(c.vm, r, &target) as i32,
        _ => 0,
    };
    tpush!(c, Value::Int(res));
    Flow::Next
}

// ---- monitors ----

pub(crate) fn h_monitorenter(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let v = *tfr!(c).stack.last().expect("monitorenter on empty stack");
    let Some(r) = v.as_ref() else {
        tpop!(c);
        return c.throw(npe());
    };
    c.flush_at(c.next);
    match monitor_enter(c.vm, c.tid, r) {
        EnterResult::Acquired => {
            tpop!(c);
            Flow::Next
        }
        EnterResult::Blocked => {
            // Retry the monitorenter when rescheduled.
            tfr!(c).pc = c.prepared.idx_to_pc[c.cur];
            Flow::Yield
        }
    }
}

pub(crate) fn h_monitorexit(c: &mut Ctx<'_>, _op: u64) -> Flow {
    let v = tpop!(c);
    let Some(r) = v.as_ref() else {
        return c.throw(npe());
    };
    c.flush_at(c.next);
    tchk!(c, monitor_exit(c.vm, c.tid, r));
    Flow::Next
}
