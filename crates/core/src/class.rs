//! Runtime representation of loaded classes, including the per-isolate
//! *task class mirror* that carries static variables, the initialization
//! state and the `java.lang.Class` object (paper §3.1, after MVM).

use crate::ids::{ClassId, IsolateId, LoaderId, MethodRef, ThreadId};
use crate::value::{GcRef, Value};
use crate::vmrc::VmRc;
use ijvm_classfile::{AccessFlags, ConstPool, ExceptionTableEntry};
use std::sync::Arc;

/// A field (static or instance) as seen at runtime.
#[derive(Debug, Clone)]
pub struct FieldDesc {
    /// Field name.
    pub name: Arc<str>,
    /// Field descriptor.
    pub descriptor: Arc<str>,
    /// Access flags.
    pub access: AccessFlags,
    /// Class that declared this field.
    pub declared_in: ClassId,
}

/// The executable body of a bytecode method.
#[derive(Debug)]
pub struct CodeBody {
    /// Maximum operand-stack depth.
    pub max_stack: u16,
    /// Local-variable slot count.
    pub max_locals: u16,
    /// Raw bytecode.
    pub bytes: Vec<u8>,
    /// Exception handlers in priority order.
    pub handlers: Vec<ExceptionTableEntry>,
}

/// A method as seen at runtime. Not `Clone`: it owns unit-confined
/// [`VmRc`] handles (see `crate::vmrc`), which only crate code may
/// share.
#[derive(Debug)]
pub struct RuntimeMethod {
    /// Method name.
    pub name: Arc<str>,
    /// Method descriptor.
    pub descriptor: Arc<str>,
    /// Access flags.
    pub access: AccessFlags,
    /// Argument slot count *including* the receiver for instance methods.
    pub arg_slots: u16,
    /// `true` when the method returns a value.
    pub returns_value: bool,
    /// Bytecode body (`None` for native/abstract methods).
    pub code: Option<VmRc<CodeBody>>,
    /// Pre-decoded instruction stream for the quickened engine, built
    /// lazily on first execution and dropped with the owning loader.
    pub prepared: Option<VmRc<crate::engine::PreparedCode>>,
    /// Index into the VM's native-function table, bound lazily.
    pub native_idx: Option<u32>,
    /// Virtual-table slot, for non-static non-private non-init methods.
    pub vslot: Option<u32>,
    /// `true` for `synchronized` methods.
    pub synchronized: bool,
}

impl RuntimeMethod {
    /// `true` for static methods.
    pub fn is_static(&self) -> bool {
        self.access.is_static()
    }
}

/// Initialization state of a (class, isolate) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitState {
    /// `<clinit>` has not run in this isolate.
    Uninitialized,
    /// `<clinit>` is running on the given thread.
    InProgress(ThreadId),
    /// Initialization completed.
    Initialized,
    /// Initialization failed; further use throws.
    Failed,
}

/// The per-isolate state of a class: its static variables, initialization
/// state and `java.lang.Class` object (paper §3.1, "task class mirror").
#[derive(Debug, Clone)]
pub struct TaskClassMirror {
    /// Initialization state in the owning isolate.
    pub init: InitState,
    /// Static-variable slots, in `static_fields` order.
    pub statics: Box<[Value]>,
    /// The isolate-private `java.lang.Class` object.
    pub class_object: GcRef,
}

/// A resolved runtime-constant-pool entry (lazily filled cache).
#[derive(Debug, Clone, Default)]
pub enum RtCp {
    /// Not resolved yet.
    #[default]
    Untouched,
    /// A resolved class reference.
    Class(ClassTarget),
    /// Resolved instance field: flattened slot index.
    InstanceField {
        /// Slot in the object's field array.
        slot: u32,
    },
    /// Resolved static field: the defining class and slot in its statics.
    StaticField {
        /// Class whose mirror holds the slot.
        class: ClassId,
        /// Slot index in the mirror's statics array.
        slot: u32,
    },
    /// Shared-mode only: resolved static field whose class is known
    /// initialized — the init check is elided, as LadyVM's JIT does after
    /// first compilation. I-JVM cannot do this (paper §3.1: compiled code
    /// must stay reentrant across isolates), which is where its
    /// static-access overhead comes from.
    StaticFieldInit {
        /// Class whose mirror holds the slot.
        class: ClassId,
        /// Slot index in the mirror's statics array.
        slot: u32,
    },
    /// Shared-mode only: `new` target known initialized (check elided).
    ClassInit(ClassId),
    /// Shared-mode only: static call target known initialized.
    DirectMethodInit(MethodRef),
    /// Resolved static or special (non-virtual) call target.
    DirectMethod(MethodRef),
    /// Resolved virtual call: vtable slot + argument count.
    VirtualMethod {
        /// Slot in the receiver's vtable.
        vslot: u32,
        /// Argument slots including receiver.
        arg_slots: u16,
    },
    /// Interface call: dispatched by name/descriptor lookup with a
    /// per-call-site inline cache.
    InterfaceMethod {
        /// Method name.
        name: Arc<str>,
        /// Method descriptor.
        descriptor: Arc<str>,
        /// Argument slots including receiver.
        arg_slots: u16,
        /// Inline cache: last receiver class and resolved target.
        cache: Option<(ClassId, MethodRef)>,
    },
}

/// What a `Class` constant refers to: a real class or an array type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassTarget {
    /// A loaded class.
    Class(ClassId),
    /// An array type, kept as its descriptor (e.g. `[I`, `[Ljava/lang/String;`).
    Array(String),
}

/// A loaded, linked class.
#[derive(Debug)]
pub struct RuntimeClass {
    /// This class's id.
    pub id: ClassId,
    /// Internal name (`java/lang/String`).
    pub name: Arc<str>,
    /// Defining loader.
    pub loader: LoaderId,
    /// Isolate of the defining loader. For system-library classes this is
    /// `Isolate0`, but system code always *executes* in the caller's isolate.
    pub isolate: IsolateId,
    /// `true` for Java System Library classes (bootstrap loader): they run
    /// in the calling isolate and their frames are charged to the caller
    /// (paper §3.1, §3.2).
    pub is_system: bool,
    /// Class access flags.
    pub access: AccessFlags,
    /// Superclass (`None` for `java/lang/Object`).
    pub super_class: Option<ClassId>,
    /// Directly implemented interfaces.
    pub interfaces: Vec<ClassId>,
    /// Flattened instance fields: inherited fields first, then own.
    pub instance_fields: Vec<FieldDesc>,
    /// Static fields declared by *this* class only.
    pub static_fields: Vec<FieldDesc>,
    /// Declared methods.
    pub methods: Vec<RuntimeMethod>,
    /// Virtual dispatch table (inherits and overrides the super's).
    pub vtable: Vec<MethodRef>,
    /// The class-file constant pool.
    pub pool: ConstPool,
    /// Runtime constant-pool resolution cache, indexed by `CpIndex`.
    pub rtcp: Vec<RtCp>,
    /// Task class mirrors, indexed by isolate id. In `Shared` isolation
    /// mode only index 0 is ever used — that is exactly the difference
    /// between LadyVM and I-JVM.
    pub mirrors: Vec<Option<TaskClassMirror>>,
    /// Set when the defining isolate has been terminated: every call into
    /// this class throws `StoppedIsolateException` (paper §3.3).
    pub poisoned: bool,
}

impl RuntimeClass {
    /// Finds a declared method by name and descriptor.
    pub fn find_method(&self, name: &str, descriptor: &str) -> Option<u16> {
        self.methods
            .iter()
            .position(|m| &*m.name == name && &*m.descriptor == descriptor)
            .map(|i| i as u16)
    }

    /// Finds a declared static field by name, returning its slot.
    pub fn find_static_slot(&self, name: &str) -> Option<u32> {
        self.static_fields
            .iter()
            .position(|f| &*f.name == name)
            .map(|i| i as u32)
    }

    /// Finds an instance field by name in the flattened layout
    /// (searching from the back so shadowing fields win).
    pub fn find_instance_slot(&self, name: &str) -> Option<u32> {
        self.instance_fields
            .iter()
            .rposition(|f| &*f.name == name)
            .map(|i| i as u32)
    }

    /// Returns the mirror for `iso`, if created.
    pub fn mirror(&self, iso: IsolateId) -> Option<&TaskClassMirror> {
        self.mirrors.get(iso.0 as usize).and_then(|m| m.as_ref())
    }

    /// Mutable mirror access.
    pub fn mirror_mut(&mut self, iso: IsolateId) -> Option<&mut TaskClassMirror> {
        self.mirrors
            .get_mut(iso.0 as usize)
            .and_then(|m| m.as_mut())
    }

    /// Rough metadata footprint of this class's mirrors, for the Figure 3
    /// memory measurements: the mirror array itself plus each mirror's
    /// statics array and bookkeeping.
    pub fn mirror_metadata_bytes(&self) -> usize {
        let per_mirror = |m: &TaskClassMirror| 16 + m.statics.len() * 8 + 8;
        self.mirrors.len() * 8 + self.mirrors.iter().flatten().map(per_mirror).sum::<usize>()
    }
}
