//! Unit checkpoint/restore: stable byte images of whole execution units.
//!
//! A checkpoint captures a *quiesced* unit — a VM parked at a quantum
//! boundary with no in-flight cross-unit traffic — as a self-describing
//! binary image ([`UnitImage`]) that can be written to disk, restored
//! into a fresh [`Vm`] (crash-restart), or restored N times with
//! remapped service names (snapshot-fork scale-out,
//! [`crate::sched::Cluster::submit_image_n`]).
//!
//! # Image format
//!
//! ```text
//! magic   b"CKPT"                      4 bytes
//! version u16 (currently 1)            2 bytes
//! count   u32 section count (8)        4 bytes
//! table   count × { tag u8, offset u32, len u32, crc32 u32 }
//! payload concatenated section bodies (offsets relative to payload)
//! ```
//!
//! Sections, in tag order: OPTS (hard VM options), LOADERS (names,
//! classpaths, delegation), ISOLATES (state, interned strings, resource
//! stats, exported ports), CLASSES (per-class loader + name + task class
//! mirrors), HEAP (the slab, positionally, plus the free list), THREADS
//! (green-thread stacks and the run queue), PORT (exported pumps and
//! resolved futures), MISC (vclock, console, host roots, counters).
//! Every section carries a CRC32; a flipped bit anywhere fails restore
//! with [`CheckpointError::ChecksumMismatch`] instead of resurrecting a
//! corrupt unit.
//!
//! # What is serialized vs. re-derived
//!
//! The image stores only *semantic* state. Everything derivable is
//! rebuilt on restore so an image can never smuggle stale derived state
//! across an engine or version change:
//!
//! * class metadata is **replayed** from the classfile bytes carried in
//!   the loader classpaths (`load_class` in recorded [`ClassId`] order),
//!   so vtables, field layouts and constant pools are re-derived;
//! * quickened/threaded code ([`crate::engine::PreparedCode`]) is *not*
//!   serialized — `prepared` starts `None` and every method re-quickens
//!   lazily, which is what lets a Deterministic-oracle image restore
//!   under a different engine;
//! * runtime constant-pool caches restart cold (`RtCp::Untouched`),
//!   native bindings are re-looked-up at define time from the natives
//!   the embedder re-registers, frame pools start empty, and `pc` is a
//!   stable bytecode offset, never an engine-internal index.
//!
//! Restore is oracle-transparent: a restored unit's heap slab, free
//! list, run queue, vclock and per-isolate exact-CPU counters are
//! bit-identical to the captured unit's, so resuming mid-run produces
//! exactly the results, console, vclock and accounting of the
//! uninterrupted run under every scheduler mode.

use crate::class::{InitState, TaskClassMirror};
use crate::heap::{Heap, MonitorState, ObjBody, Object};
use crate::ids::{ClassId, IsolateId, LoaderId, MethodRef, ThreadId};
use crate::isolate::{Isolate, IsolateState};
use crate::port::{FutureImage, FutureSlotImage, PayloadKind, PortImage, PumpImage, ReplyError};
use crate::thread::{Frame, FramePool, ThreadState, VmThread};
use crate::value::{GcRef, Value};
use crate::vm::{IsolationMode, Vm, VmOptions};
use crate::wire::{Reader, WireError};
use std::collections::VecDeque;

/// Image magic: the first four bytes of every unit image.
pub const MAGIC: &[u8; 4] = b"CKPT";
/// Current image format version.
pub const FORMAT_VERSION: u16 = 1;

const SECTION_COUNT: usize = 8;
const SECTION_NAMES: [&str; SECTION_COUNT] = [
    "OPTS", "LOADERS", "ISOLATES", "CLASSES", "HEAP", "THREADS", "PORT", "MISC",
];
const HEADER_BYTES: usize = 4 + 2 + 4;
const TABLE_ENTRY_BYTES: usize = 1 + 4 + 4 + 4;

/// Errors raised while capturing or restoring a unit image.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The unit is not at a clean quantum boundary (in-flight cross-unit
    /// traffic, a thread parked on the port layer, unflushed quota).
    /// Capture again after more slices; the scheduler's drain-to-boundary
    /// protocol retries automatically.
    NotQuiescent(&'static str),
    /// The image ends mid-structure.
    Truncated,
    /// The first four bytes are not `b"CKPT"`.
    BadMagic,
    /// The format version is not one this build can decode.
    BadVersion(u16),
    /// A section body does not match its table checksum.
    ChecksumMismatch(&'static str),
    /// Structurally invalid image (bad tag, dangling reference, replay
    /// divergence, trailing bytes, ...).
    Corrupt(&'static str),
    /// A hard VM option in the image differs from the restore options.
    OptionsMismatch(&'static str),
    /// The live unit holds state the image format cannot represent.
    Unsupported(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::NotQuiescent(w) => write!(f, "unit not quiescent: {w}"),
            CheckpointError::Truncated => write!(f, "truncated image"),
            CheckpointError::BadMagic => write!(f, "not a unit image (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            CheckpointError::ChecksumMismatch(s) => {
                write!(f, "checksum mismatch in {s} section")
            }
            CheckpointError::Corrupt(w) => write!(f, "corrupt image: {w}"),
            CheckpointError::OptionsMismatch(w) => {
                write!(f, "restore options disagree with image: {w}")
            }
            CheckpointError::Unsupported(w) => write!(f, "cannot checkpoint: {w}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> CheckpointError {
        match e {
            WireError::Truncated => CheckpointError::Truncated,
            WireError::BadTag(_) => CheckpointError::Corrupt("bad tag"),
            WireError::UnknownClass(_) => CheckpointError::Corrupt("unknown class"),
            WireError::OutOfMemory => CheckpointError::Corrupt("image exhausts heap"),
            WireError::Corrupt(w) => CheckpointError::Corrupt(w),
        }
    }
}

/// A complete, validated-on-construction byte image of one unit.
///
/// Obtain one with [`Vm::checkpoint`] (an already-quiesced VM) or
/// [`crate::sched::UnitHandle::checkpoint_at`] (a running unit, cut at a
/// quantum boundary by the cluster scheduler). Feed it back through
/// [`restore`], [`crate::sched::Cluster::submit_image`] or
/// [`crate::sched::Cluster::submit_image_n`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct UnitImage {
    bytes: Vec<u8>,
}

impl UnitImage {
    /// The raw image bytes (stable: safe to write to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the image, returning the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Image size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` if the image holds no bytes (never true for a parsed image).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Wraps bytes read back from storage, validating the header, the
    /// section table and every section checksum. Deep structural
    /// validation happens at [`restore`] time.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<UnitImage, CheckpointError> {
        parse(&bytes)?;
        Ok(UnitImage { bytes })
    }
}

// ----------------------------------------------------------------------
// CRC32 (IEEE, the zip/PNG polynomial) — hand-rolled so the image format
// has zero dependencies.
// ----------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ----------------------------------------------------------------------
// Big-endian writers (the Reader in `wire.rs` is the matching decoder).
// ----------------------------------------------------------------------

fn w_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn w_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn w_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn w_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn w_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn w_str(out: &mut Vec<u8>, s: &str) {
    w_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn w_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => w_u8(out, 0),
        Some(x) => {
            w_u8(out, 1);
            w_u32(out, x);
        }
    }
}

fn w_value(out: &mut Vec<u8>, v: Value) {
    match v {
        Value::Null => w_u8(out, 0),
        Value::Int(x) => {
            w_u8(out, 1);
            w_u32(out, x as u32);
        }
        Value::Long(x) => {
            w_u8(out, 2);
            w_u64(out, x as u64);
        }
        Value::Float(x) => {
            w_u8(out, 3);
            w_u32(out, x.to_bits());
        }
        Value::Double(x) => {
            w_u8(out, 4);
            w_u64(out, x.to_bits());
        }
        Value::Ref(r) => {
            w_u8(out, 5);
            w_u32(out, r.0);
        }
    }
}

fn w_values(out: &mut Vec<u8>, vs: &[Value]) {
    w_u32(out, vs.len() as u32);
    for &v in vs {
        w_value(out, v);
    }
}

fn w_methodref(out: &mut Vec<u8>, m: MethodRef) {
    w_u32(out, m.class.0);
    w_u16(out, m.index);
}

fn w_opt_methodref(out: &mut Vec<u8>, m: Option<MethodRef>) {
    match m {
        None => w_u8(out, 0),
        Some(m) => {
            w_u8(out, 1);
            w_methodref(out, m);
        }
    }
}

// ----------------------------------------------------------------------
// Bounds-checked readers on top of `wire::Reader`. Counts are validated
// against the bytes actually present *before* any allocation, so a
// hostile length field fails with `Truncated` instead of an absurd
// allocation.
// ----------------------------------------------------------------------

fn r_bool(r: &mut Reader<'_>) -> Result<bool, CheckpointError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CheckpointError::Corrupt("bool out of range")),
    }
}

/// Reads an element count whose elements each occupy at least
/// `min_elem_bytes` encoded bytes.
fn r_count(r: &mut Reader<'_>, min_elem_bytes: usize) -> Result<usize, CheckpointError> {
    let n = r.u32()? as usize;
    if n.saturating_mul(min_elem_bytes.max(1)) > r.remaining() {
        return Err(CheckpointError::Truncated);
    }
    Ok(n)
}

fn r_opt_u32(r: &mut Reader<'_>) -> Result<Option<u32>, CheckpointError> {
    Ok(if r_bool(r)? { Some(r.u32()?) } else { None })
}

fn r_value(r: &mut Reader<'_>) -> Result<Value, CheckpointError> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int(r.u32()? as i32),
        2 => Value::Long(r.u64()? as i64),
        3 => Value::Float(f32::from_bits(r.u32()?)),
        4 => Value::Double(f64::from_bits(r.u64()?)),
        5 => Value::Ref(GcRef(r.u32()?)),
        _ => return Err(CheckpointError::Corrupt("value tag")),
    })
}

fn r_values(r: &mut Reader<'_>) -> Result<Vec<Value>, CheckpointError> {
    let n = r_count(r, 1)?;
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(r_value(r)?);
    }
    Ok(out)
}

fn r_methodref(r: &mut Reader<'_>) -> Result<MethodRef, CheckpointError> {
    Ok(MethodRef {
        class: ClassId(r.u32()?),
        index: r.u16()?,
    })
}

fn r_opt_methodref(r: &mut Reader<'_>) -> Result<Option<MethodRef>, CheckpointError> {
    Ok(if r_bool(r)? {
        Some(r_methodref(r)?)
    } else {
        None
    })
}

fn r_tid_list(r: &mut Reader<'_>) -> Result<VecDeque<ThreadId>, CheckpointError> {
    let n = r_count(r, 4)?;
    let mut out = VecDeque::new();
    for _ in 0..n {
        out.push_back(ThreadId(r.u32()?));
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Header + section table
// ----------------------------------------------------------------------

fn parse(bytes: &[u8]) -> Result<[&[u8]; SECTION_COUNT], CheckpointError> {
    if bytes.len() < 4 {
        return Err(CheckpointError::Truncated);
    }
    if &bytes[0..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut r = Reader { bytes, pos: 4 };
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = r.u32()?;
    if count != SECTION_COUNT as u32 {
        return Err(CheckpointError::Corrupt("section count"));
    }
    let payload_start = HEADER_BYTES + SECTION_COUNT * TABLE_ENTRY_BYTES;
    let mut out = [&bytes[0..0]; SECTION_COUNT];
    let mut expect_off = 0u32;
    for (i, slot) in out.iter_mut().enumerate() {
        let tag = r.u8()?;
        let off = r.u32()?;
        let len = r.u32()?;
        let crc = r.u32()?;
        if tag != (i + 1) as u8 {
            return Err(CheckpointError::Corrupt("section table order"));
        }
        if off != expect_off {
            return Err(CheckpointError::Corrupt("section offsets not contiguous"));
        }
        let start = payload_start
            .checked_add(off as usize)
            .ok_or(CheckpointError::Truncated)?;
        let end = start
            .checked_add(len as usize)
            .ok_or(CheckpointError::Truncated)?;
        if end > bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let body = &bytes[start..end];
        if crc32(body) != crc {
            return Err(CheckpointError::ChecksumMismatch(SECTION_NAMES[i]));
        }
        *slot = body;
        expect_off = expect_off
            .checked_add(len)
            .ok_or(CheckpointError::Corrupt("section length overflow"))?;
    }
    if payload_start + expect_off as usize != bytes.len() {
        return Err(CheckpointError::Corrupt(
            "trailing bytes after last section",
        ));
    }
    Ok(out)
}

fn assemble(sections: [Vec<u8>; SECTION_COUNT]) -> UnitImage {
    let payload_len: usize = sections.iter().map(Vec::len).sum();
    let mut bytes =
        Vec::with_capacity(HEADER_BYTES + SECTION_COUNT * TABLE_ENTRY_BYTES + payload_len);
    bytes.extend_from_slice(MAGIC);
    w_u16(&mut bytes, FORMAT_VERSION);
    w_u32(&mut bytes, SECTION_COUNT as u32);
    let mut off = 0u32;
    for (i, body) in sections.iter().enumerate() {
        w_u8(&mut bytes, (i + 1) as u8);
        w_u32(&mut bytes, off);
        w_u32(&mut bytes, body.len() as u32);
        w_u32(&mut bytes, crc32(body));
        off += body.len() as u32;
    }
    for body in &sections {
        bytes.extend_from_slice(body);
    }
    UnitImage { bytes }
}

// ----------------------------------------------------------------------
// Capture
// ----------------------------------------------------------------------

/// Captures a quiesced VM as a unit image. Prefer the public entry
/// points: [`Vm::checkpoint`] for a VM the embedder holds directly,
/// [`crate::sched::UnitHandle::checkpoint_at`] for a running unit.
pub(crate) fn capture(vm: &Vm) -> Result<UnitImage, CheckpointError> {
    // Quiescence: the port layer must be at a drained boundary...
    vm.port_checkpoint_clean()
        .map_err(CheckpointError::NotQuiescent)?;
    // ...and no green thread may be parked on cross-unit machinery
    // (those states name hub-side entities that do not survive into an
    // image; the scheduler's drain-to-boundary protocol retries the
    // capture once replies land and wake the threads).
    for t in &vm.threads {
        match t.state {
            ThreadState::BlockedOnPort { .. } => {
                return Err(CheckpointError::NotQuiescent(
                    "thread parked in a cross-unit call",
                ))
            }
            ThreadState::BlockedOnFuture { .. } => {
                return Err(CheckpointError::NotQuiescent(
                    "thread parked on an unresolved future",
                ))
            }
            ThreadState::BlockedOnQuota => {
                return Err(CheckpointError::NotQuiescent(
                    "thread parked on a destination quota",
                ))
            }
            _ => {}
        }
    }
    // Replayability: every class's bytes must be present in its defining
    // loader's classpath (true for classes installed via
    // `install_system_class` / `add_class_bytes`, i.e. everything the
    // embedding API can produce), and no bundle class may shadow a
    // bootstrap classpath name, or the restore-side replay would resolve
    // it through the bootstrap loader instead.
    for c in &vm.classes {
        let ld = vm
            .loaders
            .get(c.loader.0 as usize)
            .ok_or(CheckpointError::Corrupt("class with unknown loader"))?;
        if !ld.classpath.contains_key(c.name.as_ref() as &str) {
            return Err(CheckpointError::Unsupported(
                "class bytes missing from its defining loader's classpath",
            ));
        }
        if !c.is_system
            && vm.loaders[0]
                .classpath
                .contains_key(c.name.as_ref() as &str)
        {
            return Err(CheckpointError::Unsupported(
                "bundle class shadows a bootstrap class name",
            ));
        }
    }

    Ok(assemble([
        enc_opts(vm),
        enc_loaders(vm),
        enc_isolates(vm),
        enc_classes(vm),
        enc_heap(vm),
        enc_threads(vm)?,
        enc_port(vm),
        enc_misc(vm),
    ]))
}

fn enc_opts(vm: &Vm) -> Vec<u8> {
    let o = &vm.options;
    let mut out = Vec::new();
    w_u8(
        &mut out,
        match o.isolation {
            IsolationMode::Shared => 0,
            IsolationMode::Isolated => 1,
        },
    );
    w_bool(&mut out, o.accounting);
    w_u64(&mut out, o.heap_limit_bytes as u64);
    w_u64(&mut out, o.max_threads as u64);
    w_u64(&mut out, o.max_frames as u64);
    w_u32(&mut out, o.quantum);
    w_u64(&mut out, o.gc_threshold_bytes as u64);
    out
}

fn enc_loaders(vm: &Vm) -> Vec<u8> {
    let mut out = Vec::new();
    w_u32(&mut out, vm.loaders.len() as u32);
    for l in &vm.loaders {
        w_str(&mut out, &l.name);
        w_u16(&mut out, l.isolate.0);
        w_bool(&mut out, l.is_system);
        // Classpaths live in a hash map; sort so image bytes are a pure
        // function of VM state, not hash order.
        let mut entries: Vec<(&String, &Vec<u8>)> = l.classpath.iter().collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        w_u32(&mut out, entries.len() as u32);
        for (name, bytes) in entries {
            w_str(&mut out, name);
            w_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(bytes);
        }
        w_u32(&mut out, l.delegates.len() as u32);
        for d in &l.delegates {
            w_u16(&mut out, d.0);
        }
    }
    out
}

fn enc_isolates(vm: &Vm) -> Vec<u8> {
    let mut out = Vec::new();
    w_u32(&mut out, vm.isolates.len() as u32);
    for iso in &vm.isolates {
        w_str(&mut out, &iso.name);
        w_u8(
            &mut out,
            match iso.state {
                IsolateState::Active => 0,
                IsolateState::Terminating => 1,
                IsolateState::Dead => 2,
            },
        );
        w_u16(&mut out, iso.loader.0);
        let mut strings: Vec<(&String, &GcRef)> = iso.strings.iter().collect();
        strings.sort_unstable_by_key(|(k, _)| *k);
        w_u32(&mut out, strings.len() as u32);
        for (s, r) in strings {
            w_str(&mut out, s);
            w_u32(&mut out, r.0);
        }
        let st = &iso.stats;
        for v in [
            st.cpu_sampled,
            st.cpu_exact,
            st.allocated_bytes,
            st.allocated_objects,
            st.live_bytes,
            st.live_objects,
            st.threads_created,
            st.threads_live,
            st.threads_parked,
            st.gc_triggers,
            st.io_read_bytes,
            st.io_written_bytes,
            st.connections_opened,
            st.live_connections,
            st.calls_in,
        ] {
            w_u64(&mut out, v);
        }
        w_u32(&mut out, iso.exported_ports.len() as u32);
        for p in &iso.exported_ports {
            w_str(&mut out, p);
        }
    }
    out
}

fn enc_classes(vm: &Vm) -> Vec<u8> {
    let mut out = Vec::new();
    w_u32(&mut out, vm.classes.len() as u32);
    for c in &vm.classes {
        w_u16(&mut out, c.loader.0);
        w_str(&mut out, &c.name);
        w_bool(&mut out, c.poisoned);
        w_u32(&mut out, c.mirrors.len() as u32);
        for m in &c.mirrors {
            match m {
                None => w_u8(&mut out, 0),
                Some(m) => {
                    w_u8(&mut out, 1);
                    match m.init {
                        InitState::Uninitialized => w_u8(&mut out, 0),
                        InitState::InProgress(tid) => {
                            w_u8(&mut out, 1);
                            w_u32(&mut out, tid.0);
                        }
                        InitState::Initialized => w_u8(&mut out, 2),
                        InitState::Failed => w_u8(&mut out, 3),
                    }
                    w_values(&mut out, &m.statics);
                    w_u32(&mut out, m.class_object.0);
                }
            }
        }
    }
    out
}

fn enc_body(out: &mut Vec<u8>, body: &ObjBody) {
    match body {
        ObjBody::Fields(f) => {
            w_u8(out, 0);
            w_values(out, f);
        }
        ObjBody::ArrBool(a) => {
            w_u8(out, 1);
            w_u32(out, a.len() as u32);
            out.extend_from_slice(a);
        }
        ObjBody::ArrByte(a) => {
            w_u8(out, 2);
            w_u32(out, a.len() as u32);
            for &x in a.iter() {
                out.push(x as u8);
            }
        }
        ObjBody::ArrChar(a) => {
            w_u8(out, 3);
            w_u32(out, a.len() as u32);
            for &x in a.iter() {
                w_u16(out, x);
            }
        }
        ObjBody::ArrShort(a) => {
            w_u8(out, 4);
            w_u32(out, a.len() as u32);
            for &x in a.iter() {
                w_u16(out, x as u16);
            }
        }
        ObjBody::ArrInt(a) => {
            w_u8(out, 5);
            w_u32(out, a.len() as u32);
            for &x in a.iter() {
                w_u32(out, x as u32);
            }
        }
        ObjBody::ArrLong(a) => {
            w_u8(out, 6);
            w_u32(out, a.len() as u32);
            for &x in a.iter() {
                w_u64(out, x as u64);
            }
        }
        ObjBody::ArrFloat(a) => {
            w_u8(out, 7);
            w_u32(out, a.len() as u32);
            for &x in a.iter() {
                w_u32(out, x.to_bits());
            }
        }
        ObjBody::ArrDouble(a) => {
            w_u8(out, 8);
            w_u32(out, a.len() as u32);
            for &x in a.iter() {
                w_u64(out, x.to_bits());
            }
        }
        ObjBody::ArrRef { elem_desc, data } => {
            w_u8(out, 9);
            w_str(out, elem_desc);
            w_values(out, data);
        }
    }
}

fn enc_heap(vm: &Vm) -> Vec<u8> {
    let mut out = Vec::new();
    let slots = vm.heap.slots();
    // The slab is written positionally, holes included: slab indices ARE
    // the GcRef identities every other section refers to.
    w_u32(&mut out, slots.len() as u32);
    for slot in slots {
        match slot {
            None => w_u8(&mut out, 0),
            Some(obj) => {
                w_u8(&mut out, 1);
                w_u32(&mut out, obj.class.0);
                w_str(&mut out, &obj.array_desc);
                w_u16(&mut out, obj.owner.0);
                w_bool(&mut out, obj.is_connection);
                match &obj.monitor {
                    None => w_u8(&mut out, 0),
                    Some(m) => {
                        w_u8(&mut out, 1);
                        w_opt_u32(&mut out, m.owner.map(|t| t.0));
                        w_u32(&mut out, m.count);
                        w_u32(&mut out, m.entry_queue.len() as u32);
                        for t in &m.entry_queue {
                            w_u32(&mut out, t.0);
                        }
                        w_u32(&mut out, m.wait_set.len() as u32);
                        for t in &m.wait_set {
                            w_u32(&mut out, t.0);
                        }
                    }
                }
                enc_body(&mut out, &obj.body);
            }
        }
    }
    // Free list in stack order: `alloc` pops the back, so preserving the
    // order makes post-restore allocation replay identically.
    let free = vm.heap.free_list();
    w_u32(&mut out, free.len() as u32);
    for &idx in free {
        w_u32(&mut out, idx);
    }
    out
}

fn enc_thread_state(out: &mut Vec<u8>, state: ThreadState) -> Result<(), CheckpointError> {
    match state {
        ThreadState::Runnable => w_u8(out, 0),
        ThreadState::Sleeping { until } => {
            w_u8(out, 1);
            w_u64(out, until);
        }
        ThreadState::BlockedOnMonitor(r) => {
            w_u8(out, 2);
            w_u32(out, r.0);
        }
        ThreadState::WaitingOnMonitor(r) => {
            w_u8(out, 3);
            w_u32(out, r.0);
        }
        ThreadState::BlockedOnJoin(t) => {
            w_u8(out, 4);
            w_u32(out, t.0);
        }
        ThreadState::BlockedOnClassInit { class, isolate } => {
            w_u8(out, 5);
            w_u32(out, class.0);
            w_u16(out, isolate.0);
        }
        // Tags 6..=8 are reserved for the port-layer parked states, which
        // quiescence rules out of every image.
        ThreadState::BlockedOnPort { .. }
        | ThreadState::BlockedOnFuture { .. }
        | ThreadState::BlockedOnQuota => {
            return Err(CheckpointError::NotQuiescent(
                "thread parked on the port layer",
            ))
        }
        ThreadState::ServicePump => w_u8(out, 9),
        ThreadState::Terminated => w_u8(out, 10),
    }
    Ok(())
}

fn enc_threads(vm: &Vm) -> Result<Vec<u8>, CheckpointError> {
    let mut out = Vec::new();
    w_u32(&mut out, vm.threads.len() as u32);
    for t in &vm.threads {
        w_str(&mut out, &t.name);
        enc_thread_state(&mut out, t.state)?;
        w_u16(&mut out, t.current_isolate.0);
        w_u16(&mut out, t.creator_isolate.0);
        w_opt_u32(&mut out, t.pending_exception.map(|r| r.0));
        w_bool(&mut out, t.interrupted);
        w_opt_u32(&mut out, t.thread_obj.map(|r| r.0));
        match t.result {
            None => w_u8(&mut out, 0),
            Some(v) => {
                w_u8(&mut out, 1);
                w_value(&mut out, v);
            }
        }
        w_opt_u32(&mut out, t.uncaught.map(|r| r.0));
        w_u64(&mut out, t.insns_since_switch);
        w_bool(&mut out, t.is_service_pump);
        w_u32(&mut out, t.frames.len() as u32);
        for f in &t.frames {
            w_methodref(&mut out, f.method);
            w_u16(&mut out, f.isolate.0);
            w_u16(&mut out, f.caller_isolate.0);
            w_bool(&mut out, f.is_system);
            // `pc` is a bytecode byte offset — stable across engines and
            // quickening states, unlike prepared-code indices.
            w_u32(&mut out, f.pc);
            w_values(&mut out, &f.locals);
            w_values(&mut out, &f.stack);
            w_opt_u32(&mut out, f.sync_object.map(|r| r.0));
            w_bool(&mut out, f.needs_sync_enter);
            match f.poisoned_return {
                None => w_u8(&mut out, 0),
                Some(iso) => {
                    w_u8(&mut out, 1);
                    w_u16(&mut out, iso.0);
                }
            }
        }
    }
    w_u32(&mut out, vm.run_queue.len() as u32);
    for t in &vm.run_queue {
        w_u32(&mut out, t.0);
    }
    Ok(out)
}

fn enc_port(vm: &Vm) -> Vec<u8> {
    let img = vm.port_snapshot();
    let mut out = Vec::new();
    w_u32(&mut out, img.pumps.len() as u32);
    for p in &img.pumps {
        w_str(&mut out, &p.name);
        w_u32(&mut out, p.thread);
        w_u16(&mut out, p.isolate);
        w_u64(&mut out, p.handler_pin);
        w_opt_methodref(&mut out, p.handle_int);
        w_opt_methodref(&mut out, p.handle_obj);
    }
    w_u32(&mut out, img.futures.len() as u32);
    for f in &img.futures {
        w_u32(&mut out, f.id);
        w_u16(&mut out, f.owner);
        match &f.slot {
            FutureSlotImage::Ready(Ok((kind, bytes))) => {
                w_u8(&mut out, 0);
                w_u8(
                    &mut out,
                    match kind {
                        PayloadKind::Int => 0,
                        PayloadKind::Obj => 1,
                    },
                );
                w_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            FutureSlotImage::Ready(Err(ReplyError::Revoked(s))) => {
                w_u8(&mut out, 1);
                w_str(&mut out, s);
            }
            FutureSlotImage::Ready(Err(ReplyError::Failed(s))) => {
                w_u8(&mut out, 2);
                w_str(&mut out, s);
            }
            FutureSlotImage::Cancelled => w_u8(&mut out, 3),
        }
    }
    w_u32(&mut out, img.next_future);
    w_u64(&mut out, img.next_local_call);
    out
}

fn enc_misc(vm: &Vm) -> Vec<u8> {
    let mut out = Vec::new();
    w_u64(&mut out, vm.vclock);
    w_u64(&mut out, vm.migrations);
    w_u64(&mut out, vm.gc_count);
    w_u64(&mut out, vm.allocated_since_gc as u64);
    match vm.exit_code {
        None => w_u8(&mut out, 0),
        Some(c) => {
            w_u8(&mut out, 1);
            w_u32(&mut out, c as u32);
        }
    }
    w_u32(&mut out, vm.console.len() as u32);
    for line in &vm.console {
        w_str(&mut out, line);
    }
    // Host roots keep their exact slot layout (`Vm::pin` hands out slot
    // indices that service pumps hold as `handler_pin`s).
    w_u32(&mut out, vm.host_roots.len() as u32);
    for r in &vm.host_roots {
        w_opt_u32(&mut out, r.map(|g| g.0));
    }
    out
}

// ----------------------------------------------------------------------
// Restore
// ----------------------------------------------------------------------

/// Rebuilds a [`Vm`] from a unit image.
///
/// `base` supplies the VM options. Hard state-shape options (isolation,
/// accounting, quantum, heap limit, thread/frame caps, GC threshold)
/// must match the image or restore fails with
/// [`CheckpointError::OptionsMismatch`]; *soft* options — engine,
/// superinstruction fusing, scheduler kind, tracing — are free, which is
/// what lets one image restore under a different execution engine (the
/// image carries no prepared code to go stale).
///
/// `natives` must register exactly the native methods the captured VM
/// had (e.g. `ijvm_jsl::install_natives` for a JSL-booted VM): the image
/// replays class *definitions* from the recorded classfile bytes, and
/// native linkage is re-derived at define time from this registry.
pub fn restore(
    image: &UnitImage,
    base: VmOptions,
    natives: impl FnOnce(&mut Vm),
) -> Result<Vm, CheckpointError> {
    let sections = parse(&image.bytes)?;
    check_opts(sections[0], &base)?;

    let mut vm = Vm::new(base);
    natives(&mut vm);

    dec_loaders(sections[1], &mut vm)?;
    dec_isolates(sections[2], &mut vm)?;
    let mirrors = dec_classes(sections[3], &mut vm)?;
    let (slots, free) = dec_heap(sections[4], &vm)?;
    let (threads, run_queue) = dec_threads(sections[5], &vm)?;
    let port = dec_port(sections[6])?;
    let misc = dec_misc(sections[7])?;

    validate(
        &vm, &mirrors, &slots, &free, &threads, &run_queue, &port, &misc,
    )?;

    for (class_idx, ms) in mirrors {
        let c = &mut vm.classes[class_idx];
        c.mirrors = ms;
    }
    vm.heap = Heap::from_parts(slots, free);
    vm.threads = threads;
    vm.run_queue = run_queue;
    vm.port_restore(port);
    vm.vclock = misc.vclock;
    vm.migrations = misc.migrations;
    vm.gc_count = misc.gc_count;
    vm.allocated_since_gc = misc.allocated_since_gc as usize;
    vm.exit_code = misc.exit_code;
    vm.console = misc.console;
    vm.host_roots = misc.host_roots;
    Ok(vm)
}

fn check_opts(bytes: &[u8], base: &VmOptions) -> Result<(), CheckpointError> {
    let mut r = Reader { bytes, pos: 0 };
    let isolation = match r.u8()? {
        0 => IsolationMode::Shared,
        1 => IsolationMode::Isolated,
        _ => return Err(CheckpointError::Corrupt("isolation mode")),
    };
    let accounting = r_bool(&mut r)?;
    let heap_limit = r.u64()?;
    let max_threads = r.u64()?;
    let max_frames = r.u64()?;
    let quantum = r.u32()?;
    let gc_threshold = r.u64()?;
    if isolation != base.isolation {
        return Err(CheckpointError::OptionsMismatch("isolation mode"));
    }
    if accounting != base.accounting {
        return Err(CheckpointError::OptionsMismatch("accounting"));
    }
    if heap_limit != base.heap_limit_bytes as u64 {
        return Err(CheckpointError::OptionsMismatch("heap_limit_bytes"));
    }
    if max_threads != base.max_threads as u64 {
        return Err(CheckpointError::OptionsMismatch("max_threads"));
    }
    if max_frames != base.max_frames as u64 {
        return Err(CheckpointError::OptionsMismatch("max_frames"));
    }
    if quantum != base.quantum {
        return Err(CheckpointError::OptionsMismatch("quantum"));
    }
    if gc_threshold != base.gc_threshold_bytes as u64 {
        return Err(CheckpointError::OptionsMismatch("gc_threshold_bytes"));
    }
    Ok(())
}

fn dec_loaders(bytes: &[u8], vm: &mut Vm) -> Result<(), CheckpointError> {
    let r = &mut Reader { bytes, pos: 0 };
    let count = r_count(r, 1)?;
    if count == 0 {
        return Err(CheckpointError::Corrupt("no bootstrap loader"));
    }
    if count > u16::MAX as usize {
        return Err(CheckpointError::Corrupt("loader count"));
    }
    for i in 0..count {
        let name = r.str()?;
        let isolate = IsolateId(r.u16()?);
        let is_system = r_bool(r)?;
        if i == 0 && !(is_system && isolate == IsolateId::ISOLATE0) {
            return Err(CheckpointError::Corrupt("loader 0 is not bootstrap"));
        }
        let id = if i == 0 {
            LoaderId::BOOTSTRAP
        } else {
            if is_system {
                return Err(CheckpointError::Corrupt("system loader beyond slot 0"));
            }
            vm.restore_push_loader(name, isolate)
        };
        if id.0 as usize != i {
            return Err(CheckpointError::Corrupt("loader ids not sequential"));
        }
        let n_classes = r_count(r, 8)?;
        for _ in 0..n_classes {
            let cname = r.str()?;
            let blen = r.u32()? as usize;
            if blen > r.remaining() {
                return Err(CheckpointError::Truncated);
            }
            let cbytes = bytes[r.pos..r.pos + blen].to_vec();
            r.pos += blen;
            if i == 0 {
                vm.add_system_class_bytes(&cname, cbytes);
            } else {
                vm.add_class_bytes(id, &cname, cbytes);
            }
        }
        let n_delegates = r_count(r, 2)?;
        let mut delegates = Vec::new();
        for _ in 0..n_delegates {
            let d = LoaderId(r.u16()?);
            if d.0 as usize >= count {
                return Err(CheckpointError::Corrupt("delegate loader out of range"));
            }
            delegates.push(d);
        }
        vm.loaders[i].delegates = delegates;
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Corrupt("trailing bytes in LOADERS"));
    }
    Ok(())
}

fn dec_isolates(bytes: &[u8], vm: &mut Vm) -> Result<(), CheckpointError> {
    let r = &mut Reader { bytes, pos: 0 };
    let count = r_count(r, 1)?;
    if count > u16::MAX as usize {
        return Err(CheckpointError::Corrupt("isolate count"));
    }
    for i in 0..count {
        let name = r.str()?;
        let state = match r.u8()? {
            0 => IsolateState::Active,
            1 => IsolateState::Terminating,
            2 => IsolateState::Dead,
            _ => return Err(CheckpointError::Corrupt("isolate state")),
        };
        let loader = LoaderId(r.u16()?);
        if loader.0 as usize >= vm.loaders.len() {
            return Err(CheckpointError::Corrupt("isolate loader out of range"));
        }
        let mut iso = Isolate::new(IsolateId(i as u16), &name, loader);
        iso.state = state;
        let n_strings = r_count(r, 8)?;
        for _ in 0..n_strings {
            let s = r.str()?;
            let gc = GcRef(r.u32()?);
            iso.strings.insert(s, gc);
        }
        let st = &mut iso.stats;
        for slot in [
            &mut st.cpu_sampled,
            &mut st.cpu_exact,
            &mut st.allocated_bytes,
            &mut st.allocated_objects,
            &mut st.live_bytes,
            &mut st.live_objects,
            &mut st.threads_created,
            &mut st.threads_live,
            &mut st.threads_parked,
            &mut st.gc_triggers,
            &mut st.io_read_bytes,
            &mut st.io_written_bytes,
            &mut st.connections_opened,
            &mut st.live_connections,
            &mut st.calls_in,
        ] {
            *slot = r.u64()?;
        }
        let n_ports = r_count(r, 4)?;
        for _ in 0..n_ports {
            iso.exported_ports.push(r.str()?);
        }
        vm.isolates.push(iso);
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Corrupt("trailing bytes in ISOLATES"));
    }
    Ok(())
}

type MirrorSets = Vec<(usize, Vec<Option<TaskClassMirror>>)>;

/// Replays class definitions in recorded [`ClassId`] order and decodes
/// the task class mirrors (returned, not yet installed — installation
/// waits for the cross-reference sweep).
fn dec_classes(bytes: &[u8], vm: &mut Vm) -> Result<MirrorSets, CheckpointError> {
    let r = &mut Reader { bytes, pos: 0 };
    let count = r_count(r, 8)?;
    let mut mirror_sets = Vec::new();
    for k in 0..count {
        let loader = LoaderId(r.u16()?);
        let name = r.str()?;
        let poisoned = r_bool(r)?;
        if loader.0 as usize >= vm.loaders.len() {
            return Err(CheckpointError::Corrupt("class loader out of range"));
        }
        // Replay: supers/interfaces were defined first in the original
        // run (they have lower ids), so they are already present and
        // this call defines exactly one new class...
        let id = vm
            .load_class(loader, &name)
            .map_err(|_| CheckpointError::Corrupt("class replay failed"))?;
        // ...and resolution must land where the original did, or every
        // serialized ClassId would be off.
        if id.0 as usize != k {
            return Err(CheckpointError::Corrupt("class replay diverged"));
        }
        vm.classes[k].poisoned = poisoned;
        let n_mirrors = r_count(r, 1)?;
        let mut mirrors = Vec::new();
        for _ in 0..n_mirrors {
            if !r_bool(r)? {
                mirrors.push(None);
                continue;
            }
            let init = match r.u8()? {
                0 => InitState::Uninitialized,
                1 => InitState::InProgress(ThreadId(r.u32()?)),
                2 => InitState::Initialized,
                3 => InitState::Failed,
                _ => return Err(CheckpointError::Corrupt("mirror init state")),
            };
            let statics = r_values(r)?;
            if statics.len() != vm.classes[k].static_fields.len() {
                return Err(CheckpointError::Corrupt("mirror statics arity"));
            }
            let class_object = GcRef(r.u32()?);
            mirrors.push(Some(TaskClassMirror {
                init,
                statics: statics.into_boxed_slice(),
                class_object,
            }));
        }
        mirror_sets.push((k, mirrors));
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Corrupt("trailing bytes in CLASSES"));
    }
    Ok(mirror_sets)
}

fn dec_body(r: &mut Reader<'_>) -> Result<ObjBody, CheckpointError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => ObjBody::Fields(r_values(r)?.into_boxed_slice()),
        1 | 2 => {
            let n = r_count(r, 1)?;
            let mut a = Vec::new();
            for _ in 0..n {
                a.push(r.u8()?);
            }
            if tag == 1 {
                ObjBody::ArrBool(a.into_boxed_slice())
            } else {
                ObjBody::ArrByte(a.iter().map(|&b| b as i8).collect())
            }
        }
        3 | 4 => {
            let n = r_count(r, 2)?;
            let mut a = Vec::new();
            for _ in 0..n {
                a.push(r.u16()?);
            }
            if tag == 3 {
                ObjBody::ArrChar(a.into_boxed_slice())
            } else {
                ObjBody::ArrShort(a.iter().map(|&x| x as i16).collect())
            }
        }
        5 | 7 => {
            let n = r_count(r, 4)?;
            let mut a = Vec::new();
            for _ in 0..n {
                a.push(r.u32()?);
            }
            if tag == 5 {
                ObjBody::ArrInt(a.iter().map(|&x| x as i32).collect())
            } else {
                ObjBody::ArrFloat(a.iter().map(|&x| f32::from_bits(x)).collect())
            }
        }
        6 | 8 => {
            let n = r_count(r, 8)?;
            let mut a = Vec::new();
            for _ in 0..n {
                a.push(r.u64()?);
            }
            if tag == 6 {
                ObjBody::ArrLong(a.iter().map(|&x| x as i64).collect())
            } else {
                ObjBody::ArrDouble(a.iter().map(|&x| f64::from_bits(x)).collect())
            }
        }
        9 => {
            let elem_desc = r.str()?;
            ObjBody::ArrRef {
                elem_desc,
                data: r_values(r)?.into_boxed_slice(),
            }
        }
        _ => return Err(CheckpointError::Corrupt("object body tag")),
    })
}

type HeapParts = (Vec<Option<Object>>, Vec<u32>);

fn dec_heap(bytes: &[u8], vm: &Vm) -> Result<HeapParts, CheckpointError> {
    let r = &mut Reader { bytes, pos: 0 };
    let n_slots = r_count(r, 1)?;
    let mut slots = Vec::new();
    for _ in 0..n_slots {
        if !r_bool(r)? {
            slots.push(None);
            continue;
        }
        let class = ClassId(r.u32()?);
        if class.0 as usize >= vm.classes.len() {
            return Err(CheckpointError::Corrupt("object class out of range"));
        }
        let array_desc = r.str()?;
        let owner = IsolateId(r.u16()?);
        if owner.0 as usize >= vm.isolates.len() {
            return Err(CheckpointError::Corrupt("object owner out of range"));
        }
        let is_connection = r_bool(r)?;
        let monitor = if r_bool(r)? {
            let owner = r_opt_u32(r)?.map(ThreadId);
            let count = r.u32()?;
            let entry_queue = r_tid_list(r)?;
            let wait_set = r_tid_list(r)?;
            Some(Box::new(MonitorState {
                owner,
                count,
                entry_queue,
                wait_set,
            }))
        } else {
            None
        };
        let body = dec_body(r)?;
        slots.push(Some(Object {
            class,
            array_desc,
            owner,
            is_connection,
            mark: false,
            monitor,
            body,
        }));
    }
    let n_free = r_count(r, 4)?;
    let mut free = Vec::new();
    for _ in 0..n_free {
        free.push(r.u32()?);
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Corrupt("trailing bytes in HEAP"));
    }
    Ok((slots, free))
}

fn dec_thread_state(r: &mut Reader<'_>) -> Result<ThreadState, CheckpointError> {
    Ok(match r.u8()? {
        0 => ThreadState::Runnable,
        1 => ThreadState::Sleeping { until: r.u64()? },
        2 => ThreadState::BlockedOnMonitor(GcRef(r.u32()?)),
        3 => ThreadState::WaitingOnMonitor(GcRef(r.u32()?)),
        4 => ThreadState::BlockedOnJoin(ThreadId(r.u32()?)),
        5 => ThreadState::BlockedOnClassInit {
            class: ClassId(r.u32()?),
            isolate: IsolateId(r.u16()?),
        },
        9 => ThreadState::ServicePump,
        10 => ThreadState::Terminated,
        // 6..=8: port-layer parked states — never valid in an image.
        _ => return Err(CheckpointError::Corrupt("thread state tag")),
    })
}

type ThreadParts = (Vec<VmThread>, VecDeque<ThreadId>);

fn dec_threads(bytes: &[u8], vm: &Vm) -> Result<ThreadParts, CheckpointError> {
    let r = &mut Reader { bytes, pos: 0 };
    let n_threads = r_count(r, 8)?;
    let mut threads = Vec::new();
    for i in 0..n_threads {
        let name = r.str()?;
        let state = dec_thread_state(r)?;
        let current_isolate = IsolateId(r.u16()?);
        let creator_isolate = IsolateId(r.u16()?);
        if current_isolate.0 as usize >= vm.isolates.len()
            || creator_isolate.0 as usize >= vm.isolates.len()
        {
            return Err(CheckpointError::Corrupt("thread isolate out of range"));
        }
        let pending_exception = r_opt_u32(r)?.map(GcRef);
        let interrupted = r_bool(r)?;
        let thread_obj = r_opt_u32(r)?.map(GcRef);
        let result = if r_bool(r)? { Some(r_value(r)?) } else { None };
        let uncaught = r_opt_u32(r)?.map(GcRef);
        let insns_since_switch = r.u64()?;
        let is_service_pump = r_bool(r)?;
        let n_frames = r_count(r, 8)?;
        let mut frames = Vec::new();
        for _ in 0..n_frames {
            let method = r_methodref(r)?;
            let cls = vm
                .classes
                .get(method.class.0 as usize)
                .ok_or(CheckpointError::Corrupt("frame method class out of range"))?;
            let m = cls
                .methods
                .get(method.index as usize)
                .ok_or(CheckpointError::Corrupt("frame method index out of range"))?;
            // Re-link the code body from the replayed class — the frame
            // runs the re-derived bytecode, never serialized code.
            let code = m
                .code
                .as_ref()
                .ok_or(CheckpointError::Corrupt("frame into codeless method"))?
                .share();
            let isolate = IsolateId(r.u16()?);
            let caller_isolate = IsolateId(r.u16()?);
            if isolate.0 as usize >= vm.isolates.len()
                || caller_isolate.0 as usize >= vm.isolates.len()
            {
                return Err(CheckpointError::Corrupt("frame isolate out of range"));
            }
            let is_system = r_bool(r)?;
            let pc = r.u32()?;
            if pc as usize >= code.bytes.len() {
                return Err(CheckpointError::Corrupt("frame pc out of range"));
            }
            let locals = r_values(r)?;
            let stack = r_values(r)?;
            let sync_object = r_opt_u32(r)?.map(GcRef);
            let needs_sync_enter = r_bool(r)?;
            let poisoned_return = if r_bool(r)? {
                Some(IsolateId(r.u16()?))
            } else {
                None
            };
            frames.push(Frame {
                method,
                class: method.class,
                isolate,
                caller_isolate,
                is_system,
                code,
                pc,
                locals,
                stack,
                sync_object,
                needs_sync_enter,
                poisoned_return,
            });
        }
        threads.push(VmThread {
            id: ThreadId(i as u32),
            name,
            frames,
            state,
            current_isolate,
            creator_isolate,
            pending_exception,
            interrupted,
            thread_obj,
            result,
            uncaught,
            insns_since_switch,
            frame_pool: FramePool::default(),
            is_service_pump,
        });
    }
    let run_queue = r_tid_list(r)?;
    if r.remaining() != 0 {
        return Err(CheckpointError::Corrupt("trailing bytes in THREADS"));
    }
    Ok((threads, run_queue))
}

fn dec_port(bytes: &[u8]) -> Result<PortImage, CheckpointError> {
    let r = &mut Reader { bytes, pos: 0 };
    let n_pumps = r_count(r, 8)?;
    let mut pumps = Vec::new();
    for _ in 0..n_pumps {
        pumps.push(PumpImage {
            name: r.str()?,
            thread: r.u32()?,
            isolate: r.u16()?,
            handler_pin: r.u64()?,
            handle_int: r_opt_methodref(r)?,
            handle_obj: r_opt_methodref(r)?,
        });
    }
    let n_futures = r_count(r, 7)?;
    let mut futures = Vec::new();
    let mut last_id = None;
    for _ in 0..n_futures {
        let id = r.u32()?;
        if last_id.is_some_and(|prev| prev >= id) {
            return Err(CheckpointError::Corrupt("future ids not ascending"));
        }
        last_id = Some(id);
        let owner = r.u16()?;
        let slot = match r.u8()? {
            0 => {
                let kind = match r.u8()? {
                    0 => PayloadKind::Int,
                    1 => PayloadKind::Obj,
                    _ => return Err(CheckpointError::Corrupt("payload kind")),
                };
                let blen = r.u32()? as usize;
                if blen > r.remaining() {
                    return Err(CheckpointError::Truncated);
                }
                let payload = bytes[r.pos..r.pos + blen].to_vec();
                r.pos += blen;
                FutureSlotImage::Ready(Ok((kind, payload)))
            }
            1 => FutureSlotImage::Ready(Err(ReplyError::Revoked(r.str()?))),
            2 => FutureSlotImage::Ready(Err(ReplyError::Failed(r.str()?))),
            3 => FutureSlotImage::Cancelled,
            _ => return Err(CheckpointError::Corrupt("future slot tag")),
        };
        futures.push(FutureImage { id, owner, slot });
    }
    let next_future = r.u32()?;
    let next_local_call = r.u64()?;
    if r.remaining() != 0 {
        return Err(CheckpointError::Corrupt("trailing bytes in PORT"));
    }
    Ok(PortImage {
        pumps,
        futures,
        next_future,
        next_local_call,
    })
}

struct MiscImage {
    vclock: u64,
    migrations: u64,
    gc_count: u64,
    allocated_since_gc: u64,
    exit_code: Option<i32>,
    console: Vec<String>,
    host_roots: Vec<Option<GcRef>>,
}

fn dec_misc(bytes: &[u8]) -> Result<MiscImage, CheckpointError> {
    let r = &mut Reader { bytes, pos: 0 };
    let vclock = r.u64()?;
    let migrations = r.u64()?;
    let gc_count = r.u64()?;
    let allocated_since_gc = r.u64()?;
    let exit_code = if r_bool(r)? {
        Some(r.u32()? as i32)
    } else {
        None
    };
    let n_console = r_count(r, 4)?;
    let mut console = Vec::new();
    for _ in 0..n_console {
        console.push(r.str()?);
    }
    let n_roots = r_count(r, 1)?;
    let mut host_roots = Vec::new();
    for _ in 0..n_roots {
        host_roots.push(r_opt_u32(r)?.map(GcRef));
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Corrupt("trailing bytes in MISC"));
    }
    Ok(MiscImage {
        vclock,
        migrations,
        gc_count,
        allocated_since_gc,
        exit_code,
        console,
        host_roots,
    })
}

// ----------------------------------------------------------------------
// Cross-reference sweep: every id in every decoded section must point at
// something that exists, BEFORE any of it is installed into the VM. A
// hostile image is rejected as a unit; nothing is partially applied.
// ----------------------------------------------------------------------

fn check_ref(r: GcRef, slots: &[Option<Object>]) -> Result<(), CheckpointError> {
    match slots.get(r.0 as usize) {
        Some(Some(_)) => Ok(()),
        _ => Err(CheckpointError::Corrupt("dangling object reference")),
    }
}

fn check_value(v: Value, slots: &[Option<Object>]) -> Result<(), CheckpointError> {
    if let Value::Ref(r) = v {
        check_ref(r, slots)?;
    }
    Ok(())
}

fn check_tid(t: ThreadId, n_threads: usize) -> Result<(), CheckpointError> {
    if (t.0 as usize) < n_threads {
        Ok(())
    } else {
        Err(CheckpointError::Corrupt("thread id out of range"))
    }
}

#[allow(clippy::too_many_arguments)]
fn validate(
    vm: &Vm,
    mirrors: &MirrorSets,
    slots: &[Option<Object>],
    free: &[u32],
    threads: &[VmThread],
    run_queue: &VecDeque<ThreadId>,
    port: &PortImage,
    misc: &MiscImage,
) -> Result<(), CheckpointError> {
    // Free list: every entry points at a hole, no duplicates, and
    // together they cover every hole (so alloc can never hand out a live
    // slot and no hole is leaked forever).
    let mut seen = vec![false; slots.len()];
    for &idx in free {
        let slot = slots
            .get(idx as usize)
            .ok_or(CheckpointError::Corrupt("free-list index out of range"))?;
        if slot.is_some() {
            return Err(CheckpointError::Corrupt("free-list entry is live"));
        }
        if std::mem::replace(&mut seen[idx as usize], true) {
            return Err(CheckpointError::Corrupt("free-list duplicate"));
        }
    }
    let holes = slots.iter().filter(|s| s.is_none()).count();
    if free.len() != holes {
        return Err(CheckpointError::Corrupt("free list does not cover holes"));
    }

    for obj in slots.iter().flatten() {
        if let Some(m) = &obj.monitor {
            if let Some(owner) = m.owner {
                check_tid(owner, threads.len())?;
            }
            for &t in m.entry_queue.iter().chain(m.wait_set.iter()) {
                check_tid(t, threads.len())?;
            }
        }
        match &obj.body {
            ObjBody::Fields(vs) => {
                for &v in vs.iter() {
                    check_value(v, slots)?;
                }
            }
            ObjBody::ArrRef { data, .. } => {
                for &v in data.iter() {
                    check_value(v, slots)?;
                }
            }
            _ => {}
        }
    }

    for (_, ms) in mirrors {
        for m in ms.iter().flatten() {
            if let InitState::InProgress(tid) = m.init {
                check_tid(tid, threads.len())?;
            }
            for &v in m.statics.iter() {
                check_value(v, slots)?;
            }
            check_ref(m.class_object, slots)?;
        }
    }

    for iso in &vm.isolates {
        for &r in iso.strings.values() {
            check_ref(r, slots)?;
        }
    }

    for t in threads {
        match t.state {
            ThreadState::BlockedOnMonitor(r) | ThreadState::WaitingOnMonitor(r) => {
                check_ref(r, slots)?;
            }
            ThreadState::BlockedOnJoin(j) => check_tid(j, threads.len())?,
            ThreadState::BlockedOnClassInit { class, isolate }
                if class.0 as usize >= vm.classes.len()
                    || isolate.0 as usize >= vm.isolates.len() =>
            {
                return Err(CheckpointError::Corrupt("class-init wait out of range"));
            }
            _ => {}
        }
        for r in [t.pending_exception, t.thread_obj, t.uncaught]
            .into_iter()
            .flatten()
        {
            check_ref(r, slots)?;
        }
        if let Some(v) = t.result {
            check_value(v, slots)?;
        }
        for f in &t.frames {
            for &v in f.locals.iter().chain(f.stack.iter()) {
                check_value(v, slots)?;
            }
            if let Some(r) = f.sync_object {
                check_ref(r, slots)?;
            }
            if let Some(iso) = f.poisoned_return {
                if iso.0 as usize >= vm.isolates.len() {
                    return Err(CheckpointError::Corrupt("poisoned return out of range"));
                }
            }
        }
    }

    for &t in run_queue {
        check_tid(t, threads.len())?;
    }

    for r in misc.host_roots.iter().flatten() {
        check_ref(*r, slots)?;
    }

    for p in &port.pumps {
        check_tid(ThreadId(p.thread), threads.len())?;
        if p.isolate as usize >= vm.isolates.len() {
            return Err(CheckpointError::Corrupt("pump isolate out of range"));
        }
        if !matches!(misc.host_roots.get(p.handler_pin as usize), Some(Some(_))) {
            return Err(CheckpointError::Corrupt("pump handler pin dangles"));
        }
    }
    for f in &port.futures {
        if f.owner as usize >= vm.isolates.len() {
            return Err(CheckpointError::Corrupt("future owner out of range"));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_vm_round_trips() {
        let vm = Vm::new(VmOptions::isolated());
        let img = capture(&vm).expect("fresh VM is quiescent");
        let restored = restore(&img, VmOptions::isolated(), |_| {}).expect("restore");
        assert_eq!(restored.vclock(), 0);
        assert_eq!(restored.class_count(), 0);
        let again = capture(&restored).expect("re-capture");
        assert_eq!(img, again, "capture must be a pure function of VM state");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = UnitImage::from_bytes(b"NOPE".to_vec()).unwrap_err();
        assert_eq!(err, CheckpointError::BadMagic);
        let err = UnitImage::from_bytes(Vec::new()).unwrap_err();
        assert_eq!(err, CheckpointError::Truncated);
    }

    #[test]
    fn bad_version_rejected() {
        let vm = Vm::new(VmOptions::isolated());
        let mut bytes = capture(&vm).unwrap().into_bytes();
        bytes[4] = 0xFF; // version high byte
        match UnitImage::from_bytes(bytes).unwrap_err() {
            CheckpointError::BadVersion(v) => assert_eq!(v, 0xFF01),
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn flipped_bit_fails_checksum() {
        let vm = Vm::new(VmOptions::isolated());
        let mut bytes = capture(&vm).unwrap().into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = UnitImage::from_bytes(bytes).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::ChecksumMismatch(_) | CheckpointError::Corrupt(_)
            ),
            "corruption must be detected, got {err:?}"
        );
    }

    #[test]
    fn every_truncation_is_rejected_without_panic() {
        let vm = Vm::new(VmOptions::isolated());
        let bytes = capture(&vm).unwrap().into_bytes();
        for cut in 0..bytes.len() {
            assert!(
                UnitImage::from_bytes(bytes[..cut].to_vec()).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn options_mismatch_rejected() {
        let vm = Vm::new(VmOptions::isolated());
        let img = capture(&vm).unwrap();
        let err = restore(&img, VmOptions::shared(), |_| {}).unwrap_err();
        assert_eq!(err, CheckpointError::OptionsMismatch("isolation mode"));
        let mut opts = VmOptions::isolated();
        opts.quantum += 1;
        let err = restore(&img, opts, |_| {}).unwrap_err();
        assert_eq!(err, CheckpointError::OptionsMismatch("quantum"));
    }

    #[test]
    fn soft_options_are_free() {
        // Engine and scheduler are derived-state knobs; an image cut
        // under one must restore under another.
        let vm = Vm::new(VmOptions::isolated());
        let img = capture(&vm).unwrap();
        let opts = VmOptions::isolated().with_engine(crate::engine::EngineKind::Quickened);
        assert!(restore(&img, opts, |_| {}).is_ok());
    }
}
