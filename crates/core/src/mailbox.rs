//! Per-unit mailbox storage for the sharded [`crate::port::PortHub`]:
//! a bounded MPSC ring buffer with a mutex-guarded overflow spillway,
//! plus the destination's quota accounting cell.
//!
//! # Single-consumer invariant
//!
//! Any number of sender units may [`Mailbox::post`] concurrently, but
//! only the *owning* unit drains — the scheduler hands a unit to exactly
//! one worker at a time, and drains happen only inside that unit's
//! quantum (`Vm::port_drain_force`), so there is never a second
//! concurrent consumer. The ring's `pop` is nonetheless written
//! CAS-safe (MPMC-style head claims), so the single-consumer rule is a
//! protocol invariant the scheduler upholds, not a memory-safety
//! obligation: a violation could reorder deliveries, it cannot corrupt
//! memory or double-free.
//!
//! # Ordering
//!
//! Per-producer FIFO holds across the ring→overflow transition: a
//! producer that ever diverts to the overflow keeps appending there
//! (under the overflow lock) until the consumer drains the spillway and
//! clears the flag under that same lock, and the consumer sweeps the
//! ring once more under that lock *before* reading the spillway (a
//! producer's ring pushes precede its spill appends in program order,
//! so the sweep sees them) — so one producer's messages can never
//! leapfrog its own earlier ones. Messages from *different*
//! producers that race are unordered — exactly as they were under the
//! old global-mutex mailboxes, where arrival order between racing
//! senders was whatever the lock handed out. Under the deterministic
//! scheduler everything is single-threaded, so arrival order is total
//! and identical to the old implementation.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::port::Envelope;

/// Ring capacity per unit, in envelopes. Power of two; the steady-state
/// cross-unit traffic of one quantum fits, and floods spill to the
/// overflow queue instead of blocking or dropping.
const RING_CAPACITY: usize = 64;

/// One slot of the bounded MPSC ring: a sequence number that encodes
/// whether the slot currently holds a value for the lap the producer or
/// consumer is on (Vyukov's bounded-queue scheme).
struct Slot<T> {
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer ring buffer. Producers claim slots with a
/// CAS on `tail`; the consumer claims with a CAS on `head`. Full is an
/// error (the caller spills to the overflow queue) — the ring never
/// blocks and never drops.
pub(crate) struct MpscRing<T> {
    slots: Box<[Slot<T>]>,
    /// Index mask (`capacity - 1`; capacity is a power of two).
    mask: usize,
    /// Next slot to write (monotonic; wraps via the mask).
    tail: AtomicUsize,
    /// Next slot to read (monotonic; wraps via the mask).
    head: AtomicUsize,
}

// SAFETY: the ring hands each value from the producing thread to the
// consuming thread exactly once: a producer publishes its write with a
// release store of the slot's `seq`, and a consumer takes ownership only
// after an acquire load observes that store, so the value's bytes are
// fully visible before `assume_init_read`. No slot is ever readable and
// writable at once (the `seq` lap protocol gives each claimant exclusive
// access), so `T: Send` is the only requirement.
unsafe impl<T: Send> Send for MpscRing<T> {}
// SAFETY: see the `Send` justification — all shared-slot access is
// mediated by the `seq` acquire/release handshake and head/tail CAS
// claims, so `&MpscRing<T>` may be used from any number of threads.
unsafe impl<T: Send> Sync for MpscRing<T> {}

impl<T> MpscRing<T> {
    fn with_capacity(capacity: usize) -> MpscRing<T> {
        debug_assert!(capacity.is_power_of_two());
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpscRing {
            slots,
            mask: capacity - 1,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// Enqueues `value`, or hands it back when the ring is full.
    pub(crate) fn push(&self, value: T) -> Result<(), T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // The slot is free for this lap; claim it.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS above claimed slot `pos`
                        // exclusively for this producer — no other
                        // producer can claim it until the consumer
                        // advances `seq` by a full lap, and the consumer
                        // will not read it until the release store below
                        // publishes the write.
                        unsafe { (*slot.val.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                // The consumer has not freed this slot: the ring is full.
                return Err(value);
            } else {
                // Another producer claimed `pos`; chase the tail.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest value, or `None` when the ring is empty.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed slot `pos` exclusively
                        // for this consumer, and the acquire load of
                        // `seq` above synchronized with the producer's
                        // release store, so the slot holds a fully
                        // initialized value that is read exactly once.
                        let value = unsafe { (*slot.val.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Number of queued values (approximate under concurrent access;
    /// exact when quiescent or read under the owner's quota lock, where
    /// admissions are counted before their push lands).
    pub(crate) fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head).min(self.mask + 1)
    }

    pub(crate) fn is_empty(&self) -> bool {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        head == tail
    }
}

impl<T> Drop for MpscRing<T> {
    fn drop(&mut self) {
        // Claimed-but-unread slots still own their values.
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for MpscRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpscRing")
            .field("len", &self.len())
            .finish()
    }
}

/// The destination-side quota accounting for one unit, all under one
/// mutex so admission checks, waiter registration and completion-time
/// release can never tear against each other (the per-destination
/// replacement for the old hub-global `inflight` + `quota_waiters`).
#[derive(Debug, Default)]
pub(crate) struct QuotaCell {
    /// Admitted-but-unserved requests addressed to this unit.
    pub(crate) msgs: u32,
    /// Admitted-but-unserved request payload bytes.
    pub(crate) bytes: u64,
    /// Sender units parked on this destination's quota. A release that
    /// re-admits turns each into a wake-up token; the entries themselves
    /// are cleared by the sender's own retry sweep.
    pub(crate) waiters: Vec<u32>,
}

/// One unit's mailbox: the MPSC ring, its overflow spillway, and the
/// destination's quota cell. Senders post lock-free in the common case;
/// the owning unit drains without ever contending with posters.
#[derive(Debug)]
pub(crate) struct Mailbox {
    ring: MpscRing<Envelope>,
    /// `true` while the overflow queue may be non-empty. Set under the
    /// overflow lock by a producer that found the ring full; cleared
    /// under the same lock by the consumer once the spillway drains.
    /// While set, producers append to the overflow (not the ring) so
    /// one producer's messages never overtake its own earlier ones.
    overflow_flag: AtomicBool,
    overflow: Mutex<VecDeque<Envelope>>,
    quota: Mutex<QuotaCell>,
    /// Cluster-wide undelivered-envelope counter, shared by every
    /// mailbox of one hub. Incremented *before* the enqueue and
    /// decremented only *after* a drain removed the envelope, so the
    /// counter never undercounts what is queued: a zero read means the
    /// whole cluster's mailboxes are empty, which is what turns the
    /// hub's quiescence check into one load instead of an O(units)
    /// walk over every ring.
    pending: Arc<AtomicUsize>,
}

impl Default for Mailbox {
    fn default() -> Mailbox {
        Mailbox::with_pending(Arc::new(AtomicUsize::new(0)))
    }
}

impl Mailbox {
    /// A mailbox wired to a (typically hub-shared) pending counter.
    pub(crate) fn with_pending(pending: Arc<AtomicUsize>) -> Mailbox {
        Mailbox {
            ring: MpscRing::with_capacity(RING_CAPACITY),
            overflow_flag: AtomicBool::new(false),
            overflow: Mutex::new(VecDeque::new()),
            quota: Mutex::new(QuotaCell::default()),
            pending,
        }
    }

    /// Enqueues `env` for the owning unit. Lock-free while the ring has
    /// room; spills to the overflow queue under its lock otherwise.
    pub(crate) fn post(&self, mut env: Envelope) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        if !self.overflow_flag.load(Ordering::Acquire) {
            match self.ring.push(env) {
                Ok(()) => return,
                Err(back) => env = back,
            }
        }
        let mut spill = self.overflow.lock().unwrap();
        // Re-check under the lock: the consumer may have drained the
        // spillway (clearing the flag) since the load above, in which
        // case the ring is the right destination again.
        if !self.overflow_flag.load(Ordering::Relaxed) {
            match self.ring.push(env) {
                Ok(()) => return,
                Err(back) => env = back,
            }
            self.overflow_flag.store(true, Ordering::Release);
        }
        spill.push_back(env);
    }

    /// Drains everything queued into `out`, oldest first: the ring, then
    /// the overflow spillway. Only the owning unit calls this (the
    /// single-consumer invariant).
    pub(crate) fn drain_into(&self, out: &mut Vec<Envelope>) {
        let before = out.len();
        while let Some(env) = self.ring.pop() {
            out.push(env);
        }
        if self.overflow_flag.load(Ordering::Acquire) {
            let mut spill = self.overflow.lock().unwrap();
            // Sweep the ring again *under the overflow lock*, before
            // the spillway: a producer that refilled the ring after the
            // pops above and then spilled did the ring push strictly
            // before its spill append (program order), so that push is
            // visible here — popping it now keeps the producer's ring
            // messages ahead of its spilled ones. Producers racing this
            // sweep with a fast-path push cannot have anything in the
            // current spillway (they would have observed the flag and
            // taken the lock path), so their messages carry no ordering
            // obligation against it.
            while let Some(env) = self.ring.pop() {
                out.push(env);
            }
            out.extend(spill.drain(..));
            self.overflow_flag.store(false, Ordering::Release);
        }
        let drained = out.len() - before;
        if drained > 0 {
            self.pending.fetch_sub(drained, Ordering::AcqRel);
        }
    }

    /// `true` when something is queued (may be spuriously `true` while a
    /// concurrent drain is mid-flight; never misses a completed post).
    pub(crate) fn has_mail(&self) -> bool {
        !self.ring.is_empty() || self.overflow_flag.load(Ordering::Acquire)
    }

    /// `true` when nothing is queued and no spillway drain is pending —
    /// exact once senders have stopped. Test/model probe; the hub's
    /// quiescence check reads the shared pending counter instead of
    /// walking rings.
    #[cfg(test)]
    pub(crate) fn is_idle(&self) -> bool {
        self.ring.is_empty() && !self.overflow_flag.load(Ordering::Acquire)
    }

    /// Queued envelope count (ring + spillway).
    pub(crate) fn queued_len(&self) -> usize {
        self.ring.len() + self.overflow.lock().unwrap().len()
    }

    /// Locks and returns this destination's quota cell.
    pub(crate) fn quota_cell(&self) -> MutexGuard<'_, QuotaCell> {
        self.quota.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(call: u64) -> Envelope {
        Envelope::Request {
            call,
            reply_to: crate::sched::UnitId::new(0),
            service: std::sync::Arc::from("svc"),
            kind: crate::port::PayloadKind::Int,
            bytes: vec![],
            oneway: true,
        }
    }

    fn call_of(env: &Envelope) -> u64 {
        match env {
            Envelope::Request { call, .. } | Envelope::Reply { call, .. } => *call,
        }
    }

    #[test]
    fn ring_push_pop_fifo() {
        let ring: MpscRing<u64> = MpscRing::with_capacity(8);
        for i in 0..8 {
            ring.push(i).unwrap();
        }
        assert!(ring.push(99).is_err(), "full ring rejects");
        for i in 0..8 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
        // Wrap around a few laps.
        for lap in 0..5u64 {
            for i in 0..3 {
                ring.push(lap * 10 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(ring.pop(), Some(lap * 10 + i));
            }
        }
    }

    #[test]
    fn mailbox_spills_past_ring_capacity_in_order() {
        let mb = Mailbox::default();
        let n = RING_CAPACITY as u64 + 40;
        for i in 0..n {
            mb.post(req(i));
        }
        assert!(mb.has_mail());
        let mut out = Vec::new();
        mb.drain_into(&mut out);
        let calls: Vec<u64> = out.iter().map(call_of).collect();
        assert_eq!(calls, (0..n).collect::<Vec<_>>());
        assert!(mb.is_idle());
        // Post-spill, the mailbox returns to the lock-free ring path.
        mb.post(req(7));
        let mut out = Vec::new();
        mb.drain_into(&mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let mb = std::sync::Arc::new(Mailbox::default());
        let producers = 4u64;
        let per = 500u64;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let mb = std::sync::Arc::clone(&mb);
                std::thread::spawn(move || {
                    for i in 0..per {
                        mb.post(req(p * per + i));
                    }
                })
            })
            .collect();
        let mut seen: Vec<u64> = Vec::new();
        // Drain concurrently with the producers, then once after join.
        while seen.len() < (producers * per) as usize {
            let mut out = Vec::new();
            mb.drain_into(&mut out);
            seen.extend(out.iter().map(call_of));
            std::hint::spin_loop();
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        mb.drain_into(&mut out);
        seen.extend(out.iter().map(call_of));
        assert_eq!(seen.len(), (producers * per) as usize);
        // Exactly-once delivery, and per-producer FIFO.
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..producers * per).collect::<Vec<_>>());
        for p in 0..producers {
            let mine: Vec<u64> = seen.iter().copied().filter(|c| c / per == p).collect();
            assert!(mine.windows(2).all(|w| w[0] < w[1]), "producer {p} FIFO");
        }
    }
}
