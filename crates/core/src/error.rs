//! Host-level VM errors (distinct from Java exceptions thrown inside the VM).

use crate::ids::{ClassId, IsolateId, ThreadId};
use std::fmt;

/// Result alias for host-level VM operations.
pub type Result<T> = std::result::Result<T, VmError>;

/// Errors surfaced to the embedding host (not Java exceptions; those are
/// heap objects delivered through the interpreter's unwinding machinery).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VmError {
    /// A class could not be found on the loader's class path.
    ClassNotFound {
        /// Internal name of the missing class.
        name: String,
    },
    /// A class file failed to parse or link.
    LinkError(String),
    /// A referenced field or method does not exist.
    NoSuchMember {
        /// `Class.name:descriptor` of the missing member.
        what: String,
    },
    /// A native method has no registered implementation.
    UnboundNative {
        /// `Class.name:descriptor` of the unbound native.
        what: String,
    },
    /// The operation referenced an unknown or dead isolate.
    BadIsolate(IsolateId),
    /// The operation referenced an unknown thread.
    BadThread(ThreadId),
    /// The operation referenced an unknown class id.
    BadClass(ClassId),
    /// A privileged operation was attempted from a non-privileged isolate.
    PermissionDenied {
        /// What was attempted.
        what: String,
        /// The isolate that attempted it.
        from: IsolateId,
    },
    /// The executed program threw an exception that nobody caught.
    UncaughtException {
        /// Internal name of the exception class.
        class_name: String,
        /// The exception's detail message, if any.
        message: Option<String>,
    },
    /// `Vm::run` exhausted its instruction budget before going idle.
    BudgetExhausted,
    /// All live threads are blocked on each other.
    Deadlock,
    /// Underlying class-file error.
    ClassFile(ijvm_classfile::ClassFileError),
    /// Catch-all for internal invariant violations (reported, not panicked).
    Internal(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::ClassNotFound { name } => write!(f, "class not found: {name}"),
            VmError::LinkError(msg) => write!(f, "link error: {msg}"),
            VmError::NoSuchMember { what } => write!(f, "no such member: {what}"),
            VmError::UnboundNative { what } => write!(f, "unbound native method: {what}"),
            VmError::BadIsolate(id) => write!(f, "unknown or dead isolate: {id}"),
            VmError::BadThread(id) => write!(f, "unknown thread: {id}"),
            VmError::BadClass(id) => write!(f, "unknown class id {}", id.0),
            VmError::PermissionDenied { what, from } => {
                write!(f, "permission denied: {what} attempted from {from}")
            }
            VmError::UncaughtException {
                class_name,
                message,
            } => match message {
                Some(m) => write!(f, "uncaught exception {class_name}: {m}"),
                None => write!(f, "uncaught exception {class_name}"),
            },
            VmError::BudgetExhausted => write!(f, "instruction budget exhausted"),
            VmError::Deadlock => write!(f, "deadlock: all threads blocked"),
            VmError::ClassFile(e) => write!(f, "class file error: {e}"),
            VmError::Internal(msg) => write!(f, "internal VM error: {msg}"),
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::ClassFile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ijvm_classfile::ClassFileError> for VmError {
    fn from(e: ijvm_classfile::ClassFileError) -> VmError {
        VmError::ClassFile(e)
    }
}
