//! Isolate termination (paper §3.3).
//!
//! Termination must cope with thread migration: threads created by *other*
//! isolates may currently be executing the dying isolate's code, and the
//! dying isolate's threads may be executing elsewhere. I-JVM therefore:
//!
//! 1. poisons every method of the isolate's classes, so any future call
//!    throws `StoppedIsolateException`;
//! 2. walks every thread stack and patches the return of each frame whose
//!    *caller* belongs to the dying isolate, so returning into the isolate
//!    raises `StoppedIsolateException` (which the isolate cannot catch);
//! 3. raises the exception immediately in threads whose top frame is in
//!    the dying isolate, and sets the interrupted flag on threads parked
//!    inside the system library on the isolate's behalf;
//! 4. drops the isolate's string map and task class mirrors so the GC can
//!    reclaim everything not shared with other isolates.
//!
//! Under the parallel cluster scheduler the same protocol is delivered
//! *cross-worker*: [`crate::sched::ClusterCtl::terminate`] files a kill
//! request from any thread, and whichever worker next picks the unit up
//! applies [`Vm::terminate_isolate`] before the unit's next quantum
//! slice — the poisoned isolate's threads stop at the next quantum
//! boundary on whatever core they happen to run, with everything they
//! burned beforehand already charged exactly.

use crate::error::{Result, VmError};
use crate::ids::IsolateId;
use crate::interp::make_sie;
use crate::isolate::IsolateState;
use crate::thread::ThreadState;
use crate::vm::{IsolationMode, Vm};

impl Vm {
    /// Terminates `target`, applying the full §3.3 protocol. Host-level
    /// entry point; the in-VM native (used by the OSGi framework) checks
    /// that the caller is `Isolate0` before delegating here.
    pub fn terminate_isolate(&mut self, target: IsolateId) -> Result<()> {
        if self.options.isolation != IsolationMode::Isolated {
            return Err(VmError::Internal(
                "isolate termination requires IsolationMode::Isolated".to_owned(),
            ));
        }
        let iso = self
            .isolates
            .get_mut(target.0 as usize)
            .ok_or(VmError::BadIsolate(target))?;
        if iso.state != IsolateState::Active {
            return Ok(()); // already terminated
        }
        iso.state = IsolateState::Terminating;
        let loader = iso.loader;
        self.trace_emit(
            crate::trace::EventKind::IsolateTerminate,
            Some(target),
            None,
            0,
        );

        // 1. Poison the isolate's classes: no method of theirs runs again,
        //    whether already "compiled" or not (paper: not-yet-JITed
        //    methods are never compiled; compiled ones get a throwing
        //    branch patched in).
        for class in &mut self.classes {
            if class.loader == loader {
                class.poisoned = true;
            }
        }

        // 2 & 3. Patch every thread's stack.
        let tids: Vec<_> = self
            .threads
            .iter()
            .filter(|t| !t.is_terminated())
            .map(|t| t.id)
            .collect();
        for tid in tids {
            let t = tid.0 as usize;
            let nframes = self.threads[t].frames.len();
            if nframes == 0 {
                continue;
            }
            // Any frame whose caller executes in the dying isolate throws
            // on return instead of returning into it.
            for i in 1..nframes {
                if self.threads[t].frames[i - 1].isolate == target {
                    self.threads[t].frames[i].poisoned_return = Some(target);
                }
            }
            let top_in_target = self.threads[t].frames[nframes - 1].isolate == target;
            let top_is_system = self.threads[t].frames[nframes - 1].is_system;
            let any_in_target = self.threads[t].frames.iter().any(|f| f.isolate == target);

            if top_in_target && !top_is_system {
                // The thread is executing the dying isolate's code right
                // now: raise StoppedIsolateException at its next step.
                let ex = make_sie(self, tid, target);
                self.threads[t].pending_exception = Some(ex);
                self.unpark_for_termination(tid);
            } else if top_is_system && any_in_target {
                // Parked inside the system library on the isolate's
                // behalf: interrupt so sleeps and I/O abort (the Spring
                // protection-domain trick the paper cites).
                self.threads[t].interrupted = true;
                self.unpark_for_termination(tid);
            }
        }

        // 4. Release per-isolate state: interned strings and every task
        //    class mirror of the dying isolate. Mirrors of the isolate's
        //    *own* classes in other isolates die too (their code is gone),
        //    as do their pre-decoded instruction streams — poisoning
        //    guarantees they will never execute again.
        self.isolates[target.0 as usize].strings.clear();
        let mi = target.0 as usize;
        let dead_classes: Vec<bool> = self.classes.iter().map(|c| c.loader == loader).collect();
        let empty_code = crate::vmrc::VmRc::new(crate::class::CodeBody {
            max_stack: 0,
            max_locals: 0,
            bytes: Vec::new(),
            handlers: Vec::new(),
        });
        for class in &mut self.classes {
            if class.mirrors.len() > mi {
                class.mirrors[mi] = None;
            }
            if class.loader == loader {
                for m in &mut class.mirrors {
                    *m = None;
                }
                for method in &mut class.methods {
                    method.prepared = None;
                }
            } else {
                // Surviving classes may hold fused call shapes in their
                // prepared streams whose `CallSite` points at a dying
                // class: the poisoning check rejects every such call, but
                // the cached `Arc<CodeBody>` would keep the dead isolate's
                // bytecode alive forever.
                for method in &class.methods {
                    let Some(prepared) = &method.prepared else {
                        continue;
                    };
                    let is_dead = |c: crate::ids::ClassId| {
                        dead_classes.get(c.0 as usize).copied().unwrap_or(false)
                    };
                    // Monomorphic receiver→shape caches: drop the entry.
                    // The site would refill from the vtable on its next
                    // miss, but a refill is impossible — the class stays
                    // poisoned.
                    for site in prepared.virt_sites.borrow().iter() {
                        let stale = matches!(&*site.cache.borrow(), Some((_, cs)) if is_dead(cs.target.class));
                        if stale {
                            *site.cache.borrow_mut() = None;
                        }
                    }
                    // Fused direct-call sites: their indices are baked
                    // into stream cells, so entries cannot be removed —
                    // swap stale ones for a stub with an empty body
                    // instead. `invoke_fused` runs the poisoning check
                    // before touching the body and the target can never
                    // un-poison, so the stub is unreachable. (Dying-loader
                    // targets are never system classes, so the
                    // `is_system` poisoning skip cannot apply.)
                    for site in prepared.call_sites.borrow_mut().iter_mut() {
                        if is_dead(site.target.class) {
                            *site = crate::vmrc::VmRc::new(crate::engine::CallSite {
                                target: site.target,
                                arg_slots: site.arg_slots,
                                max_locals: site.max_locals,
                                max_stack: site.max_stack,
                                code: empty_code.share(),
                                is_system: site.is_system,
                                frame_isolate: site.frame_isolate,
                            });
                        }
                    }
                }
            }
        }

        // Drop the isolate's exported cross-unit services: in-flight and
        // queued calls fail at their callers with `ServiceRevoked`, the
        // hub entries are revoked so future calls fail fast, and idle
        // pump threads retire (busy ones die with the isolate's
        // StoppedIsolateException raised above).
        self.port_revoke_isolate(target);

        // Reclaim unshared objects now; also flips the isolate to Dead if
        // nothing of it survives.
        self.collect_garbage(None);
        self.poll_unblock();
        Ok(())
    }

    /// Wakes a thread that termination needs to make progress, pulling it
    /// out of sleeps, waits and monitor queues.
    fn unpark_for_termination(&mut self, tid: crate::ids::ThreadId) {
        let t = tid.0 as usize;
        match self.threads[t].state {
            ThreadState::Runnable | ThreadState::Terminated => {}
            ThreadState::BlockedOnMonitor(obj) | ThreadState::WaitingOnMonitor(obj) => {
                if let Some(mon) = self.heap.get_mut(obj).monitor.as_mut() {
                    mon.entry_queue.retain(|&x| x != tid);
                    mon.wait_set.retain(|&x| x != tid);
                }
                self.wake(tid);
            }
            _ => self.wake(tid),
        }
    }
}
