//! Concurrency models for the cluster's hand-rolled protocols, run
//! under `--cfg loom`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p ijvm-core --lib loom_
//! ```
//!
//! Each model is a small bounded scenario over the *production* types
//! (`TraceRing`, `WorkerCpuBuffer`/`ClusterAccounts`, `PortHub`) whose
//! assertions state the protocol's contract: no event lost in the
//! trace-ring handoff, no instruction lost or doubled in CPU
//! accounting, no lost wake-up token, no lost quota release. They live
//! in the crate (not `tests/`) because the protocols are crate-private
//! by design — embedders only see their effects.
//!
//! Offline, `loom` resolves to `crates/devstubs/loom`: an
//! API-compatible stand-in that stress-runs each model many times with
//! randomized preemption at every wrapped lock/atomic operation — a
//! stress harness, not a proof. With the real loom crate in place the
//! same models upgrade to exhaustive interleaving exploration
//! unchanged; the product types keep their `std` primitives either
//! way, so real loom explores the schedule space at the model's own
//! synchronization points (spawn/join/lock), which is where these
//! protocols branch.

use crate::accounting::{ClusterAccounts, WorkerCpuBuffer};
use crate::ids::IsolateId;
use crate::mailbox::Mailbox;
use crate::port::{Envelope, MailboxQuota, PayloadKind, PortHub, SendOutcome};
use crate::sched::UnitId;
use crate::trace::{EventKind, TraceEvent, TraceRing};
use loom::sync::{Arc, Mutex};
use loom::thread;

fn ev(thread_id: u8, payload: u64) -> TraceEvent {
    TraceEvent {
        vclock: payload,
        payload,
        wall_us: 0,
        kind: EventKind::QuantumEnd,
        unit: 0,
        isolate: 0,
        thread: thread_id,
    }
}

/// The worker-trace handoff (`sched.rs`): each worker records into a
/// ring it exclusively owns, then moves the whole ring through a mutex
/// exactly once at loop exit; the merger drains after every worker has
/// joined. Contract: every recorded event arrives, in per-worker
/// order, with an exact drop count.
#[test]
fn loom_trace_ring_single_writer_handoff() {
    loom::model(|| {
        const PER_WORKER: u64 = 6;
        let merged: Arc<Mutex<Vec<TraceRing>>> = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..2u8)
            .map(|w| {
                let merged = Arc::clone(&merged);
                thread::spawn(move || {
                    // Capacity 4 < 6 pushes: the ring wraps, which the
                    // drop accounting must state exactly.
                    let mut ring = TraceRing::with_capacity(4);
                    for i in 0..PER_WORKER {
                        ring.push(ev(w, i));
                    }
                    merged.lock().unwrap().push(ring);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut rings = merged.lock().unwrap();
        assert_eq!(rings.len(), 2, "each worker hands off exactly one ring");
        for ring in rings.iter_mut() {
            assert_eq!(ring.dropped_events(), PER_WORKER - 4);
            let events = ring.drain_ordered();
            assert_eq!(events.len(), 4, "newest `capacity` events survive");
            let w = events[0].thread;
            for (i, e) in events.iter().enumerate() {
                assert_eq!(e.thread, w, "rings never interleave writers");
                assert_eq!(
                    e.payload,
                    (PER_WORKER - 4) + i as u64,
                    "per-worker order preserved, oldest dropped first"
                );
            }
        }
    });
}

/// CPU exactness across the buffer/drain protocol (`accounting.rs`):
/// workers coalesce charges into private buffers and drain into the
/// shared accounts before any migration point. Contract: after all
/// drains, the cluster total equals the sum recorded — no instruction
/// lost or double-charged under any interleaving.
#[test]
fn loom_worker_cpu_buffer_drain_exactness() {
    loom::model(|| {
        let accounts = Arc::new(Mutex::new(ClusterAccounts::default()));
        let handles: Vec<_> = (0..2u32)
            .map(|w| {
                let accounts = Arc::clone(&accounts);
                thread::spawn(move || {
                    let unit = UnitId::new(w);
                    let mut buf = WorkerCpuBuffer::default();
                    // Two slices with a mid-run drain (a migration
                    // point), exercising coalescing and re-use.
                    buf.record(unit, IsolateId(0), 100);
                    buf.record(unit, IsolateId(1), 10);
                    buf.drain_into(&mut accounts.lock().unwrap());
                    assert!(buf.is_empty(), "drain leaves nothing in flight");
                    buf.record(unit, IsolateId(0), 1);
                    buf.drain_into(&mut accounts.lock().unwrap());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let accounts = accounts.lock().unwrap();
        assert_eq!(accounts.total_cpu_exact(), 2 * 111);
        for w in 0..2 {
            assert_eq!(accounts.cpu_exact(UnitId::new(w), IsolateId(0)), 101);
            assert_eq!(accounts.cpu_exact(UnitId::new(w), IsolateId(1)), 10);
        }
    });
}

/// The MPSC mailbox ring (`mailbox.rs`): concurrent senders `post`
/// into a unit's mailbox while the owning unit — the single consumer —
/// drains. Contract: every posted envelope is delivered exactly once
/// (no loss across the ring→overflow spill, no double-delivery), and
/// each producer's envelopes arrive in the order it posted them.
#[test]
fn loom_mailbox_mpsc_no_loss_no_dup() {
    loom::model(|| {
        const PER_PRODUCER: u64 = 4;
        let mb = Arc::new(Mailbox::default());
        let producers: Vec<_> = (0..2u64)
            .map(|p| {
                let mb = Arc::clone(&mb);
                thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        mb.post(Envelope::Reply {
                            call: p * PER_PRODUCER + i,
                            result: Ok((PayloadKind::Int, Vec::new())),
                        });
                    }
                })
            })
            .collect();
        // The consumer drains concurrently with the producers (the
        // racing drains may see any prefix of each producer's posts),
        // then once more after both joins to collect the remainder.
        let mut got = Vec::new();
        mb.drain_into(&mut got);
        for p in producers {
            p.join().unwrap();
        }
        mb.drain_into(&mut got);
        assert!(mb.is_idle(), "final drain leaves the mailbox idle");
        let calls: Vec<u64> = got
            .iter()
            .map(|e| match e {
                Envelope::Reply { call, .. } => *call,
                Envelope::Request { .. } => unreachable!("only replies posted"),
            })
            .collect();
        assert_eq!(
            calls.len() as u64,
            2 * PER_PRODUCER,
            "every post delivered, none doubled"
        );
        for p in 0..2u64 {
            let mine: Vec<u64> = calls
                .iter()
                .copied()
                .filter(|c| c / PER_PRODUCER == p)
                .collect();
            let expect: Vec<u64> = (0..PER_PRODUCER).map(|i| p * PER_PRODUCER + i).collect();
            assert_eq!(mine, expect, "per-producer FIFO survives the drain");
        }
    });
}

/// The hub wake-token protocol (`port.rs` / `sched.rs`): a post sets
/// the unit's token and the `woken_flag` mirror under one lock; the
/// scheduler's sweep drains tokens and clears the flag. Contract: a
/// completed post is never lost — whatever sweeps run concurrently,
/// the token set observed across all sweeps plus a final sweep
/// contains the posted-to unit exactly once, and its mail is there.
#[test]
fn loom_hub_wake_token_not_lost() {
    loom::model(|| {
        let hub = Arc::new(PortHub::with_quota(MailboxQuota::UNBOUNDED));
        let dest = UnitId::new(0);
        let sender = UnitId::new(1);
        hub.export(dest, std::sync::Arc::from("svc"), IsolateId(0));

        let poster = {
            let hub = Arc::clone(&hub);
            thread::spawn(move || {
                let out = hub
                    .send_request(sender, None, "svc", PayloadKind::Int, vec![1, 2], false)
                    .expect("not revoked");
                assert!(matches!(out, SendOutcome::Sent(_)));
            })
        };
        // A concurrent sweep, racing the post: it may legitimately see
        // nothing (the fast-path flag read can only miss a post that
        // has not completed), but anything it drains is recorded.
        let sweeper = {
            let hub = Arc::clone(&hub);
            thread::spawn(move || {
                let mut seen = Vec::new();
                if hub.has_woken() {
                    hub.drain_woken_into(&mut seen);
                }
                seen
            })
        };
        poster.join().unwrap();
        let mut tokens = sweeper.join().unwrap();
        // Post happens-before this join; the final sweep must find the
        // token unless the racing sweep already did.
        if hub.has_woken() {
            hub.drain_woken_into(&mut tokens);
        }
        assert_eq!(
            tokens.iter().filter(|&&u| u == dest.index()).count(),
            1,
            "the completed post's wake token is observed exactly once"
        );
        assert!(hub.has_mail(dest), "the mail behind the token is there");
        assert!(!hub.quiescent());
        let mut mail = Vec::new();
        hub.take_mail_into(dest, &mut mail);
        assert_eq!(mail.len(), 1);
    });
}

/// The quota park/retry protocol (`port.rs`): an over-quota sender
/// registers a `(dest, sender)` waiter pair under the same lock as the
/// failed admission check; a boundary flush that brings the
/// destination back under quota turns the pair into a wake token.
/// Contract: the release cannot be lost — whether it lands before or
/// after the sender parks, the sender's retry check observes an
/// admitting destination and its re-send is admitted.
#[test]
fn loom_quota_park_release_not_lost() {
    loom::model(|| {
        let hub = Arc::new(PortHub::with_quota(MailboxQuota {
            max_messages: 1,
            max_bytes: u64::MAX,
        }));
        let dest = UnitId::new(0);
        let sender = UnitId::new(1);
        hub.export(dest, std::sync::Arc::from("svc"), IsolateId(0));
        // Fill the quota, then park the sender on it.
        let first = hub
            .send_request(sender, None, "svc", PayloadKind::Int, vec![9], false)
            .expect("not revoked");
        assert!(matches!(first, SendOutcome::Sent(_)));
        let parked = hub
            .send_request(sender, None, "svc", PayloadKind::Int, vec![7], false)
            .expect("not revoked");
        assert!(matches!(parked, SendOutcome::OverQuota { .. }));

        // The destination serves the first request and flushes at its
        // boundary, racing the sender's retry-readiness checks.
        let server = {
            let hub = Arc::clone(&hub);
            thread::spawn(move || {
                let mut mail = Vec::new();
                hub.take_mail_into(dest, &mut mail);
                assert_eq!(mail.len(), 1);
                let mut outbox = Vec::new();
                hub.flush_boundary(dest, &mut outbox, 1, 1);
            })
        };
        let retrier = {
            let hub = Arc::clone(&hub);
            // May run before the release (not ready) or after (ready);
            // either way it must not consume the waiter registration.
            thread::spawn(move || hub.retry_ready(sender))
        };
        server.join().unwrap();
        let _early = retrier.join().unwrap();
        // The release happened-before this point. The registration is
        // still in place (only the sender's own sweep clears it), so
        // readiness must be observable now, the wake token must exist,
        // and the actual retry must be admitted.
        assert!(
            hub.retry_ready(sender),
            "quota release observed by the sender's park-lock re-check"
        );
        let mut tokens = Vec::new();
        assert!(hub.has_woken());
        hub.drain_woken_into(&mut tokens);
        assert!(tokens.contains(&sender.index()), "release woke the sender");
        hub.clear_quota_waits(sender);
        let retried = hub
            .send_request(sender, None, "svc", PayloadKind::Int, vec![7], false)
            .expect("not revoked");
        assert!(
            matches!(retried, SendOutcome::Sent(_)),
            "the re-send after the release is admitted"
        );
    });
}
