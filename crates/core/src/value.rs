//! Runtime values and heap references.

use crate::ids::ClassId;
use std::fmt;

/// A handle to a heap object. Handles are slab indices and stay stable for
/// the lifetime of the object (the collector does not move objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GcRef(pub u32);

/// A single operand-stack / local-variable slot.
///
/// Per the crate-wide single-slot model, `long` and `double` occupy one
/// slot. `Null` is the null reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// `int`, `short`, `char`, `byte`, `boolean` (all widened to i32).
    Int(i32),
    /// `long`.
    Long(i64),
    /// `float`.
    Float(f32),
    /// `double`.
    Double(f64),
    /// The null reference.
    Null,
    /// A non-null object reference.
    Ref(GcRef),
}

impl Value {
    /// The default value for a field of the given descriptor.
    pub fn default_for_descriptor(desc: &str) -> Value {
        match desc.as_bytes().first() {
            Some(b'J') => Value::Long(0),
            Some(b'F') => Value::Float(0.0),
            Some(b'D') => Value::Double(0.0),
            Some(b'L') | Some(b'[') => Value::Null,
            _ => Value::Int(0),
        }
    }

    /// Reads an `int`, panicking on type confusion (the verifier and the
    /// compiler guarantee well-typed stacks; a mismatch is a VM bug).
    pub fn as_int(self) -> i32 {
        match self {
            Value::Int(v) => v,
            other => panic!("expected Int, found {other:?}"),
        }
    }

    /// Reads a `long`.
    pub fn as_long(self) -> i64 {
        match self {
            Value::Long(v) => v,
            other => panic!("expected Long, found {other:?}"),
        }
    }

    /// Reads a `float`.
    pub fn as_float(self) -> f32 {
        match self {
            Value::Float(v) => v,
            other => panic!("expected Float, found {other:?}"),
        }
    }

    /// Reads a `double`.
    pub fn as_double(self) -> f64 {
        match self {
            Value::Double(v) => v,
            other => panic!("expected Double, found {other:?}"),
        }
    }

    /// Reads a reference, returning `None` for null.
    pub fn as_ref(self) -> Option<GcRef> {
        match self {
            Value::Null => None,
            Value::Ref(r) => Some(r),
            other => panic!("expected reference, found {other:?}"),
        }
    }

    /// `true` if this is a reference slot (including null).
    pub fn is_reference(self) -> bool {
        matches!(self, Value::Null | Value::Ref(_))
    }

    /// Reference equality as used by `if_acmpeq`.
    pub fn ref_eq(self, other: Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Ref(a), Value::Ref(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}L"),
            Value::Float(v) => write!(f, "{v}f"),
            Value::Double(v) => write!(f, "{v}d"),
            Value::Null => write!(f, "null"),
            Value::Ref(r) => write!(f, "@{}", r.0),
        }
    }
}

/// Element kind of a primitive array, used by `newarray`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// `boolean[]`
    Bool,
    /// `byte[]`
    Byte,
    /// `char[]`
    Char,
    /// `short[]`
    Short,
    /// `int[]`
    Int,
    /// `long[]`
    Long,
    /// `float[]`
    Float,
    /// `double[]`
    Double,
    /// `T[]` for reference element type `T`.
    Ref(ClassRefKind),
}

/// What a reference-array's element type refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassRefKind {
    /// Elements are instances of (subclasses of) a class.
    Class(ClassId),
    /// Elements are themselves arrays (nested arrays erase to this).
    Array,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_descriptors() {
        assert_eq!(Value::default_for_descriptor("I"), Value::Int(0));
        assert_eq!(Value::default_for_descriptor("Z"), Value::Int(0));
        assert_eq!(Value::default_for_descriptor("J"), Value::Long(0));
        assert_eq!(Value::default_for_descriptor("D"), Value::Double(0.0));
        assert_eq!(
            Value::default_for_descriptor("Ljava/lang/String;"),
            Value::Null
        );
        assert_eq!(Value::default_for_descriptor("[I"), Value::Null);
    }

    #[test]
    fn ref_eq_semantics() {
        let a = Value::Ref(GcRef(1));
        let b = Value::Ref(GcRef(2));
        assert!(a.ref_eq(a));
        assert!(!a.ref_eq(b));
        assert!(Value::Null.ref_eq(Value::Null));
        assert!(!a.ref_eq(Value::Null));
    }
}
