//! Isolates: the unit of protection, accounting and termination.
//!
//! An isolate is built from a class loader (paper §3.1): its scope is the
//! classes loaded by that loader. The first loader created becomes
//! `Isolate0`, which is privileged (may start/terminate isolates and shut
//! the platform down). System-library classes do not belong to any isolate;
//! they execute in the isolate of their caller.

use crate::accounting::ResourceStats;
use crate::ids::{IsolateId, LoaderId};
use crate::value::GcRef;
use std::collections::HashMap;

/// Lifecycle state of an isolate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolateState {
    /// Running normally.
    Active,
    /// Terminated: its code can no longer execute; objects shared with
    /// other isolates may still be reachable (paper §3.3).
    Terminating,
    /// Fully reclaimed: no object of the isolate's classes remains.
    Dead,
}

/// One isolate.
#[derive(Debug)]
pub struct Isolate {
    /// This isolate's id.
    pub id: IsolateId,
    /// Human-readable name (bundle symbolic name under OSGi).
    pub name: String,
    /// The class loader this isolate was built from.
    pub loader: LoaderId,
    /// Lifecycle state.
    pub state: IsolateState,
    /// Per-isolate interned strings (paper §3.1: each bundle has its own
    /// string map, so `==` does not hold across bundles).
    pub strings: HashMap<String, GcRef>,
    /// Resource counters.
    pub stats: ResourceStats,
    /// The isolate's port table: names of the cross-unit services it
    /// currently exports (see [`crate::port`]). Termination revokes all
    /// of them.
    pub exported_ports: Vec<String>,
}

impl Isolate {
    /// Creates a fresh active isolate.
    pub fn new(id: IsolateId, name: &str, loader: LoaderId) -> Isolate {
        Isolate {
            id,
            name: name.to_owned(),
            loader,
            state: IsolateState::Active,
            strings: HashMap::new(),
            stats: ResourceStats::default(),
            exported_ports: Vec::new(),
        }
    }

    /// `true` while the isolate may execute code.
    pub fn is_active(&self) -> bool {
        self.state == IsolateState::Active
    }

    /// Rough metadata footprint of the per-isolate string map and counter
    /// block, for the Figure 3 memory measurements.
    pub fn metadata_bytes(&self) -> usize {
        let strings: usize = self
            .strings
            .keys()
            .map(|k| k.len() + 16 /* map entry overhead */)
            .sum();
        strings + std::mem::size_of::<ResourceStats>()
    }
}
