//! The cluster scheduler: deterministic and parallel work-stealing
//! execution of `Send` VM units.
//!
//! A [`Vm`] is a complete, self-contained execution unit — its heap,
//! classes, isolates, green threads, monitors and GC epochs have no
//! shared mutable state with any other VM, and since the `Arc`
//! conversion the whole graph is `Send` (asserted at compile time below).
//! The cluster exploits that: it schedules *units* onto OS worker
//! threads one quantum slice at a time, and because a parked unit is
//! plain data, an idle worker can steal it — green threads (with their
//! full frame stacks, quickened instruction streams and monitor state)
//! migrate between cores at quantum boundaries by moving the unit that
//! owns them.
//!
//! ```text
//!            submit()                 ┌────────────┐
//!   units ──────────────▶ queue[0] ◀──▶  worker 0  │──┐ run one slice,
//!                         queue[1] ◀──▶  worker 1  │──┤ flush CPU buffer,
//!                            …            …        │  │ park unit back
//!                         queue[n] ◀──▶  worker n  │──┘ (now stealable)
//!                            ▲                │
//!                            └── steal ◀──────┘  (idle worker, FIFO end)
//! ```
//!
//! **Scheduling modes** ([`SchedulerKind`], selected via
//! [`crate::vm::VmOptions::scheduler`]):
//!
//! * [`SchedulerKind::Deterministic`] — one logical worker on the calling
//!   thread, strict FIFO over a single queue, no stealing. Byte-for-byte
//!   reproducible, which keeps it the differential oracle: a parallel run
//!   must produce identical per-unit results and identical per-isolate
//!   exact CPU, differing only in which worker ran which slice.
//! * [`SchedulerKind::Parallel`]`(n)` — `n` OS workers with per-worker
//!   run queues. A worker pops its own queue from the front and steals
//!   from a victim's back end when idle. Wall-clock scaling tracks the
//!   host's cores; correctness does not depend on the core count.
//!
//! **Exact accounting at migration points.** While a worker runs a unit
//! it accumulates exactly-counted instructions into a private
//! [`WorkerCpuBuffer`]; the buffer drains through
//! [`crate::accounting::ResourceStats::charge_cpu`] into the shared
//! [`ClusterAccounts`] *before* the unit is parked where another worker
//! could steal it (and when it finishes or is terminated). A unit's
//! pending in-VM counter (`insns_since_switch`) is flushed by
//! [`Vm::flush_pending_cpu`] at the same boundary, so no instruction is
//! in flight across a migration and per-isolate totals are bit-identical
//! across scheduler modes — the invariant the cross-mode proptests pin.
//!
//! **Cross-worker termination.** [`ClusterCtl::terminate`] requests an
//! isolate kill from any thread; the request is delivered by whichever
//! worker next picks the unit up, *before* its next slice — a poisoned
//! isolate's threads therefore stop at the next quantum boundary on
//! whatever core they happen to run, exactly the paper-§3.3 semantics
//! lifted across cores.

use crate::accounting::{ClusterAccounts, WorkerCpuBuffer};
use crate::ids::IsolateId;
use crate::vm::{RunOutcome, Vm, VmOptions};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Compile-time proof that a whole VM is a `Send` execution unit — the
/// property the work-stealing scheduler is built on. If any field of the
/// VM graph regresses to a thread-unsafe shared handle, this fails to
/// compile rather than failing in a data race.
fn _assert_vm_is_send() {
    fn is_send<T: Send>() {}
    is_send::<Vm>();
    is_send::<Unit>();
}

/// How the cluster schedules its units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Single logical worker on the calling thread, strict FIFO, no
    /// stealing: fully reproducible, the differential oracle (and the
    /// default).
    #[default]
    Deterministic,
    /// `n` OS worker threads with per-worker run queues and work
    /// stealing. `Parallel(0)` is treated as `Parallel(1)`.
    Parallel(usize),
}

impl SchedulerKind {
    /// Number of workers this mode schedules onto.
    pub fn workers(self) -> usize {
        match self {
            SchedulerKind::Deterministic => 1,
            SchedulerKind::Parallel(n) => n.max(1),
        }
    }
}

/// Identifies an execution unit within one [`Cluster`], in submission
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(pub u32);

/// A scheduled unit: a VM plus its migration bookkeeping.
#[derive(Debug)]
struct Unit {
    id: UnitId,
    vm: Vm,
    /// Quantum slices executed so far.
    slices: u64,
    /// Worker that ran the previous slice, for migration counting.
    last_worker: Option<usize>,
    /// Cross-worker migrations this unit underwent.
    migrations: u64,
    /// Per-isolate `cpu_exact` values already harvested into a worker
    /// buffer, so each boundary charges only the delta.
    cpu_seen: Vec<u64>,
}

impl Unit {
    /// Flushes the VM's pending CPU and records the per-isolate deltas
    /// since the last boundary into `buffer`. Called at every slice
    /// boundary, before the unit can migrate.
    fn harvest_cpu(&mut self, buffer: &mut WorkerCpuBuffer) {
        self.vm.flush_pending_cpu();
        let count = self.vm.isolate_count();
        if self.cpu_seen.len() < count {
            self.cpu_seen.resize(count, 0);
        }
        for i in 0..count {
            let iso = IsolateId(i as u16);
            let cur = self.vm.isolate_stats(iso).map_or(0, |s| s.cpu_exact);
            let delta = cur - self.cpu_seen[i];
            if delta > 0 {
                buffer.record(self.id, iso, delta);
                self.cpu_seen[i] = cur;
            }
        }
    }
}

/// What happened to one unit, reported after the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitReport {
    /// The unit.
    pub id: UnitId,
    /// Terminal outcome: [`RunOutcome::Idle`] (all work finished) or
    /// [`RunOutcome::Deadlock`] (its threads blocked on each other).
    pub outcome: RunOutcome,
    /// Quantum slices the unit consumed.
    pub slices: u64,
    /// Times the unit changed workers between consecutive slices.
    pub migrations: u64,
}

/// Everything a finished cluster run returns. `vms` and `reports` are in
/// [`UnitId`] order regardless of completion order, so observations are
/// directly comparable across scheduler modes.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// The units' VMs, for result/console/stats inspection.
    pub vms: Vec<Vm>,
    /// Per-unit scheduling reports.
    pub reports: Vec<UnitReport>,
    /// Cluster-level per-isolate exact CPU, fed only through worker
    /// buffers draining at migration points.
    pub accounts: ClusterAccounts,
    /// Units taken from another worker's queue.
    pub steals: u64,
    /// Total cross-worker unit migrations.
    pub migrations: u64,
}

/// A pending cross-worker termination request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct KillRequest {
    unit: UnitId,
    isolate: IsolateId,
}

/// Shared remote-control handle for a cluster (cloneable, thread-safe).
#[derive(Debug, Clone, Default)]
pub struct ClusterCtl {
    inner: Arc<CtlInner>,
}

#[derive(Debug, Default)]
struct CtlInner {
    /// Fast-path flag so workers only lock the kill list when a request
    /// is actually pending.
    armed: AtomicBool,
    kills: Mutex<Vec<KillRequest>>,
}

impl ClusterCtl {
    /// Requests termination of `isolate` inside `unit`. Delivered by
    /// whichever worker next schedules the unit, before its next quantum
    /// slice — the dying isolate's threads stop at the next quantum
    /// boundary on whatever core they run. Requests filed before
    /// [`Cluster::run`] are delivered before the unit's first slice.
    pub fn terminate(&self, unit: UnitId, isolate: IsolateId) {
        let mut kills = self.inner.kills.lock().unwrap();
        kills.push(KillRequest { unit, isolate });
        // Armed while still holding the lock, mirroring `take_for`'s
        // clear-under-lock: at every unlock, `armed` agrees with
        // `!kills.is_empty()`, so a worker's fast-path read can only
        // say "false" for a kill that had not been filed yet.
        self.inner.armed.store(true, Ordering::Release);
    }

    /// Takes the kill requests addressed to `unit`, if any.
    fn take_for(&self, unit: UnitId) -> Vec<IsolateId> {
        if !self.inner.armed.load(Ordering::Acquire) {
            return Vec::new();
        }
        let mut kills = self.inner.kills.lock().unwrap();
        let mut taken = Vec::new();
        kills.retain(|k| {
            if k.unit == unit {
                taken.push(k.isolate);
                false
            } else {
                true
            }
        });
        if kills.is_empty() {
            self.inner.armed.store(false, Ordering::Release);
        }
        taken
    }
}

/// The cluster: a set of submitted units plus a scheduling mode.
#[derive(Debug)]
pub struct Cluster {
    kind: SchedulerKind,
    slice: u64,
    units: Vec<Unit>,
    ctl: ClusterCtl,
}

/// Default instruction budget of one quantum slice (mirrors the default
/// in-VM scheduler quantum, so one slice is one thread quantum).
pub const DEFAULT_SLICE: u64 = 10_000;

impl Cluster {
    /// Creates an empty cluster scheduling with `kind`.
    pub fn new(kind: SchedulerKind) -> Cluster {
        Cluster {
            kind,
            slice: DEFAULT_SLICE,
            units: Vec::new(),
            ctl: ClusterCtl::default(),
        }
    }

    /// Creates a cluster with the mode selected in `options` (the other
    /// options govern the individual VMs, not the cluster).
    pub fn from_options(options: &VmOptions) -> Cluster {
        Cluster::new(options.scheduler)
    }

    /// Overrides the per-slice instruction budget (mostly for tests: a
    /// tiny slice forces many migration points).
    pub fn with_slice(mut self, slice: u64) -> Cluster {
        self.slice = slice.max(1);
        self
    }

    /// Submits a prepared VM (isolates created, entry threads spawned via
    /// [`Vm::spawn_thread`], nothing run yet) as an execution unit.
    pub fn submit(&mut self, vm: Vm) -> UnitId {
        let id = UnitId(self.units.len() as u32);
        self.units.push(Unit {
            id,
            vm,
            slices: 0,
            last_worker: None,
            migrations: 0,
            cpu_seen: Vec::new(),
        });
        id
    }

    /// Number of submitted units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// The remote-control handle (clone it before [`Cluster::run`] to
    /// file termination requests from other threads mid-run).
    pub fn ctl(&self) -> ClusterCtl {
        self.ctl.clone()
    }

    /// Runs every unit to completion and returns the outcome. Consumes
    /// the cluster: the VMs come back in the outcome for inspection.
    pub fn run(self) -> ClusterOutcome {
        let workers = self.kind.workers();
        let shared = Shared::new(workers, self.slice, self.units, self.ctl);
        match self.kind {
            SchedulerKind::Deterministic => shared.worker_loop(0),
            SchedulerKind::Parallel(_) => {
                std::thread::scope(|scope| {
                    for w in 0..workers {
                        let shared = &shared;
                        scope.spawn(move || shared.worker_loop(w));
                    }
                });
            }
        }
        shared.into_outcome()
    }
}

/// State shared by the workers of one running cluster.
#[derive(Debug)]
struct Shared {
    slice: u64,
    queues: Vec<Mutex<VecDeque<Unit>>>,
    /// Units not yet finished; workers exit when this reaches zero.
    outstanding: AtomicUsize,
    /// Park/unpark for idle workers (paired with `parked`).
    parked: Mutex<()>,
    unpark: Condvar,
    ctl: ClusterCtl,
    accounts: Mutex<ClusterAccounts>,
    finished: Mutex<Vec<(UnitReport, Vm)>>,
    steals: AtomicU64,
    migrations: AtomicU64,
}

impl Shared {
    fn new(workers: usize, slice: u64, units: Vec<Unit>, ctl: ClusterCtl) -> Shared {
        let queues: Vec<Mutex<VecDeque<Unit>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let outstanding = units.len();
        // Seed round-robin so every worker starts with local work.
        for (i, unit) in units.into_iter().enumerate() {
            queues[i % workers].lock().unwrap().push_back(unit);
        }
        Shared {
            slice,
            queues,
            outstanding: AtomicUsize::new(outstanding),
            parked: Mutex::new(()),
            unpark: Condvar::new(),
            ctl,
            accounts: Mutex::new(ClusterAccounts::default()),
            finished: Mutex::new(Vec::new()),
            steals: AtomicU64::new(0),
            migrations: AtomicU64::new(0),
        }
    }

    /// Pops local work from the front (FIFO, the deterministic order).
    fn pop_local(&self, w: usize) -> Option<Unit> {
        self.queues[w].lock().unwrap().pop_front()
    }

    /// Steals from the back of the first non-empty victim queue.
    fn steal(&self, w: usize) -> Option<Unit> {
        let n = self.queues.len();
        for off in 1..n {
            let victim = (w + off) % n;
            if let Some(unit) = self.queues[victim].lock().unwrap().pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(unit);
            }
        }
        None
    }

    /// One worker: pop → deliver kills → run a slice → flush accounting →
    /// park the unit back (stealable) or finish it.
    fn worker_loop(&self, w: usize) {
        let mut buffer = WorkerCpuBuffer::default();
        loop {
            let Some(mut unit) = self.pop_local(w).or_else(|| self.steal(w)) else {
                if self.outstanding.load(Ordering::Acquire) == 0 {
                    return;
                }
                // Units exist but other workers hold them: park briefly.
                // The timeout makes lost wakeups harmless.
                let guard = self.parked.lock().unwrap();
                let _ = self
                    .unpark
                    .wait_timeout(guard, std::time::Duration::from_millis(1))
                    .unwrap();
                continue;
            };

            // Cross-worker termination lands at the quantum boundary,
            // before the next slice, on whatever core the unit is on.
            for iso in self.ctl.take_for(unit.id) {
                // Best-effort: Shared-mode units and unknown isolates
                // simply ignore the request.
                let _ = unit.vm.terminate_isolate(iso);
            }

            if unit.last_worker.is_some_and(|prev| prev != w) {
                unit.migrations += 1;
                self.migrations.fetch_add(1, Ordering::Relaxed);
            }
            unit.last_worker = Some(w);

            let outcome = unit.vm.run(Some(self.slice));
            unit.slices += 1;
            unit.harvest_cpu(&mut buffer);

            // Drain the worker buffer *before* the unit becomes visible
            // to other workers: accounting is exact at every point where
            // a steal could move the unit to another core.
            buffer.drain_into(&mut self.accounts.lock().unwrap());

            match outcome {
                RunOutcome::BudgetExhausted => {
                    self.queues[w].lock().unwrap().push_back(unit);
                    self.unpark.notify_all();
                }
                outcome => {
                    let report = UnitReport {
                        id: unit.id,
                        outcome,
                        slices: unit.slices,
                        migrations: unit.migrations,
                    };
                    self.finished.lock().unwrap().push((report, unit.vm));
                    if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
                        self.unpark.notify_all();
                    }
                }
            }
        }
    }

    /// Collects the outcome, restoring [`UnitId`] order.
    fn into_outcome(self) -> ClusterOutcome {
        let mut done = self.finished.into_inner().unwrap();
        done.sort_by_key(|(r, _)| r.id);
        let (reports, vms) = done.into_iter().unzip();
        ClusterOutcome {
            vms,
            reports,
            accounts: self.accounts.into_inner().unwrap(),
            steals: self.steals.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_kind_worker_counts() {
        assert_eq!(SchedulerKind::Deterministic.workers(), 1);
        assert_eq!(SchedulerKind::Parallel(0).workers(), 1);
        assert_eq!(SchedulerKind::Parallel(4).workers(), 4);
    }

    #[test]
    fn ctl_kill_requests_route_by_unit() {
        let ctl = ClusterCtl::default();
        assert!(ctl.take_for(UnitId(0)).is_empty(), "idle ctl is free");
        ctl.terminate(UnitId(0), IsolateId(1));
        ctl.terminate(UnitId(1), IsolateId(2));
        ctl.terminate(UnitId(0), IsolateId(3));
        assert_eq!(ctl.take_for(UnitId(0)), vec![IsolateId(1), IsolateId(3)]);
        assert_eq!(ctl.take_for(UnitId(1)), vec![IsolateId(2)]);
        assert!(ctl.take_for(UnitId(1)).is_empty());
        assert!(!ctl.inner.armed.load(Ordering::Acquire));
    }

    /// The steal path takes from the *back* of a victim queue while the
    /// owner pops from the front — the two never contend for the same
    /// unit unless it is the last one.
    #[test]
    fn steal_takes_from_victim_back() {
        let mk = |id: u32| Unit {
            id: UnitId(id),
            vm: Vm::new(VmOptions::isolated()),
            slices: 0,
            last_worker: None,
            migrations: 0,
            cpu_seen: Vec::new(),
        };
        let shared = Shared::new(
            2,
            100,
            vec![mk(0), mk(1), mk(2), mk(3)],
            ClusterCtl::default(),
        );
        // Round-robin seeding: q0 = [0, 2], q1 = [1, 3].
        assert_eq!(shared.pop_local(0).unwrap().id, UnitId(0));
        assert_eq!(shared.steal(0).unwrap().id, UnitId(3), "steals the back");
        assert_eq!(shared.pop_local(1).unwrap().id, UnitId(1));
        assert_eq!(shared.steal(1).unwrap().id, UnitId(2));
        assert!(shared.pop_local(0).is_none());
        assert!(shared.steal(0).is_none());
        assert_eq!(shared.steals.load(Ordering::Relaxed), 2);
    }
}
