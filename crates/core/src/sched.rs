//! The cluster scheduler: deterministic and parallel work-stealing
//! execution of `Send` VM units, with an inter-unit service/message
//! layer ([`crate::port`]).
//!
//! A [`Vm`] is a complete, self-contained execution unit — its heap,
//! classes, isolates, green threads, monitors and GC epochs have no
//! shared mutable state with any other VM, and since the `Arc`
//! conversion the whole graph is `Send` (asserted at compile time below).
//! The cluster exploits that: it schedules *units* onto OS worker
//! threads one quantum slice at a time, and because a parked unit is
//! plain data, an idle worker can steal it — green threads (with their
//! full frame stacks, quickened instruction streams and monitor state)
//! migrate between cores at quantum boundaries by moving the unit that
//! owns them.
//!
//! ```text
//!            submit()                 ┌────────────┐
//!   units ──────────────▶ queue[0] ◀──▶  worker 0  │──┐ drain mailbox,
//!                         queue[1] ◀──▶  worker 1  │──┤ run one slice,
//!                            …            …        │  │ flush CPU buffer,
//!                         queue[n] ◀──▶  worker n  │──┘ requeue / park / finish
//!                            ▲                │
//!                            └── steal ◀──────┘  (idle worker, FIFO end)
//!
//!   parked units ◀──── park (idle-with-services / blocked-on-reply)
//!        │
//!        └──── unpark on mail delivery (hub wake-up token) ───▶ queue
//! ```
//!
//! **Scheduling modes** ([`SchedulerKind`], selected via
//! [`crate::vm::VmOptions::scheduler`]):
//!
//! * [`SchedulerKind::Deterministic`] — one logical worker on the calling
//!   thread, strict FIFO over a single queue, no stealing. Byte-for-byte
//!   reproducible, which keeps it the differential oracle: a parallel run
//!   must produce identical per-unit results and identical per-isolate
//!   exact CPU, differing only in which worker ran which slice.
//! * [`SchedulerKind::Parallel`]`(n)` — `n` OS workers with per-worker
//!   run queues. A worker pops its own queue from the front and steals
//!   from a victim's back end when idle. Wall-clock scaling tracks the
//!   host's cores; correctness does not depend on the core count.
//!
//! **Park / unpark.** A unit that goes idle while it still matters to the
//! cluster — it exports live services, or one of its threads is blocked
//! on a cross-unit reply ([`RunOutcome::Blocked`]) — is *parked* off the
//! run queues instead of finished. Message delivery unparks it: every
//! hub post leaves a wake-up token, and workers sweep tokens back into
//! run queues at each iteration. The cluster completes when every
//! remaining unit is parked and no undelivered mail exists anywhere
//! (parked units then report their last outcome — `Idle` for a served-out
//! exporter, `Blocked` for a caller whose reply can never come).
//!
//! **Exact accounting at migration points.** While a worker runs a unit
//! it accumulates exactly-counted instructions into a private
//! [`WorkerCpuBuffer`]; the buffer drains through
//! [`crate::accounting::ResourceStats::charge_cpu`] into the shared
//! [`ClusterAccounts`] *before* the unit is parked where another worker
//! could steal it (and when it finishes or is terminated). A unit's
//! pending in-VM counter (`insns_since_switch`) is flushed by
//! [`Vm::flush_pending_cpu`] at the same boundary, so no instruction is
//! in flight across a migration and per-isolate totals are bit-identical
//! across scheduler modes — the invariant the cross-mode proptests pin.
//!
//! **Cross-worker termination.** [`ClusterCtl::terminate`] requests an
//! isolate kill from any thread; the request is delivered by whichever
//! worker next picks the unit up, *before* its next slice.
//! [`ClusterCtl::terminate_at`] defers delivery until the unit has run a
//! given number of slices — a *deterministic* mid-run kill, used by the
//! mid-call revocation tests to take a serving isolate down at the same
//! execution point under every scheduler mode.

use crate::accounting::{ClusterAccounts, WorkerCpuBuffer};
use crate::checkpoint::{CheckpointError, UnitImage};
use crate::ids::IsolateId;
use crate::port::{HubStats, MailboxQuota, PortHub};
use crate::trace::{
    clamp_id, ClusterMetrics, EventKind, TraceEvent, TraceRing, TraceSink, VmMetrics, TRACE_NONE,
    WORKER_RING_CAPACITY,
};
use crate::vm::{RunOutcome, Vm, VmOptions};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Compile-time proof that a whole VM is a `Send` execution unit — the
/// property the work-stealing scheduler is built on. If any field of the
/// VM graph regresses to a thread-unsafe shared handle, this fails to
/// compile rather than failing in a data race.
fn _assert_vm_is_send() {
    fn is_send<T: Send>() {}
    is_send::<Vm>();
    is_send::<Unit>();
}

/// How the cluster schedules its units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Single logical worker on the calling thread, strict FIFO, no
    /// stealing: fully reproducible, the differential oracle (and the
    /// default).
    #[default]
    Deterministic,
    /// `n` OS worker threads with per-worker run queues and work
    /// stealing. `Parallel(0)` is treated as `Parallel(1)`.
    Parallel(usize),
}

impl SchedulerKind {
    /// Number of workers this mode schedules onto.
    pub fn workers(self) -> usize {
        match self {
            SchedulerKind::Deterministic => 1,
            SchedulerKind::Parallel(n) => n.max(1),
        }
    }
}

/// Identifies an execution unit within one [`Cluster`], in submission
/// order. Obtained from [`Cluster::submit`] (via [`UnitHandle::id`]);
/// the index is stable and doubles as the unit's address on the
/// cluster's message hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(u32);

impl UnitId {
    pub(crate) const fn new(index: u32) -> UnitId {
        UnitId(index)
    }

    /// The unit's submission index — also its position in
    /// [`ClusterOutcome::units`] and its guest-visible address
    /// (`Service.callAt`).
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for UnitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unit{}", self.0)
    }
}

/// A typed handle to one submitted unit: its [`UnitId`] plus the control
/// surface addressed to it. Returned by [`Cluster::submit`].
#[derive(Debug, Clone)]
pub struct UnitHandle {
    id: UnitId,
    ctl: ClusterCtl,
}

impl UnitHandle {
    /// The unit's id.
    pub fn id(&self) -> UnitId {
        self.id
    }

    /// Requests termination of `isolate` inside this unit (delivered at
    /// the unit's next quantum boundary, from any thread).
    pub fn terminate(&self, isolate: IsolateId) {
        self.ctl.terminate(self.id, isolate);
    }

    /// Like [`UnitHandle::terminate`], deferred until the unit has run
    /// at least `min_slices` quantum slices — a deterministic mid-run
    /// kill point.
    pub fn terminate_at(&self, isolate: IsolateId, min_slices: u64) {
        self.ctl.terminate_at(self.id, isolate, min_slices);
    }

    /// Requests a checkpoint image of this unit, cut at the first
    /// quantum boundary where it has executed at least `after_slices`
    /// slices (see [`ClusterCtl::checkpoint_at`] for the delivery and
    /// determinism contract). Returns a [`CheckpointTicket`]; call
    /// [`CheckpointTicket::wait`] after [`Cluster::run`] returns (or
    /// from another OS thread, under the parallel scheduler).
    pub fn checkpoint_at(&self, after_slices: u64) -> CheckpointTicket {
        self.ctl.checkpoint_at(self.id, after_slices)
    }
}

/// A scheduled unit: a VM plus its migration bookkeeping.
#[derive(Debug)]
struct Unit {
    id: UnitId,
    vm: Vm,
    /// Quantum slices executed so far.
    slices: u64,
    /// Worker that ran the previous slice, for migration counting.
    last_worker: Option<usize>,
    /// Cross-worker migrations this unit underwent.
    migrations: u64,
    /// Per-isolate `cpu_exact` values already harvested into a worker
    /// buffer, so each boundary charges only the delta.
    cpu_seen: Vec<u64>,
}

impl Unit {
    /// Flushes the VM's pending CPU and records the per-isolate deltas
    /// since the last boundary into `buffer`. Called at every slice
    /// boundary, before the unit can migrate.
    fn harvest_cpu(&mut self, buffer: &mut WorkerCpuBuffer) {
        self.vm.flush_pending_cpu();
        let count = self.vm.isolate_count();
        if self.cpu_seen.len() < count {
            self.cpu_seen.resize(count, 0);
        }
        for i in 0..count {
            let iso = IsolateId(i as u16);
            let cur = self.vm.isolate_stats(iso).map_or(0, |s| s.cpu_exact);
            let delta = cur - self.cpu_seen[i];
            if delta > 0 {
                buffer.record(self.id, iso, delta);
                self.cpu_seen[i] = cur;
            }
        }
    }
}

/// What happened to one unit, reported after the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct UnitReport {
    /// The unit.
    pub id: UnitId,
    /// Terminal outcome: [`RunOutcome::Idle`] (all work finished),
    /// [`RunOutcome::Deadlock`] (its threads blocked on each other), or
    /// [`RunOutcome::Blocked`] (a cross-unit call whose reply never
    /// came — the cluster quiesced around it).
    pub outcome: RunOutcome,
    /// Quantum slices the unit consumed.
    pub slices: u64,
    /// Times the unit changed workers between consecutive slices.
    pub migrations: u64,
}

/// One finished unit: its VM (for result/console/stats inspection) and
/// its scheduling report.
#[derive(Debug)]
#[non_exhaustive]
pub struct UnitOutcome {
    /// The unit's VM.
    pub vm: Vm,
    /// The unit's scheduling report.
    pub report: UnitReport,
}

/// Everything a finished cluster run returns.
///
/// **Ordering invariant:** `units` is indexed by [`UnitId`] —
/// `outcome.units[h.id().index() as usize]` is always the unit submitted
/// as `h`, *regardless of completion order* (units finishing out of
/// submission order under the parallel scheduler are sorted back; the
/// invariant is asserted at collection time and pinned by a test). Use
/// [`ClusterOutcome::unit`] to index by handle.
#[derive(Debug)]
#[non_exhaustive]
pub struct ClusterOutcome {
    /// The units, in [`UnitId`] order (see the ordering invariant above).
    pub units: Vec<UnitOutcome>,
    /// Cluster-level per-isolate exact CPU, fed only through worker
    /// buffers draining at migration points.
    pub accounts: ClusterAccounts,
    /// Units taken from another worker's queue.
    pub steals: u64,
    /// Total cross-worker unit migrations.
    pub migrations: u64,
    /// Scheduler counters plus every unit's [`VmMetrics`] folded
    /// together. `Some` iff at least one unit ran with tracing on.
    pub metrics: Option<ClusterMetrics>,
    /// The merged flight-recorder stream: every traced unit's ring plus
    /// every worker's scheduler ring, drained at collection time. Empty
    /// when tracing was off.
    pub trace_events: Vec<TraceEvent>,
    /// Final read-only hub snapshot: services still exported, mailbox
    /// depths and quota accounting at wrap-up (see
    /// [`Cluster::hub_stats`] for the mid-build equivalent).
    pub hub_stats: HubStats,
}

impl ClusterOutcome {
    /// The outcome of the unit `handle` refers to.
    pub fn unit(&self, handle: &UnitHandle) -> &UnitOutcome {
        &self.units[handle.id().index() as usize]
    }

    /// Mutable access to the unit `handle` refers to (e.g. to drain its
    /// console).
    pub fn unit_mut(&mut self, handle: &UnitHandle) -> &mut UnitOutcome {
        &mut self.units[handle.id().index() as usize]
    }

    /// Wraps the run's merged events in a [`TraceSink`] (sorted by
    /// virtual clock), ready for [`TraceSink::write_chrome_trace`].
    pub fn trace_sink(&self) -> TraceSink {
        TraceSink::new(self.trace_events.clone())
    }
}

/// The pending result of a [`UnitHandle::checkpoint_at`] request: a
/// one-shot slot the scheduler fulfills when it cuts (or definitively
/// fails to cut) the image at a quantum boundary.
///
/// Under [`SchedulerKind::Deterministic`] the whole cluster runs on the
/// calling thread, so call [`CheckpointTicket::wait`] *after*
/// [`Cluster::run`] returns — the image was cut mid-run and is already
/// in the slot. Under `Parallel(n)`, `wait` may also be called from
/// another OS thread while the cluster is still running.
#[derive(Debug)]
#[non_exhaustive]
pub struct CheckpointTicket {
    inner: Arc<TicketInner>,
}

#[derive(Debug, Default)]
struct TicketInner {
    slot: Mutex<Option<Result<UnitImage, CheckpointError>>>,
    ready: Condvar,
}

impl TicketInner {
    /// First fulfillment wins; later ones are dropped (a request is
    /// consumed exactly once, so a second call can only be the shutdown
    /// safety net racing a regular delivery).
    fn fulfill(&self, r: Result<UnitImage, CheckpointError>) {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(r);
        }
        self.ready.notify_all();
    }
}

impl CheckpointTicket {
    /// Blocks until the scheduler settles the request, then returns the
    /// image (or the reason no image could be cut).
    pub fn wait(self) -> Result<UnitImage, CheckpointError> {
        let mut slot = self.inner.slot.lock().unwrap();
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.inner.ready.wait(slot).unwrap();
        }
    }

    /// Non-blocking probe: the result if the request has been settled.
    pub fn try_take(&self) -> Option<Result<UnitImage, CheckpointError>> {
        self.inner.slot.lock().unwrap().take()
    }
}

/// A pending checkpoint request (see [`UnitHandle::checkpoint_at`]).
#[derive(Debug, Clone)]
struct CkptRequest {
    unit: UnitId,
    /// Captured at the first quantum boundary where the unit has run at
    /// least this many slices.
    after_slices: u64,
    /// Set by the quiescence path: the next capture attempt must settle
    /// the ticket (image or error) instead of retrying, so a permanently
    /// blocked unit cannot livelock the cluster's wrap-up.
    final_attempt: bool,
    ticket: Arc<TicketInner>,
}

/// A pending cross-worker termination request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct KillRequest {
    unit: UnitId,
    isolate: IsolateId,
    /// Delivered once the unit has run at least this many slices (0 =
    /// at its next pickup).
    after_slices: u64,
}

/// Shared remote-control handle for a cluster (cloneable, thread-safe).
#[derive(Debug, Clone, Default)]
pub struct ClusterCtl {
    inner: Arc<CtlInner>,
}

#[derive(Debug, Default)]
struct CtlInner {
    /// Fast-path flag so workers only lock the kill list when a request
    /// is actually pending.
    armed: AtomicBool,
    kills: Mutex<Vec<KillRequest>>,
    /// Fast-path flag for the checkpoint list, mirroring `armed`.
    ckpt_armed: AtomicBool,
    ckpts: Mutex<Vec<CkptRequest>>,
}

impl ClusterCtl {
    /// Requests termination of `isolate` inside `unit`. Delivered by
    /// whichever worker next schedules the unit, before its next quantum
    /// slice — the dying isolate's threads stop at the next quantum
    /// boundary on whatever core they run. Requests filed before
    /// [`Cluster::run`] are delivered before the unit's first slice.
    pub fn terminate(&self, unit: UnitId, isolate: IsolateId) {
        self.terminate_at(unit, isolate, 0);
    }

    /// Like [`ClusterCtl::terminate`], but deferred until the unit has
    /// executed at least `min_slices` quantum slices. Because a unit's
    /// slice count is a function of its own deterministic execution (not
    /// of wall-clock time), this yields the *same* kill point under
    /// `Deterministic` and `Parallel(n)` — the deterministic mid-call
    /// revocation tests are built on it.
    pub fn terminate_at(&self, unit: UnitId, isolate: IsolateId, min_slices: u64) {
        let mut kills = self.inner.kills.lock().unwrap();
        kills.push(KillRequest {
            unit,
            isolate,
            after_slices: min_slices,
        });
        // Armed while still holding the lock, mirroring `take_for`'s
        // clear-under-lock: at every unlock, `armed` agrees with
        // `!kills.is_empty()`, so a worker's fast-path read can only
        // say "false" for a kill that had not been filed yet.
        self.inner.armed.store(true, Ordering::Release);
    }

    /// Takes the kill requests addressed to `unit` that are due at
    /// `slices` executed, if any.
    fn take_for(&self, unit: UnitId, slices: u64) -> Vec<IsolateId> {
        if !self.inner.armed.load(Ordering::Acquire) {
            return Vec::new();
        }
        let mut kills = self.inner.kills.lock().unwrap();
        let mut taken = Vec::new();
        kills.retain(|k| {
            if k.unit == unit && k.after_slices <= slices {
                taken.push(k.isolate);
                false
            } else {
                true
            }
        });
        if kills.is_empty() {
            self.inner.armed.store(false, Ordering::Release);
        }
        taken
    }

    /// Requests a checkpoint of `unit` at the first quantum boundary
    /// where it has executed at least `after_slices` slices. Like
    /// [`ClusterCtl::terminate_at`], the cut point is a function of the
    /// unit's own deterministic slice count, never of wall-clock time,
    /// so the image is bit-identical under `Deterministic` and every
    /// `Parallel(n)` — the restore-determinism tests are built on that.
    ///
    /// If the unit is not at a clean boundary there (in-flight cross-
    /// unit calls, undrained mail), the request is retried at later
    /// boundaries until the traffic drains; a unit that finishes, or a
    /// cluster that quiesces, settles the request against the unit's
    /// final state instead.
    pub fn checkpoint_at(&self, unit: UnitId, after_slices: u64) -> CheckpointTicket {
        let inner = Arc::new(TicketInner::default());
        let mut ckpts = self.inner.ckpts.lock().unwrap();
        ckpts.push(CkptRequest {
            unit,
            after_slices,
            final_attempt: false,
            ticket: Arc::clone(&inner),
        });
        // Armed under the lock, mirroring `terminate_at`.
        self.inner.ckpt_armed.store(true, Ordering::Release);
        drop(ckpts);
        CheckpointTicket { inner }
    }

    /// Takes the checkpoint requests addressed to `unit` that are due at
    /// `slices` executed (final-marked requests are always due).
    fn take_ckpts_for(&self, unit: UnitId, slices: u64) -> Vec<CkptRequest> {
        if !self.inner.ckpt_armed.load(Ordering::Acquire) {
            return Vec::new();
        }
        let mut ckpts = self.inner.ckpts.lock().unwrap();
        let mut taken = Vec::new();
        let mut i = 0;
        while i < ckpts.len() {
            let c = &ckpts[i];
            if c.unit == unit && (c.after_slices <= slices || c.final_attempt) {
                taken.push(ckpts.remove(i));
            } else {
                i += 1;
            }
        }
        if ckpts.is_empty() {
            self.inner.ckpt_armed.store(false, Ordering::Release);
        }
        taken
    }

    /// Re-files requests whose capture attempt found the unit unclean
    /// (they retry at the unit's next boundary).
    fn put_back_ckpts(&self, reqs: Vec<CkptRequest>) {
        if reqs.is_empty() {
            return;
        }
        let mut ckpts = self.inner.ckpts.lock().unwrap();
        ckpts.extend(reqs);
        self.inner.ckpt_armed.store(true, Ordering::Release);
    }

    /// `true` when any checkpoint request for `unit` is pending.
    fn has_pending_ckpt(&self, unit: UnitId) -> bool {
        if !self.inner.ckpt_armed.load(Ordering::Acquire) {
            return false;
        }
        self.inner
            .ckpts
            .lock()
            .unwrap()
            .iter()
            .any(|c| c.unit == unit)
    }

    /// Marks every pending request for `unit` final (quiescence wrap-up:
    /// no further slice can ever make a not-yet-due request due, and no
    /// further traffic can clean an unclean boundary).
    fn mark_ckpts_final(&self, unit: UnitId) {
        let mut ckpts = self.inner.ckpts.lock().unwrap();
        for c in ckpts.iter_mut() {
            if c.unit == unit {
                c.final_attempt = true;
            }
        }
    }

    /// Drains every pending request (cluster shutdown safety net).
    fn take_all_ckpts(&self) -> Vec<CkptRequest> {
        let mut ckpts = self.inner.ckpts.lock().unwrap();
        self.inner.ckpt_armed.store(false, Ordering::Release);
        std::mem::take(&mut *ckpts)
    }

    /// `true` when a kill addressed to `unit` is due at `slices`.
    fn has_pending(&self, unit: UnitId, slices: u64) -> bool {
        if !self.inner.armed.load(Ordering::Acquire) {
            return false;
        }
        self.inner
            .kills
            .lock()
            .unwrap()
            .iter()
            .any(|k| k.unit == unit && k.after_slices <= slices)
    }
}

/// Default instruction budget of one quantum slice (mirrors the default
/// in-VM scheduler quantum, so one slice is one thread quantum).
pub const DEFAULT_SLICE: u64 = 10_000;

/// Builds a [`Cluster`]: scheduling mode, slice length, and the
/// [`VmOptions`] defaults its units are expected to boot with. This is
/// the embedding entry point of the v2 API — it owns everything the old
/// `Cluster::{new, from_options, with_slice}` trio spread out.
///
/// ```
/// use ijvm_core::prelude::*;
///
/// let cluster = Cluster::builder()
///     .scheduler(SchedulerKind::Parallel(2))
///     .slice(2_000)
///     .build();
/// # let _ = cluster;
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    kind: SchedulerKind,
    slice: u64,
    vm_options: VmOptions,
    mailbox_quota: MailboxQuota,
}

impl Default for ClusterBuilder {
    fn default() -> ClusterBuilder {
        ClusterBuilder {
            kind: SchedulerKind::Deterministic,
            slice: DEFAULT_SLICE,
            vm_options: VmOptions::isolated(),
            mailbox_quota: MailboxQuota::UNBOUNDED,
        }
    }
}

impl ClusterBuilder {
    /// A deterministic cluster with the default slice and `Isolated`
    /// unit defaults.
    pub fn new() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Sets the scheduling mode.
    pub fn scheduler(mut self, kind: SchedulerKind) -> ClusterBuilder {
        self.kind = kind;
        self
    }

    /// Sets the per-slice instruction budget (a tiny slice forces many
    /// migration points; mostly for tests).
    pub fn slice(mut self, slice: u64) -> ClusterBuilder {
        self.slice = slice.max(1);
        self
    }

    /// Sets the [`VmOptions`] defaults for this cluster's units and
    /// absorbs the options' [`VmOptions::scheduler`] as the cluster's
    /// mode (call [`ClusterBuilder::scheduler`] afterwards to override).
    /// The defaults are advisory — [`Cluster::options`] hands them back
    /// for booting units — since units are built by the embedder.
    pub fn vm_options(mut self, options: VmOptions) -> ClusterBuilder {
        self.kind = options.scheduler;
        self.vm_options = options;
        self
    }

    /// Caps every unit's mailbox at `max_messages` admitted-but-unserved
    /// requests and `max_bytes` of serialized payload. Over-quota senders
    /// are *parked* (their green thread blocks in the send, already
    /// charged sender-pays for the payload) and retried at quantum
    /// boundaries as the destination drains — flow control, not failure.
    /// Replies are exempt so request/reply cycles cannot deadlock. The
    /// default is [`MailboxQuota::UNBOUNDED`].
    pub fn mailbox_quota(mut self, max_messages: u32, max_bytes: u64) -> ClusterBuilder {
        self.mailbox_quota = MailboxQuota {
            max_messages,
            max_bytes,
        };
        self
    }

    /// Builds the cluster (empty; `submit` units next).
    pub fn build(self) -> Cluster {
        Cluster {
            kind: self.kind,
            slice: self.slice,
            vm_defaults: self.vm_options,
            units: Vec::new(),
            ctl: ClusterCtl::default(),
            hub: Arc::new(PortHub::with_quota(self.mailbox_quota)),
        }
    }
}

/// The cluster: a set of submitted units plus a scheduling mode and the
/// shared message hub its units communicate through.
#[derive(Debug)]
pub struct Cluster {
    kind: SchedulerKind,
    slice: u64,
    vm_defaults: VmOptions,
    units: Vec<Unit>,
    ctl: ClusterCtl,
    hub: Arc<PortHub>,
}

impl Cluster {
    /// Starts building a cluster (the v2 embedding entry point).
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::new()
    }

    /// Shorthand for `Cluster::builder().scheduler(kind).build()`.
    #[deprecated(
        since = "0.3.0",
        note = "use `Cluster::builder().scheduler(kind).build()` — the \
                builder is the one construction path and also carries the \
                flow-control knobs (`ClusterBuilder::mailbox_quota`)"
    )]
    pub fn new(kind: SchedulerKind) -> Cluster {
        Cluster::builder().scheduler(kind).build()
    }

    /// Creates a cluster with the mode selected in `options`.
    #[deprecated(
        since = "0.2.0",
        note = "use `Cluster::builder().vm_options(options).build()`"
    )]
    pub fn from_options(options: &VmOptions) -> Cluster {
        Cluster::builder().vm_options(options.clone()).build()
    }

    /// Overrides the per-slice instruction budget (shorthand for the
    /// builder's [`ClusterBuilder::slice`]).
    #[deprecated(
        since = "0.3.0",
        note = "configure the slice up front with `ClusterBuilder::slice` \
                instead of mutating a built cluster"
    )]
    pub fn with_slice(mut self, slice: u64) -> Cluster {
        self.slice = slice.max(1);
        self
    }

    /// The [`VmOptions`] defaults units of this cluster should boot with
    /// (as configured through [`ClusterBuilder::vm_options`]).
    pub fn options(&self) -> &VmOptions {
        &self.vm_defaults
    }

    /// A read-only snapshot of the cluster's message hub: exported
    /// services, per-unit mailbox depths and quota accounting, unresolved
    /// requests. This replaces the old `Cluster::hub()` accessor, which
    /// leaked the hub's internals (`Arc<PortHub>`) into embedder code;
    /// the hub itself is now crate-private. [`ClusterOutcome::hub_stats`]
    /// carries the final snapshot past [`Cluster::run`].
    pub fn hub_stats(&self) -> HubStats {
        self.hub.stats()
    }

    /// Submits a prepared VM (isolates created, entry threads spawned via
    /// [`Vm::spawn_thread`], nothing run yet) as an execution unit,
    /// attaching it to the cluster's message hub: services the VM already
    /// exports become addressable as `(unit, name)`, and its guest code
    /// can now reach other units through `ijvm/Service` / `ijvm/Port`.
    pub fn submit(&mut self, mut vm: Vm) -> UnitHandle {
        let id = UnitId::new(self.units.len() as u32);
        vm.attach_port(id, Arc::clone(&self.hub));
        self.units.push(Unit {
            id,
            vm,
            slices: 0,
            last_worker: None,
            migrations: 0,
            cpu_seen: Vec::new(),
        });
        UnitHandle {
            id,
            ctl: self.ctl.clone(),
        }
    }

    /// Restores a checkpoint image ([`crate::checkpoint`]) as a new
    /// execution unit — crash-restart: the unit resumes from the
    /// captured boundary with a fresh [`UnitId`] and re-exports its
    /// services under their **original names** (the restored unit is
    /// the service; callers that looked the name up again after the
    /// crash reach it).
    ///
    /// The cluster's [`VmOptions`] defaults are the restore options —
    /// their hard state-shape fields must match the image (see
    /// [`crate::checkpoint::restore`]). `natives` must register the
    /// natives the captured VM had (e.g. `ijvm_jsl::install_natives`).
    pub fn submit_image(
        &mut self,
        image: &UnitImage,
        natives: impl FnOnce(&mut Vm),
    ) -> Result<UnitHandle, CheckpointError> {
        let vm = crate::checkpoint::restore(image, self.vm_defaults.clone(), natives)?;
        Ok(self.submit(vm))
    }

    /// Restores one image as `n` independent units — snapshot-fork
    /// scale-out: boot and warm a unit once, checkpoint it, and stamp
    /// out clones that skip class loading and `<clinit>` re-execution
    /// entirely. Each clone gets a fresh [`UnitId`], and every exported
    /// service is renamed `"{name}#{k}"` (k = 0..n) **before** the clone
    /// attaches to the hub, so the clones publish distinct addresses
    /// instead of racing for the original's callers.
    pub fn submit_image_n(
        &mut self,
        image: &UnitImage,
        n: usize,
        natives: impl Fn(&mut Vm),
    ) -> Result<Vec<UnitHandle>, CheckpointError> {
        let mut handles = Vec::with_capacity(n);
        for k in 0..n {
            let mut vm = crate::checkpoint::restore(image, self.vm_defaults.clone(), &natives)?;
            vm.port_remap_service_names(k);
            handles.push(self.submit(vm));
        }
        Ok(handles)
    }

    /// Number of submitted units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// The remote-control handle (clone it before [`Cluster::run`] to
    /// file termination requests from other threads mid-run).
    pub fn ctl(&self) -> ClusterCtl {
        self.ctl.clone()
    }

    /// Runs every unit until the cluster quiesces and returns the
    /// outcome. Consumes the cluster: the VMs come back in the outcome
    /// for inspection.
    pub fn run(self) -> ClusterOutcome {
        let workers = self.kind.workers();
        let trace_on = self.vm_defaults.trace.is_on()
            || self.units.iter().any(|u| u.vm.options().trace.is_on());
        let shared = Shared::new(
            workers, self.slice, self.units, self.ctl, self.hub, trace_on,
        );
        match self.kind {
            SchedulerKind::Deterministic => shared.worker_loop(0),
            SchedulerKind::Parallel(_) => {
                std::thread::scope(|scope| {
                    for w in 0..workers {
                        let shared = &shared;
                        scope.spawn(move || shared.worker_loop(w));
                    }
                });
            }
        }
        shared.into_outcome()
    }
}

/// One worker's private flight-recorder ring: scheduler events
/// ([`EventKind::UnitDispatch`] .. [`EventKind::UnitKill`]) are recorded
/// lock-free into per-worker storage and merged only once, when the
/// cluster collects its outcome. The eager counters survive ring wrap.
#[derive(Debug)]
struct WorkerTrace {
    ring: TraceRing,
    wall: crate::trace::WallClock,
    dispatches: u64,
    parks: u64,
    unparks: u64,
    kills: u64,
    finishes: u64,
}

impl WorkerTrace {
    fn new() -> WorkerTrace {
        WorkerTrace {
            ring: TraceRing::with_capacity(WORKER_RING_CAPACITY),
            wall: crate::trace::WallClock::new(),
            dispatches: 0,
            parks: 0,
            unparks: 0,
            kills: 0,
            finishes: 0,
        }
    }

    /// Records one scheduler event. `vclock` is the affected unit's
    /// virtual clock at the boundary; `worker` lands in the `thread`
    /// column so Perfetto lanes scheduler events per worker.
    fn emit(
        &mut self,
        kind: EventKind,
        worker: usize,
        unit: UnitId,
        vclock: u64,
        isolate: u8,
        payload: u64,
    ) {
        match kind {
            // Steals count through the scheduler's authoritative atomic.
            EventKind::UnitDispatch => self.dispatches += 1,
            EventKind::UnitPark => self.parks += 1,
            EventKind::UnitUnpark => self.unparks += 1,
            EventKind::UnitKill => self.kills += 1,
            EventKind::UnitFinish => self.finishes += 1,
            _ => {}
        }
        // An unpark follows a host-time wait the unit's vclock knows
        // nothing about, so its stamp must bypass the sampler's cache;
        // every other scheduler event sits at a slice boundary the
        // guest just ran up to.
        let wall_us = if kind == EventKind::UnitUnpark {
            self.wall.refresh(vclock)
        } else {
            self.wall.sample(vclock)
        };
        self.ring.push(TraceEvent {
            vclock,
            payload,
            wall_us,
            kind,
            unit: clamp_id(unit.index()),
            isolate,
            thread: clamp_id(worker as u32),
        });
    }
}

/// A unit parked off the run queues, waiting for mail (or for the
/// cluster to quiesce), with the outcome it last reported.
#[derive(Debug)]
struct ParkedUnit {
    unit: Unit,
    outcome: RunOutcome,
}

/// State shared by the workers of one running cluster.
///
/// Lock discipline: `parked` is the outermost lock; `queues[i]` and the
/// hub's internal lock are leaves, taken one at a time and never held
/// across each other. `running` counts units currently held by a worker
/// (between pop and disposition) and is only mutated under the popped
/// queue's lock, so a quiescence check that holds `parked` and observes
/// `running == 0` with all queues empty has a consistent snapshot.
#[derive(Debug)]
struct Shared {
    slice: u64,
    queues: Vec<Mutex<VecDeque<Unit>>>,
    /// Units not yet finished; workers exit when this reaches zero.
    outstanding: AtomicUsize,
    /// Units currently held by a worker (popped, not yet disposed).
    running: AtomicUsize,
    /// Units parked off the queues, keyed by unit index. A `BTreeMap`
    /// on purpose: [`Shared::try_quiesce`] iterates it to pick overdue
    /// kills and to wrap up, and both requeue units — hash-iteration
    /// order here would leak straight into requeue (and so delivery)
    /// order under the deterministic scheduler.
    parked_units: Mutex<BTreeMap<u32, ParkedUnit>>,
    /// Park/unpark for idle workers (paired with `parked`).
    parked: Mutex<()>,
    unpark: Condvar,
    /// Workers currently waiting on `unpark`. Notifications are skipped
    /// while this is zero (the deterministic single-worker loop never
    /// pays for them); a worker increments it *before* re-checking for
    /// work, and the 1 ms wait timeout bounds any remaining lost-wakeup
    /// window.
    idle_workers: AtomicUsize,
    ctl: ClusterCtl,
    hub: Arc<PortHub>,
    accounts: Mutex<ClusterAccounts>,
    finished: Mutex<Vec<(UnitReport, Vm)>>,
    steals: AtomicU64,
    migrations: AtomicU64,
    /// Whether any unit runs traced; workers record scheduler events
    /// into private [`WorkerTrace`] rings only when set.
    trace_on: bool,
    /// Worker rings, pushed exactly once per worker at loop exit and
    /// merged by [`Shared::into_outcome`].
    worker_traces: Mutex<Vec<WorkerTrace>>,
}

impl Shared {
    fn new(
        workers: usize,
        slice: u64,
        units: Vec<Unit>,
        ctl: ClusterCtl,
        hub: Arc<PortHub>,
        trace_on: bool,
    ) -> Shared {
        let queues: Vec<Mutex<VecDeque<Unit>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let outstanding = units.len();
        // Seed round-robin so every worker starts with local work.
        for (i, unit) in units.into_iter().enumerate() {
            queues[i % workers].lock().unwrap().push_back(unit);
        }
        Shared {
            slice,
            queues,
            outstanding: AtomicUsize::new(outstanding),
            running: AtomicUsize::new(0),
            parked_units: Mutex::new(BTreeMap::new()),
            parked: Mutex::new(()),
            unpark: Condvar::new(),
            idle_workers: AtomicUsize::new(0),
            ctl,
            hub,
            accounts: Mutex::new(ClusterAccounts::default()),
            finished: Mutex::new(Vec::new()),
            steals: AtomicU64::new(0),
            migrations: AtomicU64::new(0),
            trace_on,
            worker_traces: Mutex::new(Vec::new()),
        }
    }

    /// Pops local work from the front (FIFO, the deterministic order).
    /// `running` is incremented under the queue lock (see the lock
    /// discipline note on [`Shared`]).
    fn pop_local(&self, w: usize) -> Option<Unit> {
        let mut q = self.queues[w].lock().unwrap();
        let unit = q.pop_front();
        if unit.is_some() {
            self.running.fetch_add(1, Ordering::SeqCst);
        }
        unit
    }

    /// Steals from the back of the first non-empty victim queue.
    fn steal(&self, w: usize) -> Option<Unit> {
        let n = self.queues.len();
        for off in 1..n {
            let victim = (w + off) % n;
            let mut q = self.queues[victim].lock().unwrap();
            if let Some(unit) = q.pop_back() {
                self.running.fetch_add(1, Ordering::SeqCst);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(unit);
            }
        }
        None
    }

    /// Notifies idle workers, if any (free when nobody waits — the
    /// deterministic single worker never does).
    fn notify(&self) {
        if self.idle_workers.load(Ordering::Acquire) > 0 {
            self.unpark.notify_all();
        }
    }

    /// Moves parked units with fresh mail back onto run queues (the
    /// "wakeups on delivery" half of park/unpark). Tokens for units that
    /// are not parked are dropped: a queued or running unit drains its
    /// mail at pickup, and the park decision re-checks the mailbox under
    /// the same locks, so no delivery can be lost. `scratch` is the
    /// caller's reusable token buffer.
    fn sweep_wakeups(
        &self,
        scratch: &mut Vec<u32>,
        wt: &mut Option<WorkerTrace>,
        me: usize,
    ) -> bool {
        if !self.hub.has_woken() {
            return false;
        }
        let mut parked = self.parked_units.lock().unwrap();
        scratch.clear();
        self.hub.drain_woken_into(scratch);
        let mut moved = false;
        for &id in scratch.iter() {
            if let Some(p) = parked.remove(&id) {
                if let Some(wt) = wt.as_mut() {
                    wt.emit(
                        EventKind::UnitUnpark,
                        me,
                        p.unit.id,
                        p.unit.vm.vclock(),
                        TRACE_NONE,
                        0,
                    );
                }
                let w = p.unit.last_worker.unwrap_or(id as usize) % self.queues.len();
                self.queues[w].lock().unwrap().push_back(p.unit);
                moved = true;
            }
        }
        if moved {
            self.notify();
        }
        moved
    }

    /// Whether `unit` must stay schedulable after a terminal outcome:
    /// it exports live services, waits on a reply, or has undrained mail.
    fn keeps_unit_alive(unit: &Unit) -> bool {
        unit.vm.port_keeps_unit_alive()
    }

    /// Settles the checkpoint requests due for `unit` at its current
    /// boundary: a clean capture fulfills every due ticket with a clone
    /// of one image; an unclean boundary re-files non-final requests for
    /// the next boundary and fails final ones.
    fn deliver_checkpoints(&self, unit: &Unit) {
        let due = self.ctl.take_ckpts_for(unit.id, unit.slices);
        if due.is_empty() {
            return;
        }
        match unit.vm.checkpoint() {
            Ok(image) => {
                for req in due {
                    req.ticket.fulfill(Ok(image.clone()));
                }
            }
            Err(e) => {
                let mut retry = Vec::new();
                for req in due {
                    if req.final_attempt {
                        req.ticket.fulfill(Err(e.clone()));
                    } else {
                        retry.push(req);
                    }
                }
                self.ctl.put_back_ckpts(retry);
            }
        }
    }

    /// Finishes one unit.
    fn finish(&self, unit: Unit, outcome: RunOutcome) {
        // A finishing unit settles every checkpoint request addressed to
        // it, whatever its `after_slices`: the contract is "at slice N
        // or at unit completion, whichever comes first" — there will be
        // no later boundary.
        let pending = self.ctl.take_ckpts_for(unit.id, u64::MAX);
        if !pending.is_empty() {
            let result = unit.vm.checkpoint();
            for req in pending {
                req.ticket.fulfill(result.clone());
            }
        }
        let report = UnitReport {
            id: unit.id,
            outcome,
            slices: unit.slices,
            migrations: unit.migrations,
        };
        self.finished.lock().unwrap().push((report, unit.vm));
        if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.unpark.notify_all();
        }
    }

    /// The quiescence check: with no unit held by any worker, no unit on
    /// any queue, and no undelivered mail or wake-up token in the hub,
    /// nothing can ever make progress again — finish every parked unit
    /// with its recorded outcome. Runs under the `parked_units` lock so
    /// no park/unpark can interleave. Returns `true` when it made
    /// progress (requeued a unit for an overdue kill, or wrapped up).
    fn try_quiesce(&self, wt: &mut Option<WorkerTrace>, me: usize) -> bool {
        let mut parked = self.parked_units.lock().unwrap();
        // Overdue termination requests reach parked units here: requeue
        // them so the kill is delivered at a normal pickup.
        let overdue: Vec<u32> = parked
            .iter()
            .filter(|(_, p)| self.ctl.has_pending(p.unit.id, p.unit.slices))
            .map(|(id, _)| *id)
            .collect();
        if !overdue.is_empty() {
            for id in overdue {
                let p = parked.remove(&id).expect("collected above");
                let w = p.unit.last_worker.unwrap_or(id as usize) % self.queues.len();
                self.queues[w].lock().unwrap().push_back(p.unit);
            }
            self.notify();
            return true;
        }
        if self.running.load(Ordering::SeqCst) != 0 {
            return false;
        }
        for q in &self.queues {
            if !q.lock().unwrap().is_empty() {
                return false;
            }
        }
        if !self.hub.quiescent() {
            // Wake-up tokens remain: the caller's next sweep moves them.
            return false;
        }
        if parked.len() != self.outstanding.load(Ordering::SeqCst) {
            return false;
        }
        // The cluster is globally stalled. Parked units with pending
        // checkpoint requests get one final boundary visit before
        // wrap-up: nothing else can ever run, so the requests are marked
        // final (deliver-or-fail at pickup, no re-file) and their units
        // requeued. This terminates — the pickup consumes the requests,
        // the unit re-parks, and the next stall has nothing pending.
        let ckpt_due: Vec<u32> = parked
            .iter()
            .filter(|(_, p)| self.ctl.has_pending_ckpt(p.unit.id))
            .map(|(id, _)| *id)
            .collect();
        if !ckpt_due.is_empty() {
            for id in ckpt_due {
                let p = parked.remove(&id).expect("collected above");
                self.ctl.mark_ckpts_final(p.unit.id);
                let w = p.unit.last_worker.unwrap_or(id as usize) % self.queues.len();
                self.queues[w].lock().unwrap().push_back(p.unit);
            }
            self.notify();
            return true;
        }
        // Wrap up, in UnitId order (BTreeMap iteration is already
        // key-ordered — deterministic).
        for (_, p) in std::mem::take(&mut *parked) {
            if let Some(wt) = wt.as_mut() {
                wt.emit(
                    EventKind::UnitFinish,
                    me,
                    p.unit.id,
                    p.unit.vm.vclock(),
                    TRACE_NONE,
                    p.unit.slices,
                );
            }
            self.finish(p.unit, p.outcome);
        }
        self.unpark.notify_all();
        true
    }

    /// One worker: sweep wakeups → pop → deliver kills → drain mailbox →
    /// run a slice → flush accounting → requeue / park / finish.
    ///
    /// With tracing on, the worker records scheduler events into a
    /// private [`WorkerTrace`] ring — no locks on the hot path — and
    /// publishes the ring exactly once, on exit.
    fn worker_loop(&self, w: usize) {
        let mut wt = self.trace_on.then(WorkerTrace::new);
        self.worker_loop_inner(w, &mut wt);
        if let Some(wt) = wt {
            self.worker_traces.lock().unwrap().push(wt);
        }
    }

    fn worker_loop_inner(&self, w: usize, wt: &mut Option<WorkerTrace>) {
        let mut buffer = WorkerCpuBuffer::default();
        let mut woken_scratch: Vec<u32> = Vec::new();
        loop {
            if self.outstanding.load(Ordering::Acquire) == 0 {
                return;
            }
            self.sweep_wakeups(&mut woken_scratch, wt, w);
            let popped = match self.pop_local(w) {
                Some(unit) => Some((unit, false)),
                None => self.steal(w).map(|unit| (unit, true)),
            };
            let Some((mut unit, stolen)) = popped else {
                if self.outstanding.load(Ordering::Acquire) == 0 {
                    return;
                }
                if self.try_quiesce(wt, w) {
                    continue;
                }
                // Units exist but other workers hold them (or tokens are
                // in flight): park briefly. The timeout makes lost
                // wakeups harmless.
                self.idle_workers.fetch_add(1, Ordering::AcqRel);
                let guard = self.parked.lock().unwrap();
                let _ = self
                    .unpark
                    .wait_timeout(guard, std::time::Duration::from_millis(1))
                    .unwrap();
                self.idle_workers.fetch_sub(1, Ordering::AcqRel);
                continue;
            };

            if let Some(wt) = wt.as_mut() {
                let kind = if stolen {
                    EventKind::UnitSteal
                } else {
                    EventKind::UnitDispatch
                };
                wt.emit(kind, w, unit.id, unit.vm.vclock(), TRACE_NONE, unit.slices);
            }

            // Cross-worker termination lands at the quantum boundary,
            // before the next slice, on whatever core the unit is on.
            for iso in self.ctl.take_for(unit.id, unit.slices) {
                // Best-effort: Shared-mode units and unknown isolates
                // simply ignore the request.
                if let Some(wt) = wt.as_mut() {
                    wt.emit(
                        EventKind::UnitKill,
                        w,
                        unit.id,
                        unit.vm.vclock(),
                        clamp_id(iso.0 as u32),
                        0,
                    );
                }
                let _ = unit.vm.terminate_isolate(iso);
            }

            if unit.last_worker.is_some_and(|prev| prev != w) {
                unit.migrations += 1;
                self.migrations.fetch_add(1, Ordering::Relaxed);
            }
            unit.last_worker = Some(w);

            // Quantum-boundary mail delivery: requests dispatch onto
            // service pumps, replies wake their blocked callers.
            unit.vm.port_drain();

            // Checkpoint requests due at this boundary cut their image
            // here — after the mail drain, before the slice runs: the
            // same point in the unit's deterministic slice sequence
            // under every scheduler mode, which is what makes the image
            // bit-identical across Deterministic and Parallel(n).
            self.deliver_checkpoints(&unit);

            let outcome = unit.vm.run(Some(self.slice));
            // Quantum-boundary coalescing: replies buffered during the
            // slice post to the hub in one lock acquisition, and the
            // slice's served requests release their quota (waking any
            // parked senders) at the same time.
            unit.vm.port_quantum_flush();
            unit.slices += 1;
            unit.harvest_cpu(&mut buffer);

            // Drain the worker buffer *before* the unit becomes visible
            // to other workers: accounting is exact at every point where
            // a steal could move the unit to another core.
            buffer.drain_into(&mut self.accounts.lock().unwrap());

            match outcome {
                RunOutcome::BudgetExhausted => {
                    self.queues[w].lock().unwrap().push_back(unit);
                    self.notify();
                }
                outcome => {
                    if Self::keeps_unit_alive(&unit) {
                        // Park — unless mail arrived while the slice ran,
                        // in which case the unit goes straight back to
                        // work. The mailbox check and the park insert
                        // happen under the `parked_units` lock, so a
                        // concurrent delivery either lands before the
                        // check (seen here) or leaves a wake-up token a
                        // later sweep resolves against the parked entry.
                        let mut parked = self.parked_units.lock().unwrap();
                        // `port_retry_ready` mirrors the mailbox
                        // re-check for quota-parked sends: a destination
                        // may have drained (pushing this unit's wake-up
                        // token) while the slice ran, and the token
                        // sweep drops tokens for units that are not
                        // parked yet. Both probes are VM-side: the mail
                        // check reads the unit's own cached mailbox and
                        // the retry probe touches only the shards its
                        // parked sends wait on, so the common
                        // compute-only park never takes a hub lock.
                        if unit.vm.port_has_mail() || unit.vm.port_retry_ready() {
                            drop(parked);
                            self.queues[w].lock().unwrap().push_back(unit);
                        } else {
                            if let Some(wt) = wt.as_mut() {
                                wt.emit(
                                    EventKind::UnitPark,
                                    w,
                                    unit.id,
                                    unit.vm.vclock(),
                                    TRACE_NONE,
                                    unit.slices,
                                );
                            }
                            parked.insert(unit.id.index(), ParkedUnit { unit, outcome });
                        }
                        self.notify();
                    } else {
                        // Nothing keeps the unit alive — but a request
                        // may have raced into its mailbox just before
                        // its services were revoked. Fail it back to the
                        // caller now; finishing with undelivered mail
                        // would leave the cluster unable to quiesce.
                        if unit.vm.port_has_mail() {
                            unit.vm.port_drain_force();
                            unit.vm.port_quantum_flush();
                        }
                        if let Some(wt) = wt.as_mut() {
                            wt.emit(
                                EventKind::UnitFinish,
                                w,
                                unit.id,
                                unit.vm.vclock(),
                                TRACE_NONE,
                                unit.slices,
                            );
                        }
                        self.finish(unit, outcome);
                    }
                }
            }
            self.running.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Collects the outcome, restoring [`UnitId`] order (the documented
    /// `ClusterOutcome::units` indexing invariant).
    fn into_outcome(self) -> ClusterOutcome {
        let mut done = self.finished.into_inner().unwrap();
        done.sort_by_key(|(r, _)| r.id);
        for (i, (r, _)) in done.iter().enumerate() {
            assert_eq!(
                r.id.index() as usize,
                i,
                "ClusterOutcome::units must be indexable by UnitId"
            );
        }
        let mut units: Vec<UnitOutcome> = done
            .into_iter()
            .map(|(report, vm)| UnitOutcome { vm, report })
            .collect();
        // Shutdown safety net: requests that never met their unit (a
        // made-up unit id, or filed after the unit finished) settle
        // against the final VMs, or fail cleanly — no ticket is ever
        // left unfulfilled by a completed run.
        for req in self.ctl.take_all_ckpts() {
            let result = match units.get(req.unit.index() as usize) {
                Some(u) => u.vm.checkpoint(),
                None => Err(CheckpointError::NotQuiescent(
                    "unit not found at cluster shutdown",
                )),
            };
            req.ticket.fulfill(result);
        }

        let steals = self.steals.load(Ordering::Relaxed);
        let migrations = self.migrations.load(Ordering::Relaxed);

        // Merge the flight recorder: every worker's scheduler ring plus
        // every traced unit's VM ring, counters folded into one
        // [`ClusterMetrics`]. This is the only point where trace data
        // crosses threads — the rings were single-writer until here.
        let mut trace_events = Vec::new();
        let metrics = if self.trace_on {
            let mut m = ClusterMetrics {
                steals,
                migrations,
                ..ClusterMetrics::default()
            };
            let mut worker_dropped = 0;
            for mut wt in self.worker_traces.into_inner().unwrap() {
                m.dispatches += wt.dispatches;
                m.unit_parks += wt.parks;
                m.unit_unparks += wt.unparks;
                m.kills += wt.kills;
                m.units_finished += wt.finishes;
                worker_dropped += wt.ring.dropped_events();
                trace_events.extend(wt.ring.drain_ordered());
            }
            let mut totals = VmMetrics::default();
            for u in &mut units {
                totals.absorb(&u.vm.metrics());
                trace_events.extend(u.vm.take_trace_events());
            }
            m.dropped_events = worker_dropped + totals.dropped_events;
            m.totals = totals;
            Some(m)
        } else {
            None
        };

        ClusterOutcome {
            units,
            accounts: self.accounts.into_inner().unwrap(),
            steals,
            migrations,
            metrics,
            trace_events,
            hub_stats: self.hub.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_kind_worker_counts() {
        assert_eq!(SchedulerKind::Deterministic.workers(), 1);
        assert_eq!(SchedulerKind::Parallel(0).workers(), 1);
        assert_eq!(SchedulerKind::Parallel(4).workers(), 4);
    }

    #[test]
    fn ctl_kill_requests_route_by_unit_and_slice() {
        let ctl = ClusterCtl::default();
        assert!(ctl.take_for(UnitId(0), 0).is_empty(), "idle ctl is free");
        ctl.terminate(UnitId(0), IsolateId(1));
        ctl.terminate(UnitId(1), IsolateId(2));
        ctl.terminate(UnitId(0), IsolateId(3));
        assert_eq!(ctl.take_for(UnitId(0), 0), vec![IsolateId(1), IsolateId(3)]);
        assert_eq!(ctl.take_for(UnitId(1), 0), vec![IsolateId(2)]);
        assert!(ctl.take_for(UnitId(1), 0).is_empty());
        assert!(!ctl.inner.armed.load(Ordering::Acquire));

        // Deferred kills stay pending until the slice threshold.
        ctl.terminate_at(UnitId(2), IsolateId(1), 5);
        assert!(ctl.take_for(UnitId(2), 4).is_empty());
        assert!(ctl.has_pending(UnitId(2), 5));
        assert_eq!(ctl.take_for(UnitId(2), 5), vec![IsolateId(1)]);
        assert!(!ctl.has_pending(UnitId(2), 99));
    }

    /// The steal path takes from the *back* of a victim queue while the
    /// owner pops from the front — the two never contend for the same
    /// unit unless it is the last one.
    #[test]
    fn steal_takes_from_victim_back() {
        let mk = |id: u32| Unit {
            id: UnitId(id),
            vm: Vm::new(VmOptions::isolated()),
            slices: 0,
            last_worker: None,
            migrations: 0,
            cpu_seen: Vec::new(),
        };
        let shared = Shared::new(
            2,
            100,
            vec![mk(0), mk(1), mk(2), mk(3)],
            ClusterCtl::default(),
            Arc::new(PortHub::default()),
            false,
        );
        // Round-robin seeding: q0 = [0, 2], q1 = [1, 3].
        assert_eq!(shared.pop_local(0).unwrap().id, UnitId(0));
        assert_eq!(shared.steal(0).unwrap().id, UnitId(3), "steals the back");
        assert_eq!(shared.pop_local(1).unwrap().id, UnitId(1));
        assert_eq!(shared.steal(1).unwrap().id, UnitId(2));
        assert!(shared.pop_local(0).is_none());
        assert!(shared.steal(0).is_none());
        assert_eq!(shared.steals.load(Ordering::Relaxed), 2);
        assert_eq!(shared.running.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn builder_absorbs_options_and_overrides() {
        let mut options = VmOptions::isolated();
        options.scheduler = SchedulerKind::Parallel(3);
        let cluster = Cluster::builder().vm_options(options).slice(123).build();
        assert_eq!(cluster.kind, SchedulerKind::Parallel(3));
        assert_eq!(cluster.slice, 123);
        let cluster = Cluster::builder()
            .vm_options(VmOptions::isolated())
            .scheduler(SchedulerKind::Parallel(2))
            .build();
        assert_eq!(cluster.kind, SchedulerKind::Parallel(2));
    }
}
