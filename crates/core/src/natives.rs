//! Native-method registry.
//!
//! Native methods are host (Rust) functions bound to `native` methods of
//! loaded classes. The Java System Library (`ijvm-jsl`) and the OSGi
//! framework (`ijvm-osgi`) register their intrinsics here before loading
//! code that uses them.

use crate::error::VmError;
use crate::ids::ThreadId;
use crate::value::{GcRef, Value};
use crate::vm::Vm;
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of a native call.
#[derive(Debug)]
pub enum NativeResult {
    /// Normal completion with an optional return value (must match the
    /// method descriptor: `Some` for value-returning methods).
    Return(Option<Value>),
    /// Throw a new exception of the named class with a message.
    Throw {
        /// Internal name of the exception class (must be a system class).
        class_name: &'static str,
        /// Detail message.
        message: String,
    },
    /// Throw an existing exception object.
    ThrowRef(GcRef),
    /// The native has parked the calling thread (set its state itself);
    /// when the thread resumes, the call completes with this value.
    BlockReturn(Option<Value>),
    /// The native has parked the calling thread (set its state itself)
    /// and the call's result is not known yet: whoever wakes the thread
    /// must first push the return value onto its top frame's operand
    /// stack (or install a pending exception). Used by the cross-unit
    /// service layer ([`crate::port`]), where the reply arrives later.
    BlockPending,
    /// Host-level failure; aborts the VM run.
    Fail(VmError),
}

/// Signature of a native implementation. Arguments include the receiver
/// (slot 0) for instance methods. `Send + Sync` because a whole [`Vm`]
/// is a `Send` execution unit under the parallel scheduler
/// ([`crate::sched`]): the registry migrates with the VM across worker
/// threads, so natives may only capture thread-safe state.
pub type NativeFn = Arc<dyn Fn(&mut Vm, ThreadId, &[Value]) -> NativeResult + Send + Sync>;

/// Registry keyed by `(class_name, method_name, descriptor)`.
#[derive(Default)]
pub struct NativeRegistry {
    fns: Vec<NativeFn>,
    index: HashMap<(String, String, String), u32>,
}

impl std::fmt::Debug for NativeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeRegistry")
            .field("bound", &self.fns.len())
            .finish()
    }
}

impl NativeRegistry {
    /// Creates an empty registry.
    pub fn new() -> NativeRegistry {
        NativeRegistry::default()
    }

    /// Registers (or replaces) a native implementation.
    pub fn register(&mut self, class_name: &str, method_name: &str, descriptor: &str, f: NativeFn) {
        let key = (
            class_name.to_owned(),
            method_name.to_owned(),
            descriptor.to_owned(),
        );
        match self.index.get(&key) {
            Some(&idx) => self.fns[idx as usize] = f,
            None => {
                let idx = self.fns.len() as u32;
                self.fns.push(f);
                self.index.insert(key, idx);
            }
        }
    }

    /// Looks up the binding index for a native method.
    pub fn lookup(&self, class_name: &str, method_name: &str, descriptor: &str) -> Option<u32> {
        self.index
            .get(&(
                class_name.to_owned(),
                method_name.to_owned(),
                descriptor.to_owned(),
            ))
            .copied()
    }

    /// Fetches a bound function by index (cheap `Arc` clone so the caller
    /// can invoke it while mutating the VM).
    pub fn get(&self, idx: u32) -> NativeFn {
        Arc::clone(&self.fns[idx as usize])
    }

    /// Number of registered natives.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// `true` when no natives are registered.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = NativeRegistry::new();
        assert!(reg.lookup("C", "m", "()V").is_none());
        reg.register(
            "C",
            "m",
            "()V",
            Arc::new(|_, _, _| NativeResult::Return(None)),
        );
        let idx = reg.lookup("C", "m", "()V").unwrap();
        assert_eq!(reg.len(), 1);
        // Re-registering replaces in place.
        reg.register(
            "C",
            "m",
            "()V",
            Arc::new(|_, _, _| NativeResult::Return(Some(Value::Int(1)))),
        );
        assert_eq!(reg.lookup("C", "m", "()V").unwrap(), idx);
        assert_eq!(reg.len(), 1);
    }
}
