//! Small typed identifiers used across the VM.

use std::fmt;

/// Identifies a loaded class inside one [`crate::vm::Vm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Identifies an isolate. `IsolateId(0)` is always `Isolate0`, the
/// privileged isolate the OSGi runtime executes in (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IsolateId(pub u16);

impl IsolateId {
    /// The privileged isolate.
    pub const ISOLATE0: IsolateId = IsolateId(0);

    /// `true` for `Isolate0`.
    pub fn is_privileged(self) -> bool {
        self.0 == 0
    }
}

/// Identifies a green thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u32);

/// Identifies a class loader. The bootstrap loader is `LoaderId(0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoaderId(pub u16);

impl LoaderId {
    /// The bootstrap loader holding the Java System Library.
    pub const BOOTSTRAP: LoaderId = LoaderId(0);
}

/// A method within a class: `(class, index into the class's method table)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodRef {
    /// Defining class.
    pub class: ClassId,
    /// Index into [`crate::class::RuntimeClass::methods`].
    pub index: u16,
}

impl fmt::Display for IsolateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "isolate{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread{}", self.0)
    }
}
