//! [`VmRc`]: unit-confined shared ownership with a non-atomic refcount.
//!
//! The hot call path clones a shared code-body handle on every frame
//! push and drops it on every pop. With `std::rc::Rc` that is a plain
//! increment; with `std::sync::Arc` it is two locked RMWs per call —
//! measured at 10–20% on the call micro-benchmarks — paid for a
//! synchronization capability the VM never uses: these handles are
//! **unit-confined**. Every clone of a given allocation lives inside
//! the one [`crate::vm::Vm`] that created it (the method/class tables,
//! executing frames, prepared-stream caches), and a `Vm` is accessed by
//! at most one thread at a time — it *moves* between scheduler workers
//! ([`crate::sched`]) but is never shared (`Vm` is deliberately
//! `!Sync`; see the marker in [`crate::vm::Vm`]).
//!
//! `VmRc` makes that trade explicit: `Rc`-speed refcounting, `Send`
//! because the confinement invariant means the refcount can only ever
//! be touched by the thread currently owning the VM.
//!
//! **Invariant (enforced by visibility, not just documented):** all
//! handles to a given allocation stay within the VM unit that created
//! it. The type deliberately does **not** implement `Clone` — new
//! handles are minted only through the `pub(crate)` `VmRc::share`,
//! so code outside this crate can never hold two handles to one
//! allocation (it only ever sees `&VmRc` through VM accessors, and
//! [`VmRc::new`] hands out a lone handle). With at most one external
//! handle per allocation, the non-atomic refcount cannot be raced from
//! safe code.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Deref;
use std::ptr::NonNull;

struct Inner<T: ?Sized> {
    count: Cell<usize>,
    value: T,
}

/// A unit-confined shared pointer: `Rc`-cost cloning, `Send` movement
/// as part of its owning VM (see the module docs for the invariant).
pub struct VmRc<T> {
    ptr: NonNull<Inner<T>>,
    _marker: PhantomData<Inner<T>>,
}

// SAFETY: the refcount is a plain `Cell`, so `VmRc` is only sound to
// move across threads because of the confinement invariant the module
// docs spell out — and that invariant is closed under the visible API:
// (1) inside the crate, every handle to an allocation lives in one
// `Vm`, which is owned by one thread at a time and is `!Sync`, so
// shares, derefs and drops are serialized by the unit's exclusive
// ownership; (2) outside the crate, `Clone` does not exist and
// `VmRc::share` is `pub(crate)`, so safe external code can never hold
// two handles to the same allocation (references obtained through VM
// accessors cannot cross threads either — `VmRc` and `Vm` are both
// `!Sync`), and a lone handle cannot race its own count. That
// serialization is also why `T: Send` suffices where `Arc` would
// demand `T: Send + Sync`: confinement rules out the cross-thread
// `&T` aliasing `Sync` exists to police.
unsafe impl<T: Send> Send for VmRc<T> {}

impl<T> VmRc<T> {
    /// Allocates a new confined shared value.
    pub fn new(value: T) -> VmRc<T> {
        let inner = Box::new(Inner {
            count: Cell::new(1),
            value,
        });
        VmRc {
            ptr: NonNull::from(Box::leak(inner)),
            _marker: PhantomData,
        }
    }

    #[inline]
    fn inner(&self) -> &Inner<T> {
        // SAFETY: the pointer is live as long as any handle exists.
        unsafe { self.ptr.as_ref() }
    }

    /// Number of live handles to this allocation (test/introspection
    /// hook, like `Rc::strong_count`).
    pub fn ref_count(this: &VmRc<T>) -> usize {
        this.inner().count.get()
    }

    /// `true` when both handles point at the same allocation.
    pub fn ptr_eq(a: &VmRc<T>, b: &VmRc<T>) -> bool {
        a.ptr == b.ptr
    }
}

impl<T> VmRc<T> {
    /// Mints another handle to this allocation. Crate-internal on
    /// purpose: every share stays inside the owning VM, which is what
    /// keeps the non-atomic count sound (see the module docs). The
    /// count is overflow-checked the way `Rc`'s is — wrapping it via
    /// `mem::forget` loops would otherwise free the allocation under
    /// live handles.
    #[inline]
    pub(crate) fn share(&self) -> VmRc<T> {
        let count = &self.inner().count;
        let n = count.get();
        if n == usize::MAX {
            std::process::abort();
        }
        count.set(n + 1);
        VmRc {
            ptr: self.ptr,
            _marker: PhantomData,
        }
    }
}

impl<T> Drop for VmRc<T> {
    #[inline]
    fn drop(&mut self) {
        let count = &self.inner().count;
        let n = count.get();
        if n == 1 {
            // SAFETY: last handle; nothing can observe the box after
            // this (see the confinement invariant).
            drop(unsafe { Box::from_raw(self.ptr.as_ptr()) });
        } else {
            count.set(n - 1);
        }
    }
}

impl<T> Deref for VmRc<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.inner().value
    }
}

impl<T: fmt::Debug> fmt::Debug for VmRc<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        T::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_drop_track_the_count() {
        let a = VmRc::new(41);
        assert_eq!(VmRc::ref_count(&a), 1);
        let b = a.share();
        assert_eq!(*b, 41);
        assert_eq!(VmRc::ref_count(&a), 2);
        assert!(VmRc::ptr_eq(&a, &b));
        drop(b);
        assert_eq!(VmRc::ref_count(&a), 1);
    }

    #[test]
    fn drops_the_value_exactly_once() {
        struct Probe<'a>(&'a Cell<u32>);
        impl Drop for Probe<'_> {
            fn drop(&mut self) {
                self.0.set(self.0.get() + 1);
            }
        }
        let drops = Cell::new(0);
        let a = VmRc::new(Probe(&drops));
        let b = a.share();
        let c = b.share();
        drop(a);
        drop(c);
        assert_eq!(drops.get(), 0);
        drop(b);
        assert_eq!(drops.get(), 1);
    }

    #[test]
    fn moves_between_threads_with_its_unit() {
        // A whole group of handles (a stand-in for a VM unit) moves to
        // another thread, is used and dropped there.
        let unit = (VmRc::new(String::from("code")), Vec::<VmRc<String>>::new());
        let (rc, mut frames) = unit;
        frames.push(rc.share());
        let out = std::thread::spawn(move || {
            frames.push(rc.share());
            format!("{}x{}", *rc, frames.len())
        })
        .join()
        .unwrap();
        assert_eq!(out, "codex2");
    }
}
