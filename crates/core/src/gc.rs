//! Mark-sweep collector with per-isolate memory accounting (paper §3.2).
//!
//! Besides collecting unreferenced objects, every collection recomputes
//! per-isolate memory usage with the paper's four-step algorithm:
//!
//! 1. reset each isolate's usage to zero;
//! 2. add each isolate's interned strings, static variables and
//!    `java.lang.Class` objects to its root set;
//! 3. scan thread stacks frame by frame: each frame's references are roots
//!    of the isolate the frame executes in (system-library frames execute
//!    in — and therefore charge — the calling isolate);
//! 4. trace; an object is charged to the **first** isolate that reaches it
//!    (isolates are traced in ascending id order, which makes the charge
//!    deterministic).

use crate::heap::ObjBody;
use crate::ids::IsolateId;
use crate::isolate::IsolateState;
use crate::value::{GcRef, Value};
use crate::vm::{IsolationMode, Vm};

impl Vm {
    /// Runs a full collection. `trigger` is the isolate whose allocation
    /// (or explicit `System.gc()`) caused it; it is charged one GC
    /// activation (the counter attack A4 is detected with).
    pub fn collect_garbage(&mut self, trigger: Option<IsolateId>) {
        self.gc_count += 1;
        self.allocated_since_gc = 0;
        let epoch = self.gc_count;
        self.trace_emit(crate::trace::EventKind::GcEpoch, trigger, None, epoch);
        let accounting = self.options.accounting;
        if accounting {
            if let Some(iso) = trigger {
                if let Some(i) = self.isolates.get_mut(iso.0 as usize) {
                    i.stats.gc_triggers += 1;
                }
            }
            // Step 1: reset per-isolate live usage.
            for i in &mut self.isolates {
                i.stats.reset_live();
            }
        }

        // Steps 2 & 3: gather roots per isolate.
        let niso = self.isolates.len().max(1);
        let mut roots: Vec<Vec<GcRef>> = vec![Vec::new(); niso];
        let clamp = |iso: IsolateId, n: usize| (iso.0 as usize).min(n - 1);

        // Host roots are framework-held: charge Isolate0.
        for r in self.host_roots.iter().flatten() {
            roots[0].push(*r);
        }

        // Per-isolate strings (step 2).
        for (idx, i) in self.isolates.iter().enumerate() {
            roots[idx].extend(i.strings.values().copied());
        }

        // Per-isolate mirrors: statics + Class objects (step 2).
        // In Shared mode every mirror lives at index 0.
        for class in &self.classes {
            for (mi, mirror) in class.mirrors.iter().enumerate() {
                let Some(m) = mirror else { continue };
                let idx = match self.options.isolation {
                    IsolationMode::Shared => 0,
                    IsolationMode::Isolated => mi.min(niso - 1),
                };
                roots[idx].push(m.class_object);
                for v in m.statics.iter() {
                    if let Value::Ref(r) = v {
                        roots[idx].push(*r);
                    }
                }
            }
        }

        // Thread stacks (step 3): every frame charges its own isolate.
        for t in &self.threads {
            let tiso = clamp(t.current_isolate, niso);
            for r in [t.pending_exception, t.uncaught, t.thread_obj]
                .into_iter()
                .flatten()
            {
                roots[tiso].push(r);
            }
            if let Some(Value::Ref(r)) = t.result {
                roots[clamp(t.creator_isolate, niso)].push(r);
            }
            for f in &t.frames {
                let fiso = clamp(f.isolate, niso);
                for v in f.locals.iter().chain(f.stack.iter()) {
                    if let Value::Ref(r) = v {
                        roots[fiso].push(*r);
                    }
                }
                if let Some(r) = f.sync_object {
                    roots[fiso].push(r);
                }
            }
        }

        // Step 4: trace, charging each object to the first isolate that
        // reaches it (ascending isolate order).
        let mut stack: Vec<GcRef> = Vec::new();
        for (idx, iso_roots) in roots.into_iter().enumerate() {
            let iso = IsolateId(idx as u16);
            stack.extend(iso_roots);
            while let Some(r) = stack.pop() {
                if !self.heap.is_live(r) {
                    continue;
                }
                let obj = self.heap.get_mut(r);
                if obj.mark {
                    continue;
                }
                obj.mark = true;
                obj.owner = iso;
                let size = obj.size_bytes() as u64;
                let is_conn = obj.is_connection;
                match &obj.body {
                    ObjBody::Fields(fields) => {
                        for v in fields.iter() {
                            if let Value::Ref(child) = v {
                                stack.push(*child);
                            }
                        }
                    }
                    ObjBody::ArrRef { data, .. } => {
                        for v in data.iter() {
                            if let Value::Ref(child) = v {
                                stack.push(*child);
                            }
                        }
                    }
                    _ => {}
                }
                if accounting {
                    if let Some(i) = self.isolates.get_mut(idx.min(niso - 1)) {
                        i.stats.live_bytes += size;
                        i.stats.live_objects += 1;
                        if is_conn {
                            i.stats.live_connections += 1;
                        }
                    }
                }
            }
        }

        // Sweep.
        for r in self.heap.handles() {
            if self.heap.get(r).mark {
                self.heap.get_mut(r).mark = false;
            } else {
                self.heap.free(r);
            }
        }

        // Terminating isolates become Dead once no object of their classes
        // survives (paper §3.3: "an isolate is only removed from memory
        // when there is no remaining object whose class is defined by the
        // isolate").
        self.update_dead_isolates();
    }

    fn update_dead_isolates(&mut self) {
        let terminating: Vec<IsolateId> = self
            .isolates
            .iter()
            .filter(|i| i.state == IsolateState::Terminating)
            .map(|i| i.id)
            .collect();
        if terminating.is_empty() {
            return;
        }
        for iso in terminating {
            let loader = self.isolates[iso.0 as usize].loader;
            let has_live_instance = self.heap.iter().any(|(_, obj)| {
                self.classes
                    .get(obj.class.0 as usize)
                    .map(|c| c.loader == loader)
                    .unwrap_or(false)
            });
            if !has_live_instance {
                self.isolates[iso.0 as usize].state = IsolateState::Dead;
            }
        }
    }

    /// Live bytes charged to `iso` by the most recent collection.
    pub fn live_bytes_of(&self, iso: IsolateId) -> u64 {
        self.isolates
            .get(iso.0 as usize)
            .map(|i| i.stats.live_bytes)
            .unwrap_or(0)
    }
}
