//! Per-isolate resource accounting (paper §3.2).
//!
//! I-JVM charges resources to the isolate whose code consumes them:
//! * CPU — by periodically sampling the isolate reference of the running
//!   thread (here: at every scheduler quantum boundary, with the quantum's
//!   instruction count as the sample weight);
//! * memory — objects are charged to their allocating isolate at `new`,
//!   and every garbage collection *recomputes* per-isolate live memory by
//!   charging each object to the first isolate that references it;
//! * threads — charged to the creating isolate;
//! * I/O bytes and connections — charged to the isolate performing the
//!   operation;
//! * GC activations — charged to the isolate that triggered the collection.

use crate::ids::IsolateId;
use std::collections::BTreeMap;

/// Resource counters for one isolate.
///
/// All counters are cumulative except `live_bytes`, `live_objects` and
/// `live_connections`, which are recomputed by each collection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// CPU charged by quantum sampling, in interpreted instructions.
    /// This is the *statistical* counter the paper's administrator reads.
    pub cpu_sampled: u64,
    /// CPU measured exactly at isolate-switch boundaries, in interpreted
    /// instructions. Not available in the paper's design (it would need
    /// per-call clock reads); kept here as ground truth for the §4.4
    /// imprecision experiments.
    pub cpu_exact: u64,
    /// Total bytes allocated by this isolate (cumulative).
    pub allocated_bytes: u64,
    /// Total objects allocated by this isolate (cumulative).
    pub allocated_objects: u64,
    /// Live bytes charged to this isolate by the last collection.
    pub live_bytes: u64,
    /// Live objects charged to this isolate by the last collection.
    pub live_objects: u64,
    /// Threads created by this isolate (cumulative).
    pub threads_created: u64,
    /// Threads created by this isolate currently alive.
    pub threads_live: u64,
    /// Threads created by this isolate currently sleeping or blocked,
    /// used to spot hanging-thread attacks (A7).
    pub threads_parked: u64,
    /// Collections triggered by this isolate (cumulative).
    pub gc_triggers: u64,
    /// Bytes read through connections (cumulative).
    pub io_read_bytes: u64,
    /// Bytes written through connections (cumulative).
    pub io_written_bytes: u64,
    /// Connections opened by this isolate (cumulative).
    pub connections_opened: u64,
    /// Live connections charged to this isolate by the last collection.
    pub live_connections: u64,
    /// Inter-isolate calls that *entered* this isolate (cumulative).
    /// Cheap to maintain (the migration path already writes the isolate
    /// reference) and useful for the Table 1 experiments.
    pub calls_in: u64,
}

impl ResourceStats {
    /// Resets the per-collection counters (GC accounting step 1, §3.2).
    pub fn reset_live(&mut self) {
        self.live_bytes = 0;
        self.live_objects = 0;
        self.live_connections = 0;
    }

    /// Flushes a quantum of exactly-counted CPU into this isolate.
    ///
    /// Every point where a thread leaves an isolate — inter-isolate call
    /// or return (including the quickened engine's fused call path),
    /// thread completion, stack unwinding past an isolate boundary — must
    /// charge through here *before* the isolate reference changes, so
    /// `cpu_exact` stays exact regardless of engine or call fast path.
    #[inline]
    pub fn charge_cpu(&mut self, insns: u64) {
        self.cpu_exact += insns;
    }
}

/// Cluster-level per-isolate CPU accounting, aggregated across execution
/// units (see [`crate::sched`]).
///
/// Worker threads never write here directly: they accumulate exact CPU
/// deltas into a private [`WorkerCpuBuffer`] while a unit runs, and drain
/// the buffer into this aggregate at every *migration point* — whenever a
/// unit is parked back onto a run queue (and so becomes stealable),
/// finishes, or is terminated. Every drained instruction passes through
/// [`ResourceStats::charge_cpu`], the same single exact flush point the
/// in-VM engines use, so the aggregate is bit-identical between the
/// deterministic and the parallel scheduler regardless of how slices
/// interleaved or which worker ran which slice.
#[derive(Debug, Default)]
pub struct ClusterAccounts {
    /// Per-`(unit, isolate)` counters. Only the CPU fields are driven by
    /// the scheduler; memory/thread/I-O counters stay on the per-unit
    /// [`ResourceStats`] inside each VM.
    per_isolate: BTreeMap<(crate::sched::UnitId, IsolateId), ResourceStats>,
}

impl ClusterAccounts {
    /// Charges `insns` exactly-counted instructions to `(unit, iso)`
    /// through [`ResourceStats::charge_cpu`].
    pub fn charge(&mut self, unit: crate::sched::UnitId, iso: IsolateId, insns: u64) {
        self.per_isolate
            .entry((unit, iso))
            .or_default()
            .charge_cpu(insns);
    }

    /// Exact CPU charged to one `(unit, isolate)` pair so far.
    pub fn cpu_exact(&self, unit: crate::sched::UnitId, iso: IsolateId) -> u64 {
        self.per_isolate
            .get(&(unit, iso))
            .map_or(0, |s| s.cpu_exact)
    }

    /// Total exact CPU charged across all units and isolates.
    pub fn total_cpu_exact(&self) -> u64 {
        self.per_isolate.values().map(|s| s.cpu_exact).sum()
    }

    /// All `(unit, isolate) → exact CPU` entries, in key order (so the
    /// administrator view is deterministic even after a parallel run).
    pub fn per_isolate_cpu(&self) -> Vec<((crate::sched::UnitId, IsolateId), u64)> {
        self.per_isolate
            .iter()
            .map(|(&k, s)| (k, s.cpu_exact))
            .collect()
    }
}

/// A scheduler worker's private CPU buffer (see [`ClusterAccounts`]).
///
/// Recording is lock-free (the buffer is owned by one worker); draining
/// takes the cluster aggregate's lock **once per migration point**,
/// covering every isolate the slice touched in a single acquisition
/// (an inter-isolate-heavy slice charges many isolates, one lock).
/// Because every requeue is a potential steal, a migration point ends
/// every slice — the buffer's job is coalescing within a boundary and
/// carrying the drained-before-stealable invariant, not skipping
/// boundaries: [`WorkerCpuBuffer::drain_into`] runs *before* a unit is
/// parked where another worker could steal it, so no instruction is
/// ever in flight across a migration.
#[derive(Debug, Default)]
pub struct WorkerCpuBuffer {
    pending: Vec<((crate::sched::UnitId, IsolateId), u64)>,
}

impl WorkerCpuBuffer {
    /// Adds `insns` for `(unit, iso)`, coalescing with an existing entry.
    pub fn record(&mut self, unit: crate::sched::UnitId, iso: IsolateId, insns: u64) {
        if insns == 0 {
            return;
        }
        for (key, n) in &mut self.pending {
            if *key == (unit, iso) {
                *n += insns;
                return;
            }
        }
        self.pending.push(((unit, iso), insns));
    }

    /// Instructions buffered but not yet drained.
    pub fn pending_insns(&self) -> u64 {
        self.pending.iter().map(|(_, n)| n).sum()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Flushes every buffered entry into `accounts` through
    /// [`ResourceStats::charge_cpu`], leaving the buffer empty.
    pub fn drain_into(&mut self, accounts: &mut ClusterAccounts) {
        for ((unit, iso), insns) in self.pending.drain(..) {
            accounts.charge(unit, iso, insns);
        }
    }
}

/// A labelled snapshot of one isolate's counters, for administrators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct IsolateSnapshot {
    /// The isolate.
    pub isolate: IsolateId,
    /// Isolate name (bundle symbolic name for OSGi bundles).
    pub name: String,
    /// Lifecycle state.
    pub state: crate::isolate::IsolateState,
    /// The counters.
    pub stats: ResourceStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_live_keeps_cumulative_counters() {
        let mut s = ResourceStats {
            cpu_sampled: 10,
            allocated_bytes: 100,
            live_bytes: 50,
            live_objects: 2,
            live_connections: 1,
            gc_triggers: 3,
            ..ResourceStats::default()
        };
        s.reset_live();
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.live_objects, 0);
        assert_eq!(s.live_connections, 0);
        assert_eq!(s.cpu_sampled, 10);
        assert_eq!(s.allocated_bytes, 100);
        assert_eq!(s.gc_triggers, 3);
    }

    #[test]
    fn worker_buffer_coalesces_and_drains_exactly() {
        use crate::sched::UnitId;
        let u0 = UnitId::new(0);
        let u1 = UnitId::new(1);
        let i0 = IsolateId(0);
        let i1 = IsolateId(1);
        let mut buf = WorkerCpuBuffer::default();
        buf.record(u0, i0, 100);
        buf.record(u0, i1, 7);
        buf.record(u0, i0, 23); // coalesces with the first entry
        buf.record(u1, i0, 5);
        buf.record(u1, i0, 0); // zero-length slices are dropped
        assert_eq!(buf.pending_insns(), 135);

        let mut accounts = ClusterAccounts::default();
        buf.drain_into(&mut accounts);
        assert!(buf.is_empty());
        assert_eq!(accounts.cpu_exact(u0, i0), 123);
        assert_eq!(accounts.cpu_exact(u0, i1), 7);
        assert_eq!(accounts.cpu_exact(u1, i0), 5);
        assert_eq!(accounts.total_cpu_exact(), 135);

        // Draining again is a no-op: nothing is charged twice.
        buf.drain_into(&mut accounts);
        assert_eq!(accounts.total_cpu_exact(), 135);
    }
}
