//! Per-isolate resource accounting (paper §3.2).
//!
//! I-JVM charges resources to the isolate whose code consumes them:
//! * CPU — by periodically sampling the isolate reference of the running
//!   thread (here: at every scheduler quantum boundary, with the quantum's
//!   instruction count as the sample weight);
//! * memory — objects are charged to their allocating isolate at `new`,
//!   and every garbage collection *recomputes* per-isolate live memory by
//!   charging each object to the first isolate that references it;
//! * threads — charged to the creating isolate;
//! * I/O bytes and connections — charged to the isolate performing the
//!   operation;
//! * GC activations — charged to the isolate that triggered the collection.

use crate::ids::IsolateId;

/// Resource counters for one isolate.
///
/// All counters are cumulative except `live_bytes`, `live_objects` and
/// `live_connections`, which are recomputed by each collection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// CPU charged by quantum sampling, in interpreted instructions.
    /// This is the *statistical* counter the paper's administrator reads.
    pub cpu_sampled: u64,
    /// CPU measured exactly at isolate-switch boundaries, in interpreted
    /// instructions. Not available in the paper's design (it would need
    /// per-call clock reads); kept here as ground truth for the §4.4
    /// imprecision experiments.
    pub cpu_exact: u64,
    /// Total bytes allocated by this isolate (cumulative).
    pub allocated_bytes: u64,
    /// Total objects allocated by this isolate (cumulative).
    pub allocated_objects: u64,
    /// Live bytes charged to this isolate by the last collection.
    pub live_bytes: u64,
    /// Live objects charged to this isolate by the last collection.
    pub live_objects: u64,
    /// Threads created by this isolate (cumulative).
    pub threads_created: u64,
    /// Threads created by this isolate currently alive.
    pub threads_live: u64,
    /// Threads created by this isolate currently sleeping or blocked,
    /// used to spot hanging-thread attacks (A7).
    pub threads_parked: u64,
    /// Collections triggered by this isolate (cumulative).
    pub gc_triggers: u64,
    /// Bytes read through connections (cumulative).
    pub io_read_bytes: u64,
    /// Bytes written through connections (cumulative).
    pub io_written_bytes: u64,
    /// Connections opened by this isolate (cumulative).
    pub connections_opened: u64,
    /// Live connections charged to this isolate by the last collection.
    pub live_connections: u64,
    /// Inter-isolate calls that *entered* this isolate (cumulative).
    /// Cheap to maintain (the migration path already writes the isolate
    /// reference) and useful for the Table 1 experiments.
    pub calls_in: u64,
}

impl ResourceStats {
    /// Resets the per-collection counters (GC accounting step 1, §3.2).
    pub fn reset_live(&mut self) {
        self.live_bytes = 0;
        self.live_objects = 0;
        self.live_connections = 0;
    }

    /// Flushes a quantum of exactly-counted CPU into this isolate.
    ///
    /// Every point where a thread leaves an isolate — inter-isolate call
    /// or return (including the quickened engine's fused call path),
    /// thread completion, stack unwinding past an isolate boundary — must
    /// charge through here *before* the isolate reference changes, so
    /// `cpu_exact` stays exact regardless of engine or call fast path.
    #[inline]
    pub fn charge_cpu(&mut self, insns: u64) {
        self.cpu_exact += insns;
    }
}

/// A labelled snapshot of one isolate's counters, for administrators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolateSnapshot {
    /// The isolate.
    pub isolate: IsolateId,
    /// Isolate name (bundle symbolic name for OSGi bundles).
    pub name: String,
    /// Lifecycle state.
    pub state: crate::isolate::IsolateState,
    /// The counters.
    pub stats: ResourceStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_live_keeps_cumulative_counters() {
        let mut s = ResourceStats {
            cpu_sampled: 10,
            allocated_bytes: 100,
            live_bytes: 50,
            live_objects: 2,
            live_connections: 1,
            gc_triggers: 3,
            ..ResourceStats::default()
        };
        s.reset_live();
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.live_objects, 0);
        assert_eq!(s.live_connections, 0);
        assert_eq!(s.cpu_sampled, 10);
        assert_eq!(s.allocated_bytes, 100);
        assert_eq!(s.gc_triggers, 3);
    }
}
