//! # ijvm-core — the I-JVM virtual machine
//!
//! A from-scratch Java-style virtual machine implementing the design of
//! *"I-JVM: a Java Virtual Machine for Component Isolation in OSGi"*
//! (Geoffray, Thomas, Muller, Parrend, Frénot, Folliot — DSN 2009):
//!
//! * **Lightweight isolates** — one per class loader; per-isolate *task
//!   class mirrors* hold static variables, interned strings and
//!   `java.lang.Class` objects, so bundles cannot corrupt or lock each
//!   other's shared state.
//! * **Thread migration** — an inter-isolate call is a direct method call
//!   that updates the thread's isolate reference; objects are shared by
//!   passing references, with no RPC or copying.
//! * **Resource accounting** — per-isolate CPU (sampled), memory
//!   (recomputed by the GC, charging each object to the first isolate that
//!   references it), threads, I/O, connections and GC activations.
//! * **Isolate termination** — stack patching raises an uncatchable
//!   `StoppedIsolateException` in code returning to a terminated isolate,
//!   and every method of the isolate is poisoned.
//! * **Cluster scheduling** ([`sched`]) — beyond the paper: whole VMs
//!   are `Send` execution units scheduled across OS workers with
//!   per-worker run queues and work stealing, keeping per-isolate CPU
//!   accounting exact at every migration point and delivering isolate
//!   termination cross-worker.
//!
//! The same VM runs in [`vm::IsolationMode::Shared`] as the *baseline*
//! (the unmodified "LadyVM"/"Sun JVM" whose vulnerabilities the paper
//! demonstrates) and in [`vm::IsolationMode::Isolated`] as I-JVM; every
//! overhead the paper measures is the delta between the two modes on
//! identical bytecode.
//!
//! ```
//! use ijvm_core::prelude::*;
//! use ijvm_classfile::{AccessFlags, ClassBuilder, Opcode};
//!
//! let mut vm = Vm::new(VmOptions::isolated());
//! ijvm_core::bootstrap::install(&mut vm).unwrap();
//! let iso = vm.create_isolate("demo");
//! let loader = vm.loader_of(iso).unwrap();
//!
//! let mut cb = ClassBuilder::new("Demo", "java/lang/Object", AccessFlags::PUBLIC);
//! let mut m = cb.method("addOne", "(I)I", AccessFlags::PUBLIC | AccessFlags::STATIC);
//! m.iload(0);
//! m.const_int(1);
//! m.op(Opcode::Iadd);
//! m.op(Opcode::Ireturn);
//! m.done().unwrap();
//! let bytes = ijvm_classfile::writer::write_class(&cb.build().unwrap()).unwrap();
//!
//! vm.add_class_bytes(loader, "Demo", bytes);
//! let class = vm.load_class(loader, "Demo").unwrap();
//! let out = vm.call_static(class, "addOne", "(I)I", vec![Value::Int(41)]).unwrap();
//! assert_eq!(out, Some(Value::Int(42)));
//! ```

pub mod accounting;
pub mod bootstrap;
pub mod checkpoint;
pub mod class;
pub mod engine;
pub mod error;
pub mod gc;
pub mod heap;
pub mod ids;
pub mod interp;
pub mod isolate;
pub(crate) mod mailbox;
pub mod monitor;
pub mod natives;
pub mod port;
pub mod sched;
pub mod terminate;
pub mod thread;
pub mod trace;
pub mod value;
pub mod vm;
pub mod vmrc;
pub mod wire;

// Concurrency models over the crate-private cluster protocols; see the
// module docs for the `--cfg loom` invocation and the offline-stub
// semantics.
#[cfg(all(test, loom))]
mod loom_models;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use crate::accounting::{IsolateSnapshot, ResourceStats};
    pub use crate::checkpoint::{CheckpointError, UnitImage};
    pub use crate::engine::EngineKind;
    pub use crate::error::{Result as VmResult, VmError};
    pub use crate::ids::{ClassId, IsolateId, LoaderId, MethodRef, ThreadId};
    pub use crate::isolate::IsolateState;
    pub use crate::natives::{NativeFn, NativeResult};
    pub use crate::port::{ExportError, HubStats, MailboxQuota, MailboxStat, ServiceStat};
    pub use crate::sched::{
        CheckpointTicket, Cluster, ClusterBuilder, ClusterCtl, ClusterOutcome, SchedulerKind,
        UnitHandle, UnitId, UnitOutcome,
    };
    pub use crate::trace::{
        ClusterMetrics, EventKind, LatencyHistogram, MethodHotness, TraceConfig, TraceEvent,
        TraceRing, TraceSink, VmMetrics,
    };
    pub use crate::value::{GcRef, Value};
    pub use crate::vm::{IsolationMode, RunOutcome, Vm, VmOptions};
}

pub use crate::error::{Result, VmError};
pub use crate::ids::{ClassId, IsolateId, LoaderId, MethodRef, ThreadId};
pub use crate::value::{GcRef, Value};
pub use crate::vm::{IsolationMode, RunOutcome, Vm, VmOptions};
