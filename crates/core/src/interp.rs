//! The bytecode interpreter.
//!
//! `step_thread` runs one green thread for up to a quantum of instructions.
//! Inter-isolate method calls migrate the thread (paper §3.1): the thread's
//! isolate reference is set to the callee's isolate on entry and restored
//! on return — there is no RPC, no copying, and shared objects are passed
//! by reference.

use crate::class::{ClassTarget, InitState, RtCp};
use crate::heap::ObjBody;
use crate::ids::{ClassId, IsolateId, MethodRef, ThreadId};
use crate::isolate::IsolateState;
use crate::monitor::{monitor_enter, monitor_exit, EnterResult};
use crate::natives::NativeResult;
use crate::thread::ThreadState;
use crate::value::{GcRef, Value};
use crate::vm::{Thrown, Vm};
use ijvm_classfile::descriptor::BaseType;
use ijvm_classfile::{ConstEntry, Opcode};

/// Name of the exception raised into code returning to a terminated
/// isolate (paper §3.3).
pub const STOPPED_ISOLATE_EXCEPTION: &str = "org/ijvm/StoppedIsolateException";

/// Executes thread `tid` for at most `budget` instructions, returning how
/// many were consumed. Dispatches to the engine selected by
/// [`crate::vm::VmOptions::engine`].
pub(crate) fn step_thread(vm: &mut Vm, tid: ThreadId, budget: u32) -> u32 {
    match vm.options.engine {
        crate::engine::EngineKind::Raw => step_thread_raw(vm, tid, budget),
        crate::engine::EngineKind::Quickened => {
            crate::engine::quicken::step_thread_quickened(vm, tid, budget)
        }
        crate::engine::EngineKind::Threaded => {
            crate::engine::handlers::step_thread_threaded(vm, tid, budget)
        }
    }
}

/// What [`frame_prologue`] decided about the thread's top frame.
pub(crate) enum Prologue {
    /// Execute the frame at the given index.
    Run(usize),
    /// An exception was delivered (or state changed); re-run the prologue.
    Redeliver,
    /// The thread cannot make progress this step.
    Yield,
}

/// Common per-resumption bookkeeping shared by both engines: delivers
/// injected exceptions, finishes empty threads, and takes the lazy
/// monitor of thread-entry `synchronized` methods.
pub(crate) fn frame_prologue(vm: &mut Vm, tid: ThreadId) -> Prologue {
    let t = tid.0 as usize;
    // Deliver externally injected exceptions (termination, interrupt).
    if vm.threads[t].pending_exception.is_some() {
        let ex = vm.threads[t].pending_exception.take().unwrap();
        if !unwind(vm, tid, ex) {
            return Prologue::Yield;
        }
        return Prologue::Redeliver;
    }
    if vm.threads[t].frames.is_empty() {
        finish_thread(vm, tid, None);
        return Prologue::Yield;
    }
    if !vm.threads[t].is_runnable() {
        return Prologue::Yield;
    }

    let fidx = vm.threads[t].frames.len() - 1;
    // Thread-entry `synchronized` methods take their monitor on first
    // step (invoked frames acquire it in do_invoke instead).
    if vm.threads[t].frames[fidx].needs_sync_enter {
        let class = vm.threads[t].frames[fidx].class;
        let cur_iso = vm.threads[t].current_isolate;
        let is_static = vm.classes[class.0 as usize].methods
            [vm.threads[t].frames[fidx].method.index as usize]
            .is_static();
        let lock = if is_static {
            vm.ensure_mirror(class, cur_iso);
            let mi = vm.mirror_index(cur_iso);
            vm.classes[class.0 as usize].mirrors[mi]
                .as_ref()
                .expect("mirror just ensured")
                .class_object
        } else {
            match vm.threads[t].frames[fidx].locals[0] {
                Value::Ref(r) => r,
                _ => {
                    // Null receiver on a synchronized entry: NPE.
                    let ex = materialize(
                        vm,
                        tid,
                        Thrown::ByName {
                            class_name: "java/lang/NullPointerException",
                            message: String::new(),
                        },
                    );
                    vm.threads[t].frames[fidx].needs_sync_enter = false;
                    if unwind(vm, tid, ex) {
                        return Prologue::Redeliver;
                    }
                    return Prologue::Yield;
                }
            }
        };
        match monitor_enter(vm, tid, lock) {
            EnterResult::Acquired => {
                let f = &mut vm.threads[t].frames[fidx];
                f.sync_object = Some(lock);
                f.needs_sync_enter = false;
            }
            EnterResult::Blocked => return Prologue::Yield,
        }
    }
    Prologue::Run(fidx)
}

/// The raw engine: decodes classfile bytes instruction by instruction.
#[allow(unused_assignments)] // operand readers advance pc even when a branch overwrites it
pub(crate) fn step_thread_raw(vm: &mut Vm, tid: ThreadId, budget: u32) -> u32 {
    let t = tid.0 as usize;
    let mut consumed: u32 = 0;

    'outer: while consumed < budget {
        let fidx = match frame_prologue(vm, tid) {
            Prologue::Run(fidx) => fidx,
            Prologue::Redeliver => continue 'outer,
            Prologue::Yield => return consumed,
        };
        let code = vm.threads[t].frames[fidx].code.share();
        let bytes = &code.bytes;
        let mut pc = vm.threads[t].frames[fidx].pc as usize;
        let mut local_insns: u32 = 0;
        // Start pc of the instruction being executed (used by exception
        // delivery); declared before the macros below so they can see it.
        #[allow(unused_assignments)]
        let mut insn_pc: usize = pc;

        macro_rules! fr {
            () => {
                vm.threads[t].frames[fidx]
            };
        }
        macro_rules! push {
            ($v:expr) => {
                fr!().stack.push($v)
            };
        }
        macro_rules! pop {
            () => {
                fr!().stack.pop().expect("operand stack underflow")
            };
        }
        macro_rules! flush {
            () => {{
                fr!().pc = pc as u32;
                vm.threads[t].insns_since_switch += local_insns as u64;
                consumed += local_insns;
                #[allow(unused_assignments)]
                {
                    local_insns = 0;
                }
            }};
        }
        // Raise a Java exception from the current instruction.
        macro_rules! throw {
            ($thrown:expr) => {{
                flush!();
                // Handler ranges are matched against the faulting
                // instruction's start pc.
                fr!().pc = insn_pc as u32;
                let ex = materialize(vm, tid, $thrown);
                if unwind(vm, tid, ex) {
                    continue 'outer;
                }
                return consumed;
            }};
        }
        macro_rules! check {
            ($res:expr) => {
                match $res {
                    Ok(v) => v,
                    Err(thrown) => throw!(thrown),
                }
            };
        }
        // Integer operand readers.
        macro_rules! op_u8 {
            () => {{
                let v = bytes[pc];
                pc += 1;
                v
            }};
        }
        macro_rules! op_u16 {
            () => {{
                let v = ((bytes[pc] as u16) << 8) | bytes[pc + 1] as u16;
                pc += 2;
                v
            }};
        }
        macro_rules! op_i32 {
            () => {{
                let v =
                    i32::from_be_bytes([bytes[pc], bytes[pc + 1], bytes[pc + 2], bytes[pc + 3]]);
                pc += 4;
                v
            }};
        }
        // Arithmetic helpers.
        macro_rules! binop_i {
            ($m:ident) => {{
                let b = pop!().as_int();
                let a = pop!().as_int();
                push!(Value::Int(a.$m(b)));
            }};
            (op $op:tt) => {{
                let b = pop!().as_int();
                let a = pop!().as_int();
                push!(Value::Int(a $op b));
            }};
        }
        macro_rules! binop_l {
            ($m:ident) => {{
                let b = pop!().as_long();
                let a = pop!().as_long();
                push!(Value::Long(a.$m(b)));
            }};
            (op $op:tt) => {{
                let b = pop!().as_long();
                let a = pop!().as_long();
                push!(Value::Long(a $op b));
            }};
        }
        macro_rules! binop_f {
            ($op:tt) => {{
                let b = pop!().as_float();
                let a = pop!().as_float();
                push!(Value::Float(a $op b));
            }};
        }
        macro_rules! binop_d {
            ($op:tt) => {{
                let b = pop!().as_double();
                let a = pop!().as_double();
                push!(Value::Double(a $op b));
            }};
        }
        macro_rules! conv {
            ($get:ident, $to:ident, $ty:ty) => {{
                let v = pop!().$get();
                push!(Value::$to(v as $ty));
            }};
        }

        #[allow(unused_labels)]
        'inner: loop {
            if consumed + local_insns >= budget {
                flush!();
                return consumed;
            }
            insn_pc = pc;
            local_insns += 1;
            let op = match Opcode::from_byte(bytes[pc]) {
                Ok(op) => op,
                Err(_) => {
                    pc += 1;
                    throw!(Thrown::ByName {
                        class_name: "java/lang/VerifyError",
                        message: format!("bad opcode {:#04x}", bytes[insn_pc]),
                    });
                }
            };
            pc += 1;
            use Opcode as O;
            match op {
                O::Nop => {}
                // ---- constants ----
                O::AconstNull => push!(Value::Null),
                O::IconstM1 => push!(Value::Int(-1)),
                O::Iconst0 => push!(Value::Int(0)),
                O::Iconst1 => push!(Value::Int(1)),
                O::Iconst2 => push!(Value::Int(2)),
                O::Iconst3 => push!(Value::Int(3)),
                O::Iconst4 => push!(Value::Int(4)),
                O::Iconst5 => push!(Value::Int(5)),
                O::Lconst0 => push!(Value::Long(0)),
                O::Lconst1 => push!(Value::Long(1)),
                O::Fconst0 => push!(Value::Float(0.0)),
                O::Fconst1 => push!(Value::Float(1.0)),
                O::Fconst2 => push!(Value::Float(2.0)),
                O::Dconst0 => push!(Value::Double(0.0)),
                O::Dconst1 => push!(Value::Double(1.0)),
                O::Bipush => {
                    let v = op_u8!() as i8 as i32;
                    push!(Value::Int(v));
                }
                O::Sipush => {
                    let v = op_u16!() as i16 as i32;
                    push!(Value::Int(v));
                }
                O::Ldc | O::LdcW | O::Ldc2W => {
                    let idx = if op == O::Ldc {
                        op_u8!() as u16
                    } else {
                        op_u16!()
                    };
                    flush!();
                    let class_id = vm.threads[t].frames[fidx].class;
                    let v = check!(load_constant(vm, tid, class_id, idx));
                    push!(v);
                }
                // ---- locals ----
                O::Iload | O::Lload | O::Fload | O::Dload | O::Aload => {
                    let n = op_u8!() as usize;
                    let v = fr!().locals[n];
                    push!(v);
                }
                O::Iload0 | O::Iload1 | O::Iload2 | O::Iload3 => {
                    let n = (op as u8 - O::Iload0 as u8) as usize;
                    let v = fr!().locals[n];
                    push!(v);
                }
                O::Lload0 | O::Lload1 | O::Lload2 | O::Lload3 => {
                    let n = (op as u8 - O::Lload0 as u8) as usize;
                    let v = fr!().locals[n];
                    push!(v);
                }
                O::Fload0 | O::Fload1 | O::Fload2 | O::Fload3 => {
                    let n = (op as u8 - O::Fload0 as u8) as usize;
                    let v = fr!().locals[n];
                    push!(v);
                }
                O::Dload0 | O::Dload1 | O::Dload2 | O::Dload3 => {
                    let n = (op as u8 - O::Dload0 as u8) as usize;
                    let v = fr!().locals[n];
                    push!(v);
                }
                O::Aload0 | O::Aload1 | O::Aload2 | O::Aload3 => {
                    let n = (op as u8 - O::Aload0 as u8) as usize;
                    let v = fr!().locals[n];
                    push!(v);
                }
                O::Istore | O::Lstore | O::Fstore | O::Dstore | O::Astore => {
                    let n = op_u8!() as usize;
                    let v = pop!();
                    fr!().locals[n] = v;
                }
                O::Istore0 | O::Istore1 | O::Istore2 | O::Istore3 => {
                    let n = (op as u8 - O::Istore0 as u8) as usize;
                    let v = pop!();
                    fr!().locals[n] = v;
                }
                O::Lstore0 | O::Lstore1 | O::Lstore2 | O::Lstore3 => {
                    let n = (op as u8 - O::Lstore0 as u8) as usize;
                    let v = pop!();
                    fr!().locals[n] = v;
                }
                O::Fstore0 | O::Fstore1 | O::Fstore2 | O::Fstore3 => {
                    let n = (op as u8 - O::Fstore0 as u8) as usize;
                    let v = pop!();
                    fr!().locals[n] = v;
                }
                O::Dstore0 | O::Dstore1 | O::Dstore2 | O::Dstore3 => {
                    let n = (op as u8 - O::Dstore0 as u8) as usize;
                    let v = pop!();
                    fr!().locals[n] = v;
                }
                O::Astore0 | O::Astore1 | O::Astore2 | O::Astore3 => {
                    let n = (op as u8 - O::Astore0 as u8) as usize;
                    let v = pop!();
                    fr!().locals[n] = v;
                }
                O::Iinc => {
                    let n = op_u8!() as usize;
                    let d = op_u8!() as i8 as i32;
                    let f = &mut fr!();
                    f.locals[n] = Value::Int(f.locals[n].as_int().wrapping_add(d));
                }
                // ---- array loads/stores ----
                O::Iaload
                | O::Laload
                | O::Faload
                | O::Daload
                | O::Aaload
                | O::Baload
                | O::Caload
                | O::Saload => {
                    let idx = pop!().as_int();
                    let arr = pop!();
                    let Some(arr) = arr.as_ref() else {
                        throw!(npe())
                    };
                    let obj = vm.heap.get(arr);
                    let len = obj.body.array_len().unwrap_or(0);
                    if idx < 0 || idx as usize >= len {
                        throw!(aioobe(idx, len));
                    }
                    let i = idx as usize;
                    let v = match &obj.body {
                        ObjBody::ArrInt(a) => Value::Int(a[i]),
                        ObjBody::ArrLong(a) => Value::Long(a[i]),
                        ObjBody::ArrFloat(a) => Value::Float(a[i]),
                        ObjBody::ArrDouble(a) => Value::Double(a[i]),
                        ObjBody::ArrRef { data, .. } => data[i],
                        ObjBody::ArrByte(a) => Value::Int(a[i] as i32),
                        ObjBody::ArrChar(a) => Value::Int(a[i] as i32),
                        ObjBody::ArrShort(a) => Value::Int(a[i] as i32),
                        ObjBody::ArrBool(a) => Value::Int(a[i] as i32),
                        ObjBody::Fields(_) => {
                            throw!(internal_err("array load on non-array"))
                        }
                    };
                    push!(v);
                }
                O::Iastore
                | O::Lastore
                | O::Fastore
                | O::Dastore
                | O::Aastore
                | O::Bastore
                | O::Castore
                | O::Sastore => {
                    let v = pop!();
                    let idx = pop!().as_int();
                    let arr = pop!();
                    let Some(arr) = arr.as_ref() else {
                        throw!(npe())
                    };
                    let obj = vm.heap.get_mut(arr);
                    let len = obj.body.array_len().unwrap_or(0);
                    if idx < 0 || idx as usize >= len {
                        throw!(aioobe(idx, len));
                    }
                    let i = idx as usize;
                    match &mut obj.body {
                        ObjBody::ArrInt(a) => a[i] = v.as_int(),
                        ObjBody::ArrLong(a) => a[i] = v.as_long(),
                        ObjBody::ArrFloat(a) => a[i] = v.as_float(),
                        ObjBody::ArrDouble(a) => a[i] = v.as_double(),
                        ObjBody::ArrRef { data, .. } => data[i] = v,
                        ObjBody::ArrByte(a) => a[i] = v.as_int() as i8,
                        ObjBody::ArrChar(a) => a[i] = v.as_int() as u16,
                        ObjBody::ArrShort(a) => a[i] = v.as_int() as i16,
                        ObjBody::ArrBool(a) => a[i] = (v.as_int() != 0) as u8,
                        ObjBody::Fields(_) => {
                            throw!(internal_err("array store on non-array"))
                        }
                    }
                }
                // ---- stack manipulation ----
                O::Pop => {
                    pop!();
                }
                O::Pop2 => {
                    pop!();
                    pop!();
                }
                O::Dup => {
                    let v = *fr!().stack.last().expect("dup on empty stack");
                    push!(v);
                }
                O::DupX1 => {
                    let a = pop!();
                    let b = pop!();
                    push!(a);
                    push!(b);
                    push!(a);
                }
                O::DupX2 => {
                    let a = pop!();
                    let b = pop!();
                    let c = pop!();
                    push!(a);
                    push!(c);
                    push!(b);
                    push!(a);
                }
                O::Dup2 => {
                    let a = pop!();
                    let b = pop!();
                    push!(b);
                    push!(a);
                    push!(b);
                    push!(a);
                }
                O::Dup2X1 => {
                    let a = pop!();
                    let b = pop!();
                    let c = pop!();
                    push!(b);
                    push!(a);
                    push!(c);
                    push!(b);
                    push!(a);
                }
                O::Dup2X2 => {
                    let a = pop!();
                    let b = pop!();
                    let c = pop!();
                    let d = pop!();
                    push!(b);
                    push!(a);
                    push!(d);
                    push!(c);
                    push!(b);
                    push!(a);
                }
                O::Swap => {
                    let a = pop!();
                    let b = pop!();
                    push!(a);
                    push!(b);
                }
                // ---- arithmetic ----
                O::Iadd => binop_i!(wrapping_add),
                O::Isub => binop_i!(wrapping_sub),
                O::Imul => binop_i!(wrapping_mul),
                O::Idiv => {
                    let b = pop!().as_int();
                    let a = pop!().as_int();
                    if b == 0 {
                        throw!(arith());
                    }
                    push!(Value::Int(a.wrapping_div(b)));
                }
                O::Irem => {
                    let b = pop!().as_int();
                    let a = pop!().as_int();
                    if b == 0 {
                        throw!(arith());
                    }
                    push!(Value::Int(a.wrapping_rem(b)));
                }
                O::Ladd => binop_l!(wrapping_add),
                O::Lsub => binop_l!(wrapping_sub),
                O::Lmul => binop_l!(wrapping_mul),
                O::Ldiv => {
                    let b = pop!().as_long();
                    let a = pop!().as_long();
                    if b == 0 {
                        throw!(arith());
                    }
                    push!(Value::Long(a.wrapping_div(b)));
                }
                O::Lrem => {
                    let b = pop!().as_long();
                    let a = pop!().as_long();
                    if b == 0 {
                        throw!(arith());
                    }
                    push!(Value::Long(a.wrapping_rem(b)));
                }
                O::Fadd => binop_f!(+),
                O::Fsub => binop_f!(-),
                O::Fmul => binop_f!(*),
                O::Fdiv => binop_f!(/),
                O::Frem => {
                    let b = pop!().as_float();
                    let a = pop!().as_float();
                    push!(Value::Float(a % b));
                }
                O::Dadd => binop_d!(+),
                O::Dsub => binop_d!(-),
                O::Dmul => binop_d!(*),
                O::Ddiv => binop_d!(/),
                O::Drem => {
                    let b = pop!().as_double();
                    let a = pop!().as_double();
                    push!(Value::Double(a % b));
                }
                O::Ineg => {
                    let a = pop!().as_int();
                    push!(Value::Int(a.wrapping_neg()));
                }
                O::Lneg => {
                    let a = pop!().as_long();
                    push!(Value::Long(a.wrapping_neg()));
                }
                O::Fneg => {
                    let a = pop!().as_float();
                    push!(Value::Float(-a));
                }
                O::Dneg => {
                    let a = pop!().as_double();
                    push!(Value::Double(-a));
                }
                O::Ishl => {
                    let b = pop!().as_int();
                    let a = pop!().as_int();
                    push!(Value::Int(a.wrapping_shl(b as u32 & 31)));
                }
                O::Ishr => {
                    let b = pop!().as_int();
                    let a = pop!().as_int();
                    push!(Value::Int(a.wrapping_shr(b as u32 & 31)));
                }
                O::Iushr => {
                    let b = pop!().as_int();
                    let a = pop!().as_int();
                    push!(Value::Int(((a as u32).wrapping_shr(b as u32 & 31)) as i32));
                }
                O::Lshl => {
                    let b = pop!().as_int();
                    let a = pop!().as_long();
                    push!(Value::Long(a.wrapping_shl(b as u32 & 63)));
                }
                O::Lshr => {
                    let b = pop!().as_int();
                    let a = pop!().as_long();
                    push!(Value::Long(a.wrapping_shr(b as u32 & 63)));
                }
                O::Lushr => {
                    let b = pop!().as_int();
                    let a = pop!().as_long();
                    push!(Value::Long(((a as u64).wrapping_shr(b as u32 & 63)) as i64));
                }
                O::Iand => binop_i!(op &),
                O::Ior => binop_i!(op |),
                O::Ixor => binop_i!(op ^),
                O::Land => binop_l!(op &),
                O::Lor => binop_l!(op |),
                O::Lxor => binop_l!(op ^),
                // ---- conversions ----
                O::I2l => conv!(as_int, Long, i64),
                O::I2f => conv!(as_int, Float, f32),
                O::I2d => conv!(as_int, Double, f64),
                O::L2i => conv!(as_long, Int, i32),
                O::L2f => conv!(as_long, Float, f32),
                O::L2d => conv!(as_long, Double, f64),
                O::F2i => {
                    let v = pop!().as_float();
                    push!(Value::Int(f2i(v)));
                }
                O::F2l => {
                    let v = pop!().as_float();
                    push!(Value::Long(f2l(v as f64)));
                }
                O::F2d => conv!(as_float, Double, f64),
                O::D2i => {
                    let v = pop!().as_double();
                    push!(Value::Int(f2i(v as f32)));
                }
                O::D2l => {
                    let v = pop!().as_double();
                    push!(Value::Long(f2l(v)));
                }
                O::D2f => conv!(as_double, Float, f32),
                O::I2b => {
                    let v = pop!().as_int();
                    push!(Value::Int(v as i8 as i32));
                }
                O::I2c => {
                    let v = pop!().as_int();
                    push!(Value::Int(v as u16 as i32));
                }
                O::I2s => {
                    let v = pop!().as_int();
                    push!(Value::Int(v as i16 as i32));
                }
                // ---- comparisons ----
                O::Lcmp => {
                    let b = pop!().as_long();
                    let a = pop!().as_long();
                    push!(Value::Int(cmp3(a, b)));
                }
                O::Fcmpl | O::Fcmpg => {
                    let b = pop!().as_float();
                    let a = pop!().as_float();
                    push!(Value::Int(fcmp(a as f64, b as f64, op == O::Fcmpg)));
                }
                O::Dcmpl | O::Dcmpg => {
                    let b = pop!().as_double();
                    let a = pop!().as_double();
                    push!(Value::Int(fcmp(a, b, op == O::Dcmpg)));
                }
                // ---- branches ----
                O::Ifeq | O::Ifne | O::Iflt | O::Ifge | O::Ifgt | O::Ifle => {
                    let off = op_u16!() as i16 as i64;
                    let v = pop!().as_int();
                    let take = match op {
                        O::Ifeq => v == 0,
                        O::Ifne => v != 0,
                        O::Iflt => v < 0,
                        O::Ifge => v >= 0,
                        O::Ifgt => v > 0,
                        _ => v <= 0,
                    };
                    if take {
                        pc = (insn_pc as i64 + off) as usize;
                    }
                }
                O::IfIcmpeq
                | O::IfIcmpne
                | O::IfIcmplt
                | O::IfIcmpge
                | O::IfIcmpgt
                | O::IfIcmple => {
                    let off = op_u16!() as i16 as i64;
                    let b = pop!().as_int();
                    let a = pop!().as_int();
                    let take = match op {
                        O::IfIcmpeq => a == b,
                        O::IfIcmpne => a != b,
                        O::IfIcmplt => a < b,
                        O::IfIcmpge => a >= b,
                        O::IfIcmpgt => a > b,
                        _ => a <= b,
                    };
                    if take {
                        pc = (insn_pc as i64 + off) as usize;
                    }
                }
                O::IfAcmpeq | O::IfAcmpne => {
                    let off = op_u16!() as i16 as i64;
                    let b = pop!();
                    let a = pop!();
                    let eq = a.ref_eq(b);
                    if (op == O::IfAcmpeq) == eq {
                        pc = (insn_pc as i64 + off) as usize;
                    }
                }
                O::Ifnull | O::Ifnonnull => {
                    let off = op_u16!() as i16 as i64;
                    let v = pop!();
                    let is_null = matches!(v, Value::Null);
                    if (op == O::Ifnull) == is_null {
                        pc = (insn_pc as i64 + off) as usize;
                    }
                }
                O::Goto => {
                    let off = op_u16!() as i16 as i64;
                    pc = (insn_pc as i64 + off) as usize;
                }
                O::Tableswitch => {
                    while !pc.is_multiple_of(4) {
                        pc += 1;
                    }
                    let default = op_i32!() as i64;
                    let low = op_i32!();
                    let high = op_i32!();
                    let key = pop!().as_int();
                    if key < low || key > high {
                        pc = (insn_pc as i64 + default) as usize;
                    } else {
                        let slot = pc + 4 * (key - low) as usize;
                        let off = i32::from_be_bytes([
                            bytes[slot],
                            bytes[slot + 1],
                            bytes[slot + 2],
                            bytes[slot + 3],
                        ]) as i64;
                        pc = (insn_pc as i64 + off) as usize;
                    }
                }
                O::Lookupswitch => {
                    while !pc.is_multiple_of(4) {
                        pc += 1;
                    }
                    let default = op_i32!() as i64;
                    let npairs = op_i32!() as usize;
                    let key = pop!().as_int();
                    let mut target = insn_pc as i64 + default;
                    for i in 0..npairs {
                        let base = pc + 8 * i;
                        let k = i32::from_be_bytes([
                            bytes[base],
                            bytes[base + 1],
                            bytes[base + 2],
                            bytes[base + 3],
                        ]);
                        if k == key {
                            let off = i32::from_be_bytes([
                                bytes[base + 4],
                                bytes[base + 5],
                                bytes[base + 6],
                                bytes[base + 7],
                            ]) as i64;
                            target = insn_pc as i64 + off;
                            break;
                        }
                    }
                    pc = target as usize;
                }
                // ---- returns ----
                O::Return => {
                    flush!();
                    if do_return(vm, tid, None) {
                        continue 'outer;
                    }
                    return consumed;
                }
                O::Ireturn | O::Lreturn | O::Freturn | O::Dreturn | O::Areturn => {
                    let v = pop!();
                    flush!();
                    if do_return(vm, tid, Some(v)) {
                        continue 'outer;
                    }
                    return consumed;
                }
                // ---- fields ----
                O::Getstatic | O::Putstatic => {
                    let cp = op_u16!();
                    flush!();
                    let class_id = vm.threads[t].frames[fidx].class;
                    // Shared-mode fast path: LadyVM's JIT removes the
                    // initialization check once the class is initialized;
                    // the baseline models that by caching an init-elided
                    // entry. I-JVM always re-checks (paper §3.1).
                    if let RtCp::StaticFieldInit { class, slot } =
                        vm.classes[class_id.0 as usize].rtcp[cp as usize]
                    {
                        if op == O::Getstatic {
                            let v = vm.classes[class.0 as usize].mirrors[0]
                                .as_ref()
                                .expect("fast entries only exist after init")
                                .statics[slot as usize];
                            push!(v);
                        } else {
                            let v = pop!();
                            vm.classes[class.0 as usize].mirrors[0]
                                .as_mut()
                                .expect("fast entries only exist after init")
                                .statics[slot as usize] = v;
                        }
                        continue 'inner;
                    }
                    let (def_class, slot) = check!(resolve_static_field(vm, class_id, cp));
                    let iso = vm.threads[t].current_isolate;
                    // I-JVM: current-isolate load + mirror index + init
                    // state test on every access (the paper's two extra
                    // loads plus the unremovable init check), fused into a
                    // single mirror access.
                    let mi = vm.mirror_index(iso);
                    let ready_value = match vm.classes[def_class.0 as usize].mirrors.get(mi) {
                        Some(Some(m)) if m.init == InitState::Initialized => {
                            Some(m.statics[slot as usize])
                        }
                        _ => None,
                    };
                    let hit = if let Some(v) = ready_value {
                        if op == O::Getstatic {
                            push!(v);
                        } else {
                            let v = pop!();
                            vm.classes[def_class.0 as usize].mirrors[mi]
                                .as_mut()
                                .expect("checked above")
                                .statics[slot as usize] = v;
                        }
                        true
                    } else {
                        false
                    };
                    if !hit {
                        match check!(ensure_initialized(vm, tid, def_class, iso)) {
                            InitAction::Ready => {}
                            InitAction::Suspend => {
                                // Re-execute this instruction once <clinit> ran.
                                vm.threads[t].frames[fidx].pc = insn_pc as u32;
                                continue 'outer;
                            }
                        }
                        if op == O::Getstatic {
                            let v = vm.classes[def_class.0 as usize].mirrors[mi]
                                .as_ref()
                                .expect("mirror created by ensure_initialized")
                                .statics[slot as usize];
                            push!(v);
                        } else {
                            let v = pop!();
                            vm.classes[def_class.0 as usize].mirrors[mi]
                                .as_mut()
                                .expect("mirror created by ensure_initialized")
                                .statics[slot as usize] = v;
                        }
                    }
                    if vm.options.isolation == crate::vm::IsolationMode::Shared {
                        vm.classes[class_id.0 as usize].rtcp[cp as usize] = RtCp::StaticFieldInit {
                            class: def_class,
                            slot,
                        };
                    }
                }
                O::Getfield => {
                    let cp = op_u16!();
                    flush!();
                    let class_id = vm.threads[t].frames[fidx].class;
                    let slot = check!(resolve_instance_field(vm, class_id, cp));
                    let r = pop!();
                    let Some(r) = r.as_ref() else { throw!(npe()) };
                    let obj = vm.heap.get(r);
                    let ObjBody::Fields(fields) = &obj.body else {
                        throw!(internal_err("getfield on array"))
                    };
                    let v = fields[slot as usize];
                    push!(v);
                }
                O::Putfield => {
                    let cp = op_u16!();
                    flush!();
                    let class_id = vm.threads[t].frames[fidx].class;
                    let slot = check!(resolve_instance_field(vm, class_id, cp));
                    let v = pop!();
                    let r = pop!();
                    let Some(r) = r.as_ref() else { throw!(npe()) };
                    let obj = vm.heap.get_mut(r);
                    let ObjBody::Fields(fields) = &mut obj.body else {
                        throw!(internal_err("putfield on array"))
                    };
                    fields[slot as usize] = v;
                }
                // ---- invocation ----
                O::Invokestatic | O::Invokespecial | O::Invokevirtual | O::Invokeinterface => {
                    let cp = op_u16!();
                    if op == O::Invokeinterface {
                        #[allow(unused_assignments)]
                        {
                            pc += 2; // count + zero bytes
                        }
                    }
                    flush!();
                    let class_id = vm.threads[t].frames[fidx].class;
                    let action = check!(do_invoke(vm, tid, fidx, class_id, cp, op, insn_pc));
                    match action {
                        InvokeAction::FramePushed | InvokeAction::Suspended => continue 'outer,
                        InvokeAction::NativeDone => {
                            if !vm.threads[t].is_runnable()
                                || vm.threads[t].pending_exception.is_some()
                            {
                                continue 'outer;
                            }
                            // Stay in this frame; reload pc (unchanged).
                            pc = vm.threads[t].frames[fidx].pc as usize;
                        }
                    }
                }
                // ---- objects ----
                O::New => {
                    let cp = op_u16!();
                    flush!();
                    let class_id = vm.threads[t].frames[fidx].class;
                    // Shared-mode fast path (init check elided, as a JIT
                    // would after first execution).
                    if let RtCp::ClassInit(new_class) =
                        vm.classes[class_id.0 as usize].rtcp[cp as usize]
                    {
                        let iso = vm.threads[t].current_isolate;
                        let r = check!(vm.alloc_instance(new_class, iso));
                        push!(Value::Ref(r));
                        continue 'inner;
                    }
                    let target = check!(resolve_class(vm, class_id, cp));
                    let ClassTarget::Class(new_class) = target else {
                        throw!(internal_err("new on array type"))
                    };
                    let iso = vm.threads[t].current_isolate;
                    check!(check_not_poisoned(vm, tid, new_class));
                    let mi = vm.mirror_index(iso);
                    let ready = matches!(
                        vm.classes[new_class.0 as usize].mirrors.get(mi),
                        Some(Some(m)) if m.init == InitState::Initialized
                    );
                    if !ready {
                        match check!(ensure_initialized(vm, tid, new_class, iso)) {
                            InitAction::Ready => {}
                            InitAction::Suspend => {
                                vm.threads[t].frames[fidx].pc = insn_pc as u32;
                                continue 'outer;
                            }
                        }
                    }
                    if vm.options.isolation == crate::vm::IsolationMode::Shared {
                        vm.classes[class_id.0 as usize].rtcp[cp as usize] =
                            RtCp::ClassInit(new_class);
                    }
                    let r = check!(vm.alloc_instance(new_class, iso));
                    push!(Value::Ref(r));
                }
                O::Newarray => {
                    let atype = op_u8!();
                    flush!();
                    let len = pop!().as_int();
                    if len < 0 {
                        throw!(Thrown::ByName {
                            class_name: "java/lang/NegativeArraySizeException",
                            message: len.to_string(),
                        });
                    }
                    let iso = vm.threads[t].current_isolate;
                    let r = check!(alloc_prim_array(vm, iso, atype, len as usize));
                    push!(Value::Ref(r));
                }
                O::Anewarray => {
                    let cp = op_u16!();
                    flush!();
                    let class_id = vm.threads[t].frames[fidx].class;
                    let target = check!(resolve_class(vm, class_id, cp));
                    let len = pop!().as_int();
                    if len < 0 {
                        throw!(Thrown::ByName {
                            class_name: "java/lang/NegativeArraySizeException",
                            message: len.to_string(),
                        });
                    }
                    let elem_desc = match &target {
                        ClassTarget::Class(c) => format!("L{};", vm.classes[c.0 as usize].name),
                        ClassTarget::Array(d) => d.clone(),
                    };
                    let iso = vm.threads[t].current_isolate;
                    let size = crate::heap::OBJECT_HEADER_BYTES + len as usize * 8;
                    check!(vm.check_heap(size, iso));
                    let desc = format!("[{elem_desc}");
                    let obj_class = vm.well_known.object.expect("bootstrap installed");
                    let body = ObjBody::ArrRef {
                        elem_desc,
                        data: vec![Value::Null; len as usize].into_boxed_slice(),
                    };
                    let r = vm.alloc_raw(obj_class, iso, body, &desc);
                    push!(Value::Ref(r));
                }
                O::Arraylength => {
                    let r = pop!();
                    let Some(r) = r.as_ref() else { throw!(npe()) };
                    let len = vm.heap.get(r).body.array_len();
                    let Some(len) = len else {
                        throw!(internal_err("arraylength on non-array"))
                    };
                    push!(Value::Int(len as i32));
                }
                O::Athrow => {
                    let r = pop!();
                    let Some(r) = r.as_ref() else { throw!(npe()) };
                    flush!();
                    if unwind(vm, tid, r) {
                        continue 'outer;
                    }
                    return consumed;
                }
                O::Checkcast => {
                    let cp = op_u16!();
                    flush!();
                    let class_id = vm.threads[t].frames[fidx].class;
                    let target = check!(resolve_class(vm, class_id, cp));
                    let v = *fr!().stack.last().expect("checkcast on empty stack");
                    if let Value::Ref(r) = v {
                        if !is_instance(vm, r, &target) {
                            let from = vm.classes[vm.heap.get(r).class.0 as usize].name.clone();
                            throw!(Thrown::ByName {
                                class_name: "java/lang/ClassCastException",
                                message: format!("{from} cannot be cast"),
                            });
                        }
                    }
                }
                O::Instanceof => {
                    let cp = op_u16!();
                    flush!();
                    let class_id = vm.threads[t].frames[fidx].class;
                    let target = check!(resolve_class(vm, class_id, cp));
                    let v = pop!();
                    let res = match v {
                        Value::Ref(r) => is_instance(vm, r, &target) as i32,
                        _ => 0,
                    };
                    push!(Value::Int(res));
                }
                // ---- monitors ----
                O::Monitorenter => {
                    let v = *fr!().stack.last().expect("monitorenter on empty stack");
                    let Some(r) = v.as_ref() else {
                        pop!();
                        throw!(npe())
                    };
                    flush!();
                    match monitor_enter(vm, tid, r) {
                        EnterResult::Acquired => {
                            pop!();
                        }
                        EnterResult::Blocked => {
                            // Retry the monitorenter when rescheduled.
                            vm.threads[t].frames[fidx].pc = insn_pc as u32;
                            return consumed;
                        }
                    }
                }
                O::Monitorexit => {
                    let v = pop!();
                    let Some(r) = v.as_ref() else { throw!(npe()) };
                    flush!();
                    check!(monitor_exit(vm, tid, r));
                }
            }
        }
    }
    consumed
}

/// Three-way comparison for `lcmp`.
pub(crate) fn cmp3<T: Ord>(a: T, b: T) -> i32 {
    match a.cmp(&b) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }
}

/// `fcmpl`/`fcmpg`/`dcmpl`/`dcmpg` semantics (NaN direction differs).
pub(crate) fn fcmp(a: f64, b: f64, nan_is_one: bool) -> i32 {
    if a.is_nan() || b.is_nan() {
        if nan_is_one {
            1
        } else {
            -1
        }
    } else if a < b {
        -1
    } else if a > b {
        1
    } else {
        0
    }
}

/// `f2i` saturating conversion per the JVM spec.
pub(crate) fn f2i(v: f32) -> i32 {
    if v.is_nan() {
        0
    } else {
        v as i32 // Rust float→int casts saturate, matching the JVM
    }
}

/// `d2l` saturating conversion per the JVM spec.
pub(crate) fn f2l(v: f64) -> i64 {
    if v.is_nan() {
        0
    } else {
        v as i64
    }
}

pub(crate) fn npe() -> Thrown {
    Thrown::ByName {
        class_name: "java/lang/NullPointerException",
        message: String::new(),
    }
}

pub(crate) fn arith() -> Thrown {
    Thrown::ByName {
        class_name: "java/lang/ArithmeticException",
        message: "/ by zero".to_owned(),
    }
}

pub(crate) fn aioobe(idx: i32, len: usize) -> Thrown {
    Thrown::ByName {
        class_name: "java/lang/ArrayIndexOutOfBoundsException",
        message: format!("index {idx} out of bounds for length {len}"),
    }
}

pub(crate) fn internal_err(msg: &str) -> Thrown {
    Thrown::ByName {
        class_name: "java/lang/VerifyError",
        message: msg.to_owned(),
    }
}

// ---------------------------------------------------------------------
// Invocation
// ---------------------------------------------------------------------

/// What `do_invoke` did.
pub(crate) enum InvokeAction {
    /// A bytecode frame was pushed (or a `<clinit>` must run first).
    FramePushed,
    /// A native completed inline; the caller frame continues.
    NativeDone,
    /// The thread blocked (monitor, class init); the instruction will
    /// re-execute when the thread resumes.
    Suspended,
}

/// Outcome of a class-initialization check.
pub(crate) enum InitAction {
    /// The class is initialized for this isolate; proceed.
    Ready,
    /// A `<clinit>` frame was pushed or the thread blocked; re-execute the
    /// triggering instruction later.
    Suspend,
}

fn do_invoke(
    vm: &mut Vm,
    tid: ThreadId,
    fidx: usize,
    caller_class: ClassId,
    cp: u16,
    op: Opcode,
    insn_pc: usize,
) -> Result<InvokeAction, Thrown> {
    let t = tid.0 as usize;
    let cur_iso = vm.threads[t].current_isolate;

    // Resolve the call target.
    let (target, arg_slots) = match op {
        Opcode::Invokestatic | Opcode::Invokespecial => {
            // Shared-mode fast path: init check elided after first call.
            let target = if let RtCp::DirectMethodInit(mref) =
                vm.classes[caller_class.0 as usize].rtcp[cp as usize]
            {
                mref
            } else {
                let target = resolve_direct_method(vm, caller_class, cp)?;
                if op == Opcode::Invokestatic {
                    let mi = vm.mirror_index(cur_iso);
                    let ready = matches!(
                        vm.classes[target.class.0 as usize].mirrors.get(mi),
                        Some(Some(m)) if m.init == InitState::Initialized
                    );
                    if !ready {
                        match ensure_initialized(vm, tid, target.class, cur_iso)? {
                            InitAction::Ready => {}
                            InitAction::Suspend => {
                                vm.threads[t].frames[fidx].pc = insn_pc as u32;
                                return Ok(InvokeAction::Suspended);
                            }
                        }
                    }
                    if vm.options.isolation == crate::vm::IsolationMode::Shared {
                        vm.classes[caller_class.0 as usize].rtcp[cp as usize] =
                            RtCp::DirectMethodInit(target);
                    }
                }
                target
            };
            let arg_slots =
                vm.classes[target.class.0 as usize].methods[target.index as usize].arg_slots;
            (target, arg_slots)
        }
        Opcode::Invokevirtual => {
            let (vslot, arg_slots) = resolve_virtual_method(vm, caller_class, cp)?;
            let receiver = peek_receiver(vm, t, fidx, arg_slots)?;
            let rc = vm.heap.get(receiver).class;
            let vt = &vm.classes[rc.0 as usize].vtable;
            let target = *vt.get(vslot as usize).ok_or_else(|| Thrown::ByName {
                class_name: "java/lang/AbstractMethodError",
                message: format!("vtable slot {vslot} missing"),
            })?;
            (target, arg_slots)
        }
        Opcode::Invokeinterface => {
            let (name, desc, arg_slots) = resolve_interface_method(vm, caller_class, cp)?;
            let receiver = peek_receiver(vm, t, fidx, arg_slots)?;
            let rc = vm.heap.get(receiver).class;
            // Inline cache on the call site.
            let cached = match &vm.classes[caller_class.0 as usize].rtcp[cp as usize] {
                RtCp::InterfaceMethod {
                    cache: Some((cc, mref)),
                    ..
                } if *cc == rc => Some(*mref),
                _ => None,
            };
            let target = match cached {
                Some(mref) => mref,
                None => {
                    let found =
                        lookup_virtual(vm, rc, &name, &desc).ok_or_else(|| Thrown::ByName {
                            class_name: "java/lang/AbstractMethodError",
                            message: format!("{name}{desc} on {}", vm.classes[rc.0 as usize].name),
                        })?;
                    if let RtCp::InterfaceMethod { cache, .. } =
                        &mut vm.classes[caller_class.0 as usize].rtcp[cp as usize]
                    {
                        *cache = Some((rc, found));
                    }
                    found
                }
            };
            (target, arg_slots)
        }
        _ => unreachable!("do_invoke on non-invoke opcode"),
    };

    invoke_resolved(vm, tid, fidx, target, arg_slots, insn_pc)
}

/// Performs a call through a fused [`crate::engine::CallSite`]: the frame
/// shape is precomputed, so no `RuntimeMethod` metadata is read and the
/// callee's locals are carved straight off the caller's operand-stack
/// window into a pooled buffer. Semantics match [`invoke_resolved`]
/// exactly for the targets that fuse (plain bytecode methods): poisoning
/// check first, then the frame-depth check, then the arg transfer and the
/// inter-isolate migration of paper §3.1 (with its exact CPU flush).
pub(crate) fn invoke_fused(
    vm: &mut Vm,
    tid: ThreadId,
    fidx: usize,
    site: &crate::engine::CallSite,
) -> Result<(), Thrown> {
    let t = tid.0 as usize;
    let cur_iso = vm.threads[t].current_isolate;

    if !site.is_system {
        check_not_poisoned(vm, tid, site.target.class)?;
    }
    if vm.threads[t].frames.len() >= vm.options.max_frames {
        return Err(Thrown::ByName {
            class_name: "java/lang/StackOverflowError",
            message: String::new(),
        });
    }

    let th = &mut vm.threads[t];
    // Carve the callee's locals from the caller-adjacent stack window:
    // one pooled buffer, one memcpy, no intermediate args Vec.
    let mut locals = th.frame_pool.take(site.max_locals as usize);
    {
        let stack = &mut th.frames[fidx].stack;
        let start = stack.len() - site.arg_slots as usize;
        locals.extend_from_slice(&stack[start..]);
        stack.truncate(start);
    }
    locals.resize(site.max_locals as usize, Value::Int(0));
    let stack = th.frame_pool.take(site.max_stack as usize);

    let callee_iso = site.frame_isolate.unwrap_or(cur_iso);
    let frame = crate::thread::Frame {
        method: site.target,
        class: site.target.class,
        isolate: callee_iso,
        caller_isolate: cur_iso,
        is_system: site.is_system,
        code: site.code.share(),
        pc: 0,
        locals,
        stack,
        sync_object: None,
        needs_sync_enter: false,
        poisoned_return: None,
    };
    if callee_iso != cur_iso {
        switch_isolate(vm, tid, callee_iso, true);
    }
    vm.threads[t].frames.push(frame);
    Ok(())
}

/// Performs a call whose target method is already resolved: poisoning
/// check, native dispatch or frame push, `synchronized` entry, and the
/// inter-isolate thread migration of paper §3.1. Shared by the raw
/// interpreter's `do_invoke` and the quickened engine's fast invoke forms.
pub(crate) fn invoke_resolved(
    vm: &mut Vm,
    tid: ThreadId,
    fidx: usize,
    target: MethodRef,
    arg_slots: u16,
    insn_pc: usize,
) -> Result<InvokeAction, Thrown> {
    let t = tid.0 as usize;
    let cur_iso = vm.threads[t].current_isolate;

    check_not_poisoned(vm, tid, target.class)?;

    let (is_native, is_bytecode, is_sync, is_static, returns_value) = {
        let m = &vm.classes[target.class.0 as usize].methods[target.index as usize];
        (
            m.access.is_native(),
            m.code.is_some(),
            m.synchronized,
            m.is_static(),
            m.returns_value,
        )
    };

    if is_native {
        let native_idx = vm.classes[target.class.0 as usize].methods[target.index as usize]
            .native_idx
            .or_else(|| {
                let c = &vm.classes[target.class.0 as usize];
                let m = &c.methods[target.index as usize];
                vm.natives.lookup(&c.name, &m.name, &m.descriptor)
            });
        let Some(native_idx) = native_idx else {
            let c = &vm.classes[target.class.0 as usize];
            let m = &c.methods[target.index as usize];
            return Err(Thrown::ByName {
                class_name: "java/lang/UnsatisfiedLinkError",
                message: format!("{}.{}:{}", c.name, m.name, m.descriptor),
            });
        };
        vm.classes[target.class.0 as usize].methods[target.index as usize].native_idx =
            Some(native_idx);
        let args = pop_args(vm, t, fidx, arg_slots);
        let f = vm.natives.get(native_idx);
        match f(vm, tid, &args) {
            NativeResult::Return(v) => {
                if returns_value {
                    let v = v.expect("native for value-returning method returned nothing");
                    vm.threads[t].frames[fidx].stack.push(v);
                }
                Ok(InvokeAction::NativeDone)
            }
            NativeResult::BlockReturn(v) => {
                if returns_value {
                    let v = v.expect("native for value-returning method returned nothing");
                    vm.threads[t].frames[fidx].stack.push(v);
                }
                Ok(InvokeAction::NativeDone)
            }
            // Nothing is pushed: the waker delivers the result (value on
            // the operand stack, or a pending exception) before the
            // thread resumes, so the post-call stack shape matches
            // `BlockReturn` exactly.
            NativeResult::BlockPending => Ok(InvokeAction::NativeDone),
            NativeResult::Throw {
                class_name,
                message,
            } => Err(Thrown::ByName {
                class_name,
                message,
            }),
            NativeResult::ThrowRef(r) => Err(Thrown::Ref(r)),
            NativeResult::Fail(e) => Err(Thrown::ByName {
                class_name: "java/lang/InternalError",
                message: e.to_string(),
            }),
        }
    } else if is_bytecode {
        if vm.threads[t].frames.len() >= vm.options.max_frames {
            return Err(Thrown::ByName {
                class_name: "java/lang/StackOverflowError",
                message: String::new(),
            });
        }
        // Synchronized methods take their monitor *before* the args are
        // popped, so a contended monitor simply re-executes the invoke.
        let mut sync_object = None;
        if is_sync {
            let lock_target = if is_static {
                vm.ensure_mirror(target.class, cur_iso);
                let mi = vm.mirror_index(cur_iso);
                vm.classes[target.class.0 as usize].mirrors[mi]
                    .as_ref()
                    .expect("mirror just ensured")
                    .class_object
            } else {
                peek_receiver(vm, t, fidx, arg_slots)?
            };
            match monitor_enter(vm, tid, lock_target) {
                EnterResult::Acquired => sync_object = Some(lock_target),
                EnterResult::Blocked => {
                    vm.threads[t].frames[fidx].pc = insn_pc as u32;
                    return Ok(InvokeAction::Suspended);
                }
            }
        }
        let args = pop_args(vm, t, fidx, arg_slots);
        let mut frame = vm.make_frame(target, args, cur_iso);
        frame.sync_object = sync_object;
        frame.needs_sync_enter = false; // acquired above (or not synchronized)
        let callee_iso = frame.isolate;
        if callee_iso != cur_iso {
            switch_isolate(vm, tid, callee_iso, true);
        }
        vm.threads[t].frames.push(frame);
        Ok(InvokeAction::FramePushed)
    } else {
        let c = &vm.classes[target.class.0 as usize];
        let m = &c.methods[target.index as usize];
        Err(Thrown::ByName {
            class_name: "java/lang/AbstractMethodError",
            message: format!("{}.{}:{}", c.name, m.name, m.descriptor),
        })
    }
}

pub(crate) fn peek_receiver(
    vm: &Vm,
    t: usize,
    fidx: usize,
    arg_slots: u16,
) -> Result<GcRef, Thrown> {
    let stack = &vm.threads[t].frames[fidx].stack;
    let v = stack
        .get(stack.len().wrapping_sub(arg_slots as usize))
        .copied()
        .unwrap_or(Value::Null);
    v.as_ref().ok_or(Thrown::ByName {
        class_name: "java/lang/NullPointerException",
        message: String::new(),
    })
}

fn pop_args(vm: &mut Vm, t: usize, fidx: usize, arg_slots: u16) -> Vec<Value> {
    let stack = &mut vm.threads[t].frames[fidx].stack;
    let start = stack.len() - arg_slots as usize;
    stack.drain(start..).collect()
}

/// Migrates `tid` to isolate `to` (paper §3.1), flushing the exact CPU
/// counter of the isolate it leaves.
pub(crate) fn switch_isolate(vm: &mut Vm, tid: ThreadId, to: IsolateId, is_call: bool) {
    let t = tid.0 as usize;
    let from = vm.threads[t].current_isolate;
    if from == to {
        return;
    }
    let insns = std::mem::take(&mut vm.threads[t].insns_since_switch);
    if vm.options.accounting {
        let mut charged = false;
        if let Some(i) = vm.isolates.get_mut(from.0 as usize) {
            i.stats.charge_cpu(insns);
            charged = true;
        }
        if charged && insns > 0 {
            vm.trace_cpu_charge(from, Some(tid), insns);
        }
        if is_call {
            if let Some(i) = vm.isolates.get_mut(to.0 as usize) {
                i.stats.calls_in += 1;
            }
        }
    }
    vm.threads[t].current_isolate = to;
    vm.migrations += 1;
    vm.trace_emit(
        crate::trace::EventKind::IsolateSwitch,
        Some(from),
        Some(tid),
        to.0 as u64,
    );
}

/// Pops the top frame on normal return. Returns `true` when the thread
/// still has work (caller frame or handler); `false` when it finished.
pub(crate) fn do_return(vm: &mut Vm, tid: ThreadId, value: Option<Value>) -> bool {
    let t = tid.0 as usize;
    let frame = vm.threads[t].frames.pop().expect("return with no frame");
    if let Some(obj) = frame.sync_object {
        let _ = monitor_exit(vm, tid, obj);
    }
    let (returns_value, is_clinit) = {
        let m = &vm.classes[frame.method.class.0 as usize].methods[frame.method.index as usize];
        (m.returns_value, &*m.name == "<clinit>")
    };
    if is_clinit {
        mark_initialized(
            vm,
            frame.method.class,
            frame.isolate,
            InitState::Initialized,
        );
    }
    // Paper §3.3: returning into a frame of a terminated isolate raises
    // StoppedIsolateException instead.
    if let Some(dead_iso) = frame.poisoned_return {
        let caller_isolate = frame.caller_isolate;
        vm.threads[t].frame_pool.recycle_frame(frame);
        let ex = make_sie(vm, tid, dead_iso);
        switch_isolate(vm, tid, caller_isolate, false);
        return unwind(vm, tid, ex);
    }
    switch_isolate(vm, tid, frame.caller_isolate, false);
    vm.threads[t].frame_pool.recycle_frame(frame);
    match vm.threads[t].frames.last_mut() {
        Some(caller) => {
            if returns_value {
                caller
                    .stack
                    .push(value.expect("value-returning method returned nothing"));
            }
            true
        }
        None => {
            finish_thread(vm, tid, value);
            false
        }
    }
}

pub(crate) fn mark_initialized(vm: &mut Vm, class: ClassId, iso: IsolateId, state: InitState) {
    let mi = vm.mirror_index(iso);
    if let Some(Some(m)) = vm.classes[class.0 as usize].mirrors.get_mut(mi) {
        m.init = state;
    }
    vm.poll_unblock();
}

pub(crate) fn finish_thread(vm: &mut Vm, tid: ThreadId, value: Option<Value>) {
    let t = tid.0 as usize;
    let iso = vm.threads[t].current_isolate;
    let insns = std::mem::take(&mut vm.threads[t].insns_since_switch);
    if vm.options.accounting {
        let mut charged = false;
        if let Some(i) = vm.isolates.get_mut(iso.0 as usize) {
            i.stats.charge_cpu(insns);
            charged = true;
        }
        if charged && insns > 0 {
            vm.trace_cpu_charge(iso, Some(tid), insns);
        }
    }
    // A service pump draining its last frame has completed one request,
    // not its life: the port layer sends the reply and re-parks (or
    // re-dispatches) the thread. Everything burned was charged above.
    if vm.threads[t].is_service_pump && crate::port::pump_completed(vm, tid, value) {
        return;
    }
    let th = &mut vm.threads[t];
    th.state = ThreadState::Terminated;
    th.result = value;
    // Drop the frames *and* the pool: a terminated thread never invokes
    // again, so recycling here would strand buffers forever (terminated
    // VmThreads stay in `vm.threads`).
    th.frames.clear();
    th.frame_pool = crate::thread::FramePool::default();
    vm.trace_emit(
        crate::trace::EventKind::ThreadFinish,
        Some(iso),
        Some(tid),
        0,
    );
}

// ---------------------------------------------------------------------
// Exceptions
// ---------------------------------------------------------------------

/// Allocates the exception object for a `Thrown`.
pub(crate) fn materialize(vm: &mut Vm, tid: ThreadId, thrown: Thrown) -> GcRef {
    match thrown {
        Thrown::Ref(r) => r,
        Thrown::ByName {
            class_name,
            message,
        } => alloc_exception(vm, tid, class_name, &message),
    }
}

/// Allocates an exception bypassing the heap limit (so OOM reporting
/// cannot itself OOM).
pub(crate) fn alloc_exception(
    vm: &mut Vm,
    tid: ThreadId,
    class_name: &str,
    message: &str,
) -> GcRef {
    let t = tid.0 as usize;
    let iso = vm.threads[t].current_isolate;
    let class = vm
        .load_class(crate::ids::LoaderId::BOOTSTRAP, class_name)
        .unwrap_or_else(|e| panic!("bootstrap exception class {class_name} missing: {e}"));
    let nfields = vm.classes[class.0 as usize].instance_fields.len();
    let fields: Box<[Value]> = vm.classes[class.0 as usize]
        .instance_fields
        .iter()
        .map(|f| Value::default_for_descriptor(&f.descriptor))
        .collect();
    let r = vm.alloc_raw(class, iso, crate::heap::ObjBody::Fields(fields), "");
    let _ = nfields;
    if !message.is_empty() {
        let msg = vm.new_string(iso, message);
        if let Some(slot) = vm.classes[class.0 as usize].find_instance_slot("message") {
            if let crate::heap::ObjBody::Fields(fields) = &mut vm.heap.get_mut(r).body {
                fields[slot as usize] = Value::Ref(msg);
            }
        }
    }
    r
}

/// Builds a `StoppedIsolateException` for `dead_iso` (paper §3.3). The
/// exception records the terminated isolate so unwinding can refuse to let
/// that isolate catch it.
pub(crate) fn make_sie(vm: &mut Vm, tid: ThreadId, dead_iso: IsolateId) -> GcRef {
    let name = vm
        .isolates
        .get(dead_iso.0 as usize)
        .map(|i| i.name.clone())
        .unwrap_or_default();
    let r = alloc_exception(
        vm,
        tid,
        STOPPED_ISOLATE_EXCEPTION,
        &format!("isolate {name} stopped"),
    );
    let class = vm.heap.get(r).class;
    if let Some(slot) = vm.classes[class.0 as usize].find_instance_slot("isolateId") {
        if let crate::heap::ObjBody::Fields(fields) = &mut vm.heap.get_mut(r).body {
            fields[slot as usize] = Value::Int(dead_iso.0 as i32);
        }
    }
    vm.trace_emit(
        crate::trace::EventKind::SieRaised,
        Some(dead_iso),
        Some(tid),
        0,
    );
    r
}

pub(crate) fn sie_isolate_of(vm: &Vm, ex: GcRef) -> Option<IsolateId> {
    let obj = vm.heap.get(ex);
    let class = &vm.classes[obj.class.0 as usize];
    if &*class.name != STOPPED_ISOLATE_EXCEPTION {
        return None;
    }
    let slot = class.find_instance_slot("isolateId")?;
    let crate::heap::ObjBody::Fields(fields) = &obj.body else {
        return None;
    };
    match fields[slot as usize] {
        Value::Int(v) => Some(IsolateId(v as u16)),
        _ => None,
    }
}

/// Unwinds `tid` delivering `ex`. Handlers belonging to non-active
/// isolates are skipped — in particular a terminated isolate can never
/// catch its own `StoppedIsolateException` (paper §3.3). Returns `true`
/// when a handler took over; `false` when the thread died.
pub(crate) fn unwind(vm: &mut Vm, tid: ThreadId, ex: GcRef) -> bool {
    let t = tid.0 as usize;
    let ex_class = vm.heap.get(ex).class;
    let sie_iso = sie_isolate_of(vm, ex);

    loop {
        let Some(frame) = vm.threads[t].frames.last() else {
            let iso = vm.threads[t].current_isolate;
            let insns = std::mem::take(&mut vm.threads[t].insns_since_switch);
            if vm.options.accounting {
                let mut charged = false;
                if let Some(i) = vm.isolates.get_mut(iso.0 as usize) {
                    i.stats.charge_cpu(insns);
                    charged = true;
                }
                if charged && insns > 0 {
                    vm.trace_cpu_charge(iso, Some(tid), insns);
                }
            }
            // A handler exception inside a service pump becomes a failed
            // (or revoked) reply to the caller; the pump survives unless
            // its isolate was terminated. `false` still tells the engine
            // to stop stepping this thread — it was re-parked or
            // re-dispatched, not terminated.
            if vm.threads[t].is_service_pump && crate::port::pump_failed(vm, tid, ex) {
                return false;
            }
            let th = &mut vm.threads[t];
            th.uncaught = Some(ex);
            th.state = ThreadState::Terminated;
            vm.trace_emit(
                crate::trace::EventKind::ThreadFinish,
                Some(iso),
                Some(tid),
                1,
            );
            return false;
        };

        let frame_iso = frame.isolate;
        let iso_active = vm
            .isolates
            .get(frame_iso.0 as usize)
            .map(|i| i.is_active())
            .unwrap_or(true);
        let may_catch = iso_active && sie_iso != Some(frame_iso);

        if may_catch {
            let code = frame.code.share();
            let pc = frame.pc;
            let frame_class = frame.class;
            let mut handler_pc = None;
            for h in &code.handlers {
                if pc < h.start_pc || pc >= h.end_pc {
                    continue;
                }
                let matches = if h.catch_type == 0 {
                    true
                } else {
                    let cname = match vm.classes[frame_class.0 as usize]
                        .pool
                        .class_name_at(h.catch_type)
                    {
                        Ok(n) => n.to_owned(),
                        Err(_) => continue,
                    };
                    let loader = vm.classes[frame_class.0 as usize].loader;
                    match vm.load_class(loader, &cname) {
                        Ok(catch_class) => vm.is_assignable_to(ex_class, catch_class),
                        Err(_) => false,
                    }
                };
                if matches {
                    handler_pc = Some(h.handler_pc);
                    break;
                }
            }
            if let Some(hpc) = handler_pc {
                let frame = vm.threads[t]
                    .frames
                    .last_mut()
                    .expect("frame checked above");
                frame.stack.clear();
                frame.stack.push(Value::Ref(ex));
                frame.pc = hpc;
                return true;
            }
        }

        // No handler here: pop and continue below.
        let frame = vm.threads[t].frames.pop().expect("frame checked above");
        if let Some(obj) = frame.sync_object {
            let _ = monitor_exit(vm, tid, obj);
        }
        let is_clinit = {
            let m = &vm.classes[frame.method.class.0 as usize].methods[frame.method.index as usize];
            &*m.name == "<clinit>"
        };
        if is_clinit {
            mark_initialized(vm, frame.method.class, frame.isolate, InitState::Failed);
        }
        switch_isolate(vm, tid, frame.caller_isolate, false);
        vm.threads[t].frame_pool.recycle_frame(frame);
    }
}

// ---------------------------------------------------------------------
// Class initialization
// ---------------------------------------------------------------------

/// Ensures `(class, iso)` is initialized, running superclass `<clinit>`s
/// first (root-most first, per the JVM spec).
pub(crate) fn ensure_initialized(
    vm: &mut Vm,
    tid: ThreadId,
    class: ClassId,
    iso: IsolateId,
) -> Result<InitAction, Thrown> {
    let t = tid.0 as usize;
    // Collect the superclass chain, root first.
    let mut chain = Vec::new();
    let mut cur = Some(class);
    while let Some(c) = cur {
        chain.push(c);
        cur = vm.classes[c.0 as usize].super_class;
    }
    for &c in chain.iter().rev() {
        check_not_poisoned(vm, tid, c)?;
        vm.ensure_mirror(c, iso);
        let mi = vm.mirror_index(iso);
        let state = vm.classes[c.0 as usize].mirrors[mi]
            .as_ref()
            .expect("mirror just ensured")
            .init;
        match state {
            InitState::Initialized => continue,
            InitState::Failed => {
                return Err(Thrown::ByName {
                    class_name: "java/lang/NoClassDefFoundError",
                    message: format!("initialization of {} failed", vm.classes[c.0 as usize].name),
                });
            }
            InitState::InProgress(owner) if owner == tid => continue,
            InitState::InProgress(_) => {
                vm.threads[t].state = ThreadState::BlockedOnClassInit {
                    class: c,
                    isolate: iso,
                };
                return Ok(InitAction::Suspend);
            }
            InitState::Uninitialized => {
                let clinit = vm.classes[c.0 as usize].find_method("<clinit>", "()V");
                match clinit {
                    None => {
                        vm.classes[c.0 as usize].mirrors[mi]
                            .as_mut()
                            .expect("mirror just ensured")
                            .init = InitState::Initialized;
                        continue;
                    }
                    Some(index) => {
                        vm.classes[c.0 as usize].mirrors[mi]
                            .as_mut()
                            .expect("mirror just ensured")
                            .init = InitState::InProgress(tid);
                        let mref = MethodRef { class: c, index };
                        let frame = vm.make_frame(mref, Vec::new(), iso);
                        vm.threads[t].frames.push(frame);
                        return Ok(InitAction::Suspend);
                    }
                }
            }
        }
    }
    Ok(InitAction::Ready)
}

/// Rejects calls into classes of terminated isolates with a
/// `StoppedIsolateException` (paper §3.3 "method poisoning").
pub(crate) fn check_not_poisoned(vm: &mut Vm, tid: ThreadId, class: ClassId) -> Result<(), Thrown> {
    let (poisoned, iso, is_system) = {
        let c = &vm.classes[class.0 as usize];
        (c.poisoned, c.isolate, c.is_system)
    };
    if is_system {
        return Ok(());
    }
    let iso_dead = vm
        .isolates
        .get(iso.0 as usize)
        .map(|i| i.state != IsolateState::Active)
        .unwrap_or(false);
    if poisoned || iso_dead {
        let ex = make_sie(vm, tid, iso);
        return Err(Thrown::Ref(ex));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Resolution (runtime constant pool cache)
// ---------------------------------------------------------------------

fn link_error(kind: &'static str, detail: String) -> Thrown {
    let class_name = match kind {
        "class" => "java/lang/NoClassDefFoundError",
        "field" => "java/lang/NoSuchFieldError",
        _ => "java/lang/NoSuchMethodError",
    };
    Thrown::ByName {
        class_name,
        message: detail,
    }
}

pub(crate) fn resolve_class(
    vm: &mut Vm,
    class_id: ClassId,
    cp: u16,
) -> Result<ClassTarget, Thrown> {
    if let RtCp::Class(target) = &vm.classes[class_id.0 as usize].rtcp[cp as usize] {
        return Ok(target.clone());
    }
    let name = vm.classes[class_id.0 as usize]
        .pool
        .class_name_at(cp)
        .map_err(|e| link_error("class", e.to_string()))?
        .to_owned();
    let target = if name.starts_with('[') {
        ClassTarget::Array(name)
    } else {
        let loader = vm.classes[class_id.0 as usize].loader;
        let id = vm
            .load_class(loader, &name)
            .map_err(|e| link_error("class", e.to_string()))?;
        ClassTarget::Class(id)
    };
    vm.classes[class_id.0 as usize].rtcp[cp as usize] = RtCp::Class(target.clone());
    Ok(target)
}

fn resolve_member(
    vm: &mut Vm,
    class_id: ClassId,
    cp: u16,
) -> Result<(ClassId, String, String), Thrown> {
    let (cname, mname, mdesc) = {
        let c = &vm.classes[class_id.0 as usize];
        let (a, b, d) = c
            .pool
            .member_ref_at(cp)
            .map_err(|e| link_error("class", e.to_string()))?;
        (a.to_owned(), b.to_owned(), d.to_owned())
    };
    let loader = vm.classes[class_id.0 as usize].loader;
    let target_class = vm
        .load_class(loader, &cname)
        .map_err(|e| link_error("class", e.to_string()))?;
    Ok((target_class, mname, mdesc))
}

pub(crate) fn resolve_static_field(
    vm: &mut Vm,
    class_id: ClassId,
    cp: u16,
) -> Result<(ClassId, u32), Thrown> {
    if let RtCp::StaticField { class, slot } = vm.classes[class_id.0 as usize].rtcp[cp as usize] {
        return Ok((class, slot));
    }
    let (target_class, fname, _fdesc) = resolve_member(vm, class_id, cp)?;
    // Walk up the hierarchy to the declaring class.
    let mut cur = Some(target_class);
    while let Some(c) = cur {
        if let Some(slot) = vm.classes[c.0 as usize].find_static_slot(&fname) {
            vm.classes[class_id.0 as usize].rtcp[cp as usize] =
                RtCp::StaticField { class: c, slot };
            return Ok((c, slot));
        }
        cur = vm.classes[c.0 as usize].super_class;
    }
    Err(link_error("field", fname))
}

pub(crate) fn resolve_instance_field(
    vm: &mut Vm,
    class_id: ClassId,
    cp: u16,
) -> Result<u32, Thrown> {
    if let RtCp::InstanceField { slot } = vm.classes[class_id.0 as usize].rtcp[cp as usize] {
        return Ok(slot);
    }
    let (target_class, fname, _fdesc) = resolve_member(vm, class_id, cp)?;
    let slot = vm.classes[target_class.0 as usize]
        .find_instance_slot(&fname)
        .ok_or_else(|| link_error("field", fname))?;
    vm.classes[class_id.0 as usize].rtcp[cp as usize] = RtCp::InstanceField { slot };
    Ok(slot)
}

fn find_method_up(vm: &Vm, class: ClassId, name: &str, desc: &str) -> Option<MethodRef> {
    let mut cur = Some(class);
    while let Some(c) = cur {
        if let Some(index) = vm.classes[c.0 as usize].find_method(name, desc) {
            return Some(MethodRef { class: c, index });
        }
        cur = vm.classes[c.0 as usize].super_class;
    }
    None
}

/// Virtual lookup used by `invokeinterface`: searches the class chain,
/// then the interface hierarchy (for default-less interfaces this only
/// validates existence).
pub(crate) fn lookup_virtual(vm: &Vm, class: ClassId, name: &str, desc: &str) -> Option<MethodRef> {
    find_method_up(vm, class, name, desc)
}

pub(crate) fn resolve_direct_method(
    vm: &mut Vm,
    class_id: ClassId,
    cp: u16,
) -> Result<MethodRef, Thrown> {
    if let RtCp::DirectMethod(mref) = vm.classes[class_id.0 as usize].rtcp[cp as usize] {
        return Ok(mref);
    }
    let (target_class, mname, mdesc) = resolve_member(vm, class_id, cp)?;
    let mref = find_method_up(vm, target_class, &mname, &mdesc)
        .ok_or_else(|| link_error("method", format!("{mname}:{mdesc}")))?;
    vm.classes[class_id.0 as usize].rtcp[cp as usize] = RtCp::DirectMethod(mref);
    Ok(mref)
}

pub(crate) fn resolve_virtual_method(
    vm: &mut Vm,
    class_id: ClassId,
    cp: u16,
) -> Result<(u32, u16), Thrown> {
    if let RtCp::VirtualMethod { vslot, arg_slots } =
        vm.classes[class_id.0 as usize].rtcp[cp as usize]
    {
        return Ok((vslot, arg_slots));
    }
    let (target_class, mname, mdesc) = resolve_member(vm, class_id, cp)?;
    let mref = find_method_up(vm, target_class, &mname, &mdesc)
        .ok_or_else(|| link_error("method", format!("{mname}:{mdesc}")))?;
    let m = &vm.classes[mref.class.0 as usize].methods[mref.index as usize];
    let arg_slots = m.arg_slots;
    match m.vslot {
        Some(vslot) => {
            vm.classes[class_id.0 as usize].rtcp[cp as usize] =
                RtCp::VirtualMethod { vslot, arg_slots };
            Ok((vslot, arg_slots))
        }
        None => {
            // Private or constructor invoked virtually: treat as direct by
            // caching a degenerate entry through DirectMethod.
            vm.classes[class_id.0 as usize].rtcp[cp as usize] = RtCp::DirectMethod(mref);
            Err(link_error(
                "method",
                format!("{mname}:{mdesc} is not virtual"),
            ))
        }
    }
}

pub(crate) fn resolve_interface_method(
    vm: &mut Vm,
    class_id: ClassId,
    cp: u16,
) -> Result<(std::sync::Arc<str>, std::sync::Arc<str>, u16), Thrown> {
    if let RtCp::InterfaceMethod {
        name,
        descriptor,
        arg_slots,
        ..
    } = &vm.classes[class_id.0 as usize].rtcp[cp as usize]
    {
        return Ok((name.clone(), descriptor.clone(), *arg_slots));
    }
    let (_target_class, mname, mdesc) = resolve_member(vm, class_id, cp)?;
    let parsed = ijvm_classfile::MethodDescriptor::parse(&mdesc)
        .map_err(|e| link_error("method", e.to_string()))?;
    let arg_slots = parsed.param_slots() as u16 + 1; // + receiver
    let name: std::sync::Arc<str> = std::sync::Arc::from(mname.as_str());
    let descriptor: std::sync::Arc<str> = std::sync::Arc::from(mdesc.as_str());
    vm.classes[class_id.0 as usize].rtcp[cp as usize] = RtCp::InterfaceMethod {
        name: name.clone(),
        descriptor: descriptor.clone(),
        arg_slots,
        cache: None,
    };
    Ok((name, descriptor, arg_slots))
}

// ---------------------------------------------------------------------
// Constants, type tests, arrays
// ---------------------------------------------------------------------

pub(crate) fn load_constant(
    vm: &mut Vm,
    tid: ThreadId,
    class_id: ClassId,
    idx: u16,
) -> Result<Value, Thrown> {
    let t = tid.0 as usize;
    let entry = vm.classes[class_id.0 as usize]
        .pool
        .get(idx)
        .map_err(|e| link_error("class", e.to_string()))?
        .clone();
    Ok(match entry {
        ConstEntry::Integer(v) => Value::Int(v),
        ConstEntry::Float(v) => Value::Float(v),
        ConstEntry::Long(v) => Value::Long(v),
        ConstEntry::Double(v) => Value::Double(v),
        ConstEntry::String { .. } => {
            let s = vm.classes[class_id.0 as usize]
                .pool
                .string_at(idx)
                .map_err(|e| link_error("class", e.to_string()))?
                .to_owned();
            // Paper §3.1: string literals resolve through the *current
            // isolate's* string map, so `==` only holds within a bundle.
            let iso = vm.threads[t].current_isolate;
            Value::Ref(vm.intern_string(iso, &s))
        }
        ConstEntry::Class { .. } => {
            let target = resolve_class(vm, class_id, idx)?;
            match target {
                ClassTarget::Class(c) => {
                    let iso = vm.threads[t].current_isolate;
                    vm.ensure_mirror(c, iso);
                    let mi = vm.mirror_index(iso);
                    Value::Ref(
                        vm.classes[c.0 as usize].mirrors[mi]
                            .as_ref()
                            .expect("mirror just ensured")
                            .class_object,
                    )
                }
                ClassTarget::Array(_) => {
                    return Err(Thrown::ByName {
                        class_name: "java/lang/VerifyError",
                        message: "ldc of array class constants is unsupported".to_owned(),
                    });
                }
            }
        }
        other => {
            return Err(Thrown::ByName {
                class_name: "java/lang/VerifyError",
                message: format!("ldc of {:?}", other.tag()),
            });
        }
    })
}

pub(crate) fn is_instance(vm: &Vm, r: GcRef, target: &ClassTarget) -> bool {
    let obj = vm.heap.get(r);
    match target {
        ClassTarget::Class(c) => {
            if obj.is_array() {
                // Arrays are instances of java/lang/Object only.
                Some(*c) == vm.well_known.object
            } else {
                vm.is_assignable_to(obj.class, *c)
            }
        }
        ClassTarget::Array(desc) => {
            if !obj.is_array() {
                return false;
            }
            if obj.array_desc == *desc {
                return true;
            }
            // A reference array is assignable to Object[].
            desc == "[Ljava/lang/Object;"
                && (obj.array_desc.starts_with("[L") || obj.array_desc.starts_with("[["))
        }
    }
}

pub(crate) fn alloc_prim_array(
    vm: &mut Vm,
    iso: IsolateId,
    atype: u8,
    len: usize,
) -> Result<GcRef, Thrown> {
    let Some(base) = BaseType::from_newarray_code(atype) else {
        return Err(Thrown::ByName {
            class_name: "java/lang/VerifyError",
            message: format!("bad newarray type {atype}"),
        });
    };
    let elem_bytes = match base {
        BaseType::Boolean | BaseType::Byte => 1,
        BaseType::Char | BaseType::Short => 2,
        BaseType::Int | BaseType::Float => 4,
        BaseType::Long | BaseType::Double => 8,
    };
    vm.check_heap(crate::heap::OBJECT_HEADER_BYTES + len * elem_bytes, iso)?;
    let body = match base {
        BaseType::Boolean => ObjBody::ArrBool(vec![0; len].into_boxed_slice()),
        BaseType::Byte => ObjBody::ArrByte(vec![0; len].into_boxed_slice()),
        BaseType::Char => ObjBody::ArrChar(vec![0; len].into_boxed_slice()),
        BaseType::Short => ObjBody::ArrShort(vec![0; len].into_boxed_slice()),
        BaseType::Int => ObjBody::ArrInt(vec![0; len].into_boxed_slice()),
        BaseType::Long => ObjBody::ArrLong(vec![0; len].into_boxed_slice()),
        BaseType::Float => ObjBody::ArrFloat(vec![0.0; len].into_boxed_slice()),
        BaseType::Double => ObjBody::ArrDouble(vec![0.0; len].into_boxed_slice()),
    };
    let desc = format!("[{}", base.descriptor_char());
    let obj_class = vm.well_known.object.expect("bootstrap installed");
    Ok(vm.alloc_raw(obj_class, iso, body, &desc))
}
