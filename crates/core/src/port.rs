//! The inter-unit service/message layer — cross-unit communication for
//! the cluster scheduler (the ROADMAP's "distributed OSGi" step).
//!
//! Cluster units ([`crate::sched`]) are share-nothing `Send` VMs: no
//! reference ever crosses a unit boundary. This module lets them
//! communicate anyway, with the copying semantics the paper's Table 1
//! attributes to Incommunicado-style links: a unit **exports** named
//! services, and guest code on any unit **calls** them with arguments
//! deep-copied through the [`crate::wire`] codec into the target unit's
//! mailbox.
//!
//! ```text
//!   unit A (caller)                hub                unit B (exporter)
//!   ─────────────────          ──────────          ─────────────────────
//!   Service.call ──serialize──▶ mailbox[B] ──drain──▶ pump thread runs
//!     thread blocks             (woken: B)            handler.handle(arg)
//!     (BlockedOnPort)                                     │ return
//!   resume ◀──deserialize── mailbox[A] ◀──serialize──────┘
//! ```
//!
//! **Host-side registry.** The `PortHub` (crate-private; embedders see
//! the read-only [`HubStats`] snapshot) is shared by every unit of one
//! cluster. Its registry is keyed by `(UnitId, name)` — units are
//! *addressable*: the same service name may be exported by several units
//! (sharding), and `Service.callAt(unit, name, x)` targets one
//! explicitly while `Service.call(name, x)` resolves to the lowest
//! exporting unit. Calls made before the service is exported wait in the
//! hub and are delivered on export (service-tracker semantics).
//!
//! **Service pumps.** Exporting spawns one *pump* green thread per
//! service in the exporting VM. A pump has no guest loop: it parks in
//! [`ThreadState::ServicePump`] with an empty frame stack, and request
//! delivery pushes a `handler.handle(arg)` frame onto it directly.
//! Draining its last frame completes the request — the interpreter's
//! thread-exit path hands the result back here (`pump_completed`),
//! which serializes the reply, posts it, and re-parks (or immediately
//! re-dispatches) the pump. One pump serves one request at a time, so
//! each service processes its mailbox strictly in arrival order — the
//! property the cross-scheduler differential tests pin.
//!
//! **Sender-pays accounting (paper §3.2 lifted across units).** Copy
//! cost is charged through [`crate::accounting::ResourceStats::charge_cpu`]
//! to the isolate that *produces* the bytes: the calling isolate pays
//! for the request's serialization, the serving isolate pays for the
//! reply's. The charge is a deterministic function of the payload
//! ([`MSG_BASE_COST`] plus one unit per byte), so per-isolate `cpu_exact`
//! stays bit-identical across scheduler modes.
//!
//! **Delivery points.** Mailboxes are drained only at quantum
//! boundaries, by the scheduler, when it picks the unit up
//! (`Vm::port_drain`); replies are posted when the pump's handler
//! frame returns. Both are deterministic points of the executing VM's
//! own instruction stream, which is what keeps a two-unit ping-pong
//! bit-identical between `Deterministic` and `Parallel(n)` — only the
//! wall-clock time at which a parked unit is resumed may differ. The
//! guarantee is per *message schedule*: when guest code itself races —
//! two units sending to one mailbox concurrently, or a bare-name call
//! racing a same-named export on another unit — arrival (and hence
//! resolution) order is scheduling-dependent in parallel mode. Use
//! data-dependent shapes (request→reply chains) or `callAt` addressing
//! where cross-mode bit-identity matters; the differential corpus does.
//!
//! **Revocation (paper §3.3 lifted across units).** Terminating an
//! isolate drops every service it exported: pending and in-flight calls
//! fail at the caller with `org/ijvm/ServiceRevokedException`, future
//! calls fail immediately, and the pump threads die with the isolate.

use crate::ids::{IsolateId, MethodRef, ThreadId};
use crate::mailbox::Mailbox;
use crate::natives::NativeResult;
use crate::sched::UnitId;
use crate::thread::{ThreadState, VmThread};
use crate::value::{GcRef, Value};
use crate::vm::Vm;
use ijvm_classfile::{AccessFlags, ClassBuilder, ClassFile};
// lint: allow(determinism) — import only; each HashMap field below
// carries its own iteration-order justification.
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

/// Exception raised at a caller whose in-flight or future call targets a
/// service of a terminated isolate.
pub const SERVICE_REVOKED_EXCEPTION: &str = "org/ijvm/ServiceRevokedException";

/// Fixed per-message accounting charge, on top of one exactly-counted
/// "instruction" per serialized byte. Charged to the *sender's* isolate
/// through [`crate::accounting::ResourceStats::charge_cpu`] at the point
/// the copy is produced.
pub const MSG_BASE_COST: u64 = 16;

/// Which handler overload a payload dispatches to (and how the reply is
/// decoded at the caller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PayloadKind {
    /// `int handle(int)` — primitive fast path, no object graph.
    Int,
    /// `Object handle(Object)` — full deep-copied object graphs.
    Obj,
}

impl PayloadKind {
    fn handle_descriptor(self) -> &'static str {
        match self {
            PayloadKind::Int => "(I)I",
            PayloadKind::Obj => "(Ljava/lang/Object;)Ljava/lang/Object;",
        }
    }
}

/// Why a call could not complete, shipped back in the reply envelope.
#[derive(Debug, Clone)]
pub(crate) enum ReplyError {
    /// The serving isolate was terminated (before or during the call).
    Revoked(String),
    /// The handler threw, or the request could not be decoded.
    Failed(String),
}

/// A message in a unit's mailbox.
#[derive(Debug)]
pub(crate) enum Envelope {
    /// A service call (or one-way send) from another unit.
    Request {
        /// Hub-assigned call id, echoed in the reply.
        call: u64,
        /// Unit to post the reply to.
        reply_to: UnitId,
        /// Target service name.
        service: Arc<str>,
        /// Payload kind (selects the handler overload).
        kind: PayloadKind,
        /// Wire-encoded argument.
        bytes: Vec<u8>,
        /// `true` for `Port.send`: no reply is ever produced.
        oneway: bool,
    },
    /// The outcome of a request this unit made earlier.
    Reply {
        /// The call this answers.
        call: u64,
        /// Wire-encoded result, or the failure.
        result: Result<(PayloadKind, Vec<u8>), ReplyError>,
    },
}

/// One exported service as the hub sees it.
#[derive(Debug)]
struct HubService {
    /// Isolate that owns (and is accountable for) the service.
    #[allow(dead_code)]
    isolate: IsolateId,
    /// Set by isolate termination: calls fail with `ServiceRevoked`.
    revoked: bool,
}

/// Failure modes of [`PortHub::send_request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SendError {
    /// Every matching export has been revoked.
    Revoked,
}

/// Successful outcomes of [`PortHub::send_request`].
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum SendOutcome {
    /// Admitted and routed; the reply will carry this call id.
    Sent(u64),
    /// The destination unit is over its mailbox quota. The payload is
    /// handed back so the sender can park and retry; the sending unit is
    /// registered for a wake-up token when the destination drains. The
    /// resolved destination rides along so the sender's park/retry
    /// bookkeeping stays shard-local (no hub-wide scans at pickup).
    OverQuota {
        /// The serialized payload, returned for the retry.
        bytes: Vec<u8>,
        /// The resolved destination unit whose quota rejected the send.
        dest: u32,
    },
}

/// Per-unit mailbox admission quota — the hub's flow control. A
/// destination whose admitted-but-unserved requests reach either bound
/// stops admitting: senders park in
/// [`crate::thread::ThreadState::BlockedOnQuota`] instead of failing
/// (and instead of growing the victim's heap), and their sends are
/// retried at quantum boundaries as the destination drains. Replies are
/// exempt — a full mailbox must never stop a reply from unblocking its
/// caller, or two units calling each other could deadlock on quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct MailboxQuota {
    /// Maximum admitted-but-unserved requests per destination unit.
    pub max_messages: u32,
    /// Maximum admitted-but-unserved request payload bytes per
    /// destination unit.
    pub max_bytes: u64,
}

impl MailboxQuota {
    /// No flow control — the default.
    pub const UNBOUNDED: MailboxQuota = MailboxQuota {
        max_messages: u32::MAX,
        max_bytes: u64::MAX,
    };

    /// Admission check against the current usage. Strict comparison so a
    /// single oversized message still gets through an empty mailbox —
    /// quota throttles floods, it never wedges a sender permanently.
    fn admits(&self, msgs: u32, bytes: u64) -> bool {
        msgs < self.max_messages && bytes < self.max_bytes
    }

    /// `true` for [`MailboxQuota::UNBOUNDED`] — every admission check
    /// passes and no sender can ever park, so the hub skips the quota
    /// cell entirely on such clusters (admission counters stay zero in
    /// [`MailboxStat`]; there is no admitted-but-unserved bound to
    /// report against).
    fn is_unbounded(&self) -> bool {
        *self == MailboxQuota::UNBOUNDED
    }
}

impl Default for MailboxQuota {
    fn default() -> Self {
        MailboxQuota::UNBOUNDED
    }
}

/// Number of service-registry shards — a power of two. Contention on
/// the registry is per shard (per service-name neighborhood), not per
/// cluster.
const REGISTRY_SHARDS: usize = 16;

/// Deterministic shard routing: FNV-1a over the service name's bytes.
/// A pure, platform-independent function of the name — the proptest
/// lane in this module's tests pins that, which is what lets a sharded
/// registry coexist with the bit-identical differential contract.
pub(crate) fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (REGISTRY_SHARDS - 1)
}

/// One shard of the service registry: the exports whose names hash
/// here, plus the unresolved requests awaiting such an export.
/// Resolution and unresolved-parking for one name share this shard's
/// lock, so an export can never slip between a send's registry miss and
/// its park.
#[derive(Debug, Default)]
struct RegistryShard {
    /// Exports by name, then by exporting unit. Both levels are
    /// `BTreeMap` so bare-name resolution deterministically picks the
    /// lowest exporting unit, independent of export order.
    services: BTreeMap<Arc<str>, BTreeMap<UnitId, HubService>>,
    /// Requests parked awaiting an export (service-tracker semantics):
    /// `(name, unit filter, envelope)`.
    unresolved: Vec<(Arc<str>, Option<UnitId>, Envelope)>,
}

/// The per-unit mailbox table plus the wake-token bitmap. Grows (under
/// the write lock) the first time a unit index is addressed; steady
/// state takes the read lock only, so posts from many senders proceed
/// in parallel and never contend with the registry shards or with the
/// receiving unit's drain.
#[derive(Debug, Default)]
struct MailTable {
    boxes: Vec<Arc<Mailbox>>,
    /// One bit per unit with fresh mail (or a quota-release token) since
    /// the scheduler's last sweep. A sweep is one word-scan — O(units/64)
    /// loads plus a `swap` per non-zero word — not a map walk under a
    /// global lock, and it yields units in ascending index order.
    woken: Vec<AtomicU64>,
}

/// The message hub shared by every unit of one cluster: service registry,
/// mailboxes, admission quotas and wake-up tokens. Created by the
/// [`crate::sched::ClusterBuilder`]; units reach it through the
/// [`crate::vm::Vm`] they were submitted as. Embedders observe it
/// through [`HubStats`] snapshots only.
///
/// Sharded for scale: the registry is split over [`REGISTRY_SHARDS`]
/// name-hashed shards, mailboxes are per-unit MPSC rings
/// ([`crate::mailbox::Mailbox`]) reached through an `RwLock` that is
/// write-locked only to grow the table, and quota accounting lives in
/// each destination mailbox's own cell. There is no hub-global mutex on
/// any send/drain/flush path. Lock order, where paths take more than
/// one: registry shard → mailbox table (read) → a mailbox quota cell;
/// [`PortHub::stats`] is the only path holding several shard/quota locks
/// at once, and every other path holds at most one.
#[derive(Debug, Default)]
pub(crate) struct PortHub {
    /// The sharded service registry (lock per shard, not per cluster).
    registry: [Mutex<RegistryShard>; REGISTRY_SHARDS],
    /// Per-unit mailboxes and the wake bitmap.
    table: RwLock<MailTable>,
    /// Call-id allocator. Ids are matched sender-side per reply and
    /// never compared across scheduler modes (latency is measured in
    /// vclock ticks), so a racy `fetch_add` order is fine.
    next_call: AtomicU64,
    /// Cluster-wide per-unit admission quota (immutable after build).
    quota: MailboxQuota,
    /// Fast-path mirror of "some wake bit may be set", so idle scheduler
    /// sweeps don't touch the table at all. The sweep clears it *before*
    /// scanning the words; because the per-word RMWs are `AcqRel`, a
    /// post whose bit the scan missed re-raises the flag afterwards — a
    /// `false` read can only miss a post that had not completed yet.
    woken_flag: AtomicBool,
    /// Cluster-wide undelivered-envelope counter, shared with every
    /// mailbox the table grows ([`Mailbox::with_pending`]). Incremented
    /// before an enqueue, decremented after a drain removed the
    /// envelope, so it never undercounts what is queued — which makes
    /// [`PortHub::quiescent`] one load plus the word-scan instead of an
    /// O(units) walk over every ring.
    pending: Arc<AtomicUsize>,
}

impl PortHub {
    /// A hub with the given per-unit admission quota.
    pub(crate) fn with_quota(quota: MailboxQuota) -> PortHub {
        PortHub {
            quota,
            ..PortHub::default()
        }
    }

    /// The mailbox for `unit`, growing the table on first contact.
    /// Cold-path form (clones the `Arc`); the per-message paths hold
    /// one [`PortHub::table_for`] read guard instead.
    fn mailbox(&self, unit: u32) -> Arc<Mailbox> {
        let table = self.table_for(unit);
        Arc::clone(&table.boxes[unit as usize])
    }

    /// A read guard whose table covers `unit` — the single table access
    /// of the per-message paths. Growth is the slow path: once the
    /// topology is built, every call is one uncontended read lock.
    fn table_for(&self, unit: u32) -> RwLockReadGuard<'_, MailTable> {
        loop {
            let table = self.table.read().unwrap();
            if table.boxes.len() > unit as usize {
                return table;
            }
            drop(table);
            self.grow(unit);
        }
    }

    /// Grows the mailbox table (and the wake bitmap) to cover `unit`.
    fn grow(&self, unit: u32) {
        let mut table = self.table.write().unwrap();
        let need = unit as usize + 1;
        if table.boxes.len() < need {
            let pending = &self.pending;
            table.boxes.resize_with(need, || {
                Arc::new(Mailbox::with_pending(Arc::clone(pending)))
            });
        }
        let words = need.div_ceil(64);
        if table.woken.len() < words {
            table.woken.resize_with(words, AtomicU64::default);
        }
    }

    /// Registers `unit`'s mailbox and hands it back for the unit to
    /// cache. After this, the unit's own drains, emptiness checks and
    /// park-decision re-checks go straight to its mailbox — a
    /// compute-only unit touches nothing hub-global at pickup.
    pub(crate) fn register_unit(&self, unit: UnitId) -> Arc<Mailbox> {
        self.mailbox(unit.index())
    }

    /// Sets `unit`'s wake bit, then raises the cluster-wide flag. A wake
    /// token can target a unit no send has addressed yet (a parked
    /// sender whose own index is higher than any destination's);
    /// [`PortHub::table_for`] gives it a slot.
    fn set_woken(&self, unit: u32) {
        {
            let table = self.table_for(unit);
            table.woken[unit as usize / 64].fetch_or(1 << (unit % 64), Ordering::AcqRel);
        }
        self.woken_flag.store(true, Ordering::Release);
    }

    /// Posts `env` to `unit`'s mailbox and leaves a wake token — ring
    /// push and wake bit under one table read guard, so a delivery is a
    /// single lock acquisition.
    fn post(&self, unit: u32, env: Envelope) {
        {
            let table = self.table_for(unit);
            table.boxes[unit as usize].post(env);
            table.woken[unit as usize / 64].fetch_or(1 << (unit % 64), Ordering::AcqRel);
        }
        self.woken_flag.store(true, Ordering::Release);
    }

    /// Registers `(unit, name)` and routes any requests parked awaiting
    /// this export into the unit's mailbox. Parked requests bypass the
    /// admission check (their senders are already blocked on the reply)
    /// but are still accounted, so the destination sheds new load until
    /// it works through them.
    pub(crate) fn export(&self, unit: UnitId, name: Arc<str>, isolate: IsolateId) {
        let routed: Vec<Envelope> = {
            let mut shard = self.registry[shard_of(&name)].lock().unwrap();
            shard.services.entry(Arc::clone(&name)).or_default().insert(
                unit,
                HubService {
                    isolate,
                    revoked: false,
                },
            );
            let pending = std::mem::take(&mut shard.unresolved);
            let mut routed = Vec::new();
            for (n, filter, env) in pending {
                if *n == *name && filter.is_none_or(|u| u == unit) {
                    routed.push(env);
                } else {
                    shard.unresolved.push((n, filter, env));
                }
            }
            routed
        };
        for env in routed {
            if !self.quota.is_unbounded() {
                if let Envelope::Request { ref bytes, .. } = env {
                    let mb = self.mailbox(unit.index());
                    let mut cell = mb.quota_cell();
                    cell.msgs += 1;
                    cell.bytes += bytes.len() as u64;
                }
            }
            self.post(unit.index(), env);
        }
    }

    /// Marks `(unit, name)` revoked; subsequent sends fail fast. Senders
    /// parked on the unit's quota are woken so their retry observes the
    /// revocation instead of waiting for a drain that may never come.
    pub(crate) fn revoke(&self, unit: UnitId, name: &str) {
        {
            let mut shard = self.registry[shard_of(name)].lock().unwrap();
            if let Some(units) = shard.services.get_mut(name) {
                if let Some(svc) = units.get_mut(&unit) {
                    svc.revoked = true;
                }
            }
        }
        let waiters: Vec<u32> = self.mailbox(unit.index()).quota_cell().waiters.clone();
        for waiter in waiters {
            self.set_woken(waiter);
        }
    }

    /// Routes a request: to `target`'s mailbox when addressed, to the
    /// lowest exporting unit otherwise, or parks it awaiting export.
    /// Resolution and unresolved-parking happen under the name's
    /// registry shard lock (an export cannot slip between the miss and
    /// the park); admission and waiter registration happen under the
    /// destination mailbox's own quota lock (a concurrent release cannot
    /// slip between the check and the registration).
    pub(crate) fn send_request(
        &self,
        from: UnitId,
        target: Option<UnitId>,
        name: &str,
        kind: PayloadKind,
        bytes: Vec<u8>,
        oneway: bool,
    ) -> Result<SendOutcome, SendError> {
        let (dest, service): (UnitId, Arc<str>) = {
            let mut shard = self.registry[shard_of(name)].lock().unwrap();
            let mut resolved = None;
            let mut any_revoked = false;
            // The inner map iterates units in ascending order, so the
            // bare-name path picks the lowest live exporter; the key's
            // `Arc<str>` is reused — the hot path allocates no name copy.
            if let Some((key, units)) = shard.services.get_key_value(name) {
                for (u, svc) in units.iter() {
                    if target.is_none_or(|t| t == *u) {
                        if svc.revoked {
                            any_revoked = true;
                        } else {
                            resolved = Some((*u, Arc::clone(key)));
                            break;
                        }
                    }
                }
            }
            match resolved {
                Some(hit) => hit,
                None if any_revoked => return Err(SendError::Revoked),
                None => {
                    let call = self.next_call.fetch_add(1, Ordering::Relaxed) + 1;
                    let name_arc: Arc<str> = Arc::from(name);
                    let env = Envelope::Request {
                        call,
                        reply_to: from,
                        service: Arc::clone(&name_arc),
                        kind,
                        bytes,
                        oneway,
                    };
                    shard.unresolved.push((name_arc, target, env));
                    return Ok(SendOutcome::Sent(call));
                }
            }
        };
        // Admission, ring push and wake bit all under one table read
        // guard — the entire delivery is one lock acquisition plus the
        // destination's quota cell (lock order: table read → quota
        // cell, as documented on [`PortHub`]).
        let d = dest.index() as usize;
        let call = {
            let table = self.table_for(dest.index());
            let mb = &table.boxes[d];
            if !self.quota.is_unbounded() {
                let mut cell = mb.quota_cell();
                if !self.quota.admits(cell.msgs, cell.bytes) {
                    let sender = from.index();
                    if !cell.waiters.contains(&sender) {
                        cell.waiters.push(sender);
                    }
                    return Ok(SendOutcome::OverQuota {
                        bytes,
                        dest: dest.index(),
                    });
                }
                cell.msgs += 1;
                cell.bytes += bytes.len() as u64;
            }
            let call = self.next_call.fetch_add(1, Ordering::Relaxed) + 1;
            let env = Envelope::Request {
                call,
                reply_to: from,
                service,
                kind,
                bytes,
                oneway,
            };
            mb.post(env);
            table.woken[d / 64].fetch_or(1 << (d % 64), Ordering::AcqRel);
            call
        };
        self.woken_flag.store(true, Ordering::Release);
        Ok(SendOutcome::Sent(call))
    }

    /// One boundary transaction for a serving unit: posts its coalesced
    /// replies and returns the quota capacity of the requests it served
    /// this quantum, waking any senders the release lets back in. Called
    /// from [`Vm::port_quantum_flush`] — mid-slice service work never
    /// touches the hub.
    pub(crate) fn flush_boundary(
        &self,
        unit: UnitId,
        outbox: &mut Vec<(UnitId, Envelope)>,
        served_msgs: u32,
        served_bytes: u64,
    ) {
        if outbox.is_empty() && (served_msgs == 0 || self.quota.is_unbounded()) {
            return;
        }
        // The whole boundary is one table read guard: every reply post,
        // its wake bit, and the serving unit's quota release (lock
        // order: table read → quota cell, as documented on [`PortHub`]).
        let mut need = unit.index();
        for (to, _) in outbox.iter() {
            need = need.max(to.index());
        }
        let posted = !outbox.is_empty();
        let waiters: Vec<u32> = {
            let table = self.table_for(need);
            for (to, env) in outbox.drain(..) {
                let d = to.index() as usize;
                table.boxes[d].post(env);
                table.woken[d / 64].fetch_or(1 << (d % 64), Ordering::AcqRel);
            }
            if served_msgs > 0 && !self.quota.is_unbounded() {
                let mut cell = table.boxes[unit.index() as usize].quota_cell();
                cell.msgs = cell.msgs.saturating_sub(served_msgs);
                cell.bytes = cell.bytes.saturating_sub(served_bytes);
                if self.quota.admits(cell.msgs, cell.bytes) {
                    cell.waiters.clone()
                } else {
                    Vec::new()
                }
            } else {
                Vec::new()
            }
        };
        if posted {
            self.woken_flag.store(true, Ordering::Release);
        }
        // Wake bits for released senders are set after the quota lock
        // drops (no quota lock is ever held across a *new* table
        // acquisition). No wake-up can be lost to the gap: the waiter
        // registrations stay in the cell, and a sender whose admission
        // check runs after the release observes the post-release
        // counters.
        for waiter in waiters {
            self.set_woken(waiter);
        }
    }

    /// Drops `sender`'s quota-waiter registrations everywhere. Cold-path
    /// form for isolate revocation, which abandons pending sends without
    /// tracking their parked destinations; the per-pickup retry sweep
    /// uses the targeted [`PortHub::clear_quota_waits_at`].
    pub(crate) fn clear_quota_waits(&self, sender: UnitId) {
        let boxes: Vec<Arc<Mailbox>> = {
            let table = self.table.read().unwrap();
            table.boxes.iter().map(Arc::clone).collect()
        };
        for mb in boxes {
            mb.quota_cell().waiters.retain(|&s| s != sender.index());
        }
    }

    /// Drops `sender`'s quota-waiter registrations at its parked
    /// destinations. The sender's retry sweep calls this first, then
    /// re-registers through [`PortHub::send_request`] for each send
    /// still over quota.
    pub(crate) fn clear_quota_waits_at(&self, sender: UnitId, dests: &[u32]) {
        for &d in dests {
            self.mailbox(d)
                .quota_cell()
                .waiters
                .retain(|&s| s != sender.index());
        }
    }

    /// `true` when `sender` has a registered quota-park at one of
    /// `dests` whose destination now admits. The scheduler re-checks
    /// this under its park lock — the mirror of the mailbox re-check —
    /// closing the race where the release token fired while the sender
    /// was still running and was dropped by the wake-up sweep.
    pub(crate) fn retry_ready_at(&self, sender: UnitId, dests: &[u32]) -> bool {
        dests.iter().any(|&d| {
            let mb = self.mailbox(d);
            let cell = mb.quota_cell();
            cell.waiters.contains(&sender.index()) && self.quota.admits(cell.msgs, cell.bytes)
        })
    }

    /// Hub-wide [`PortHub::retry_ready_at`], for unit tests and the loom
    /// models (which don't thread parked destinations around).
    #[cfg(test)]
    pub(crate) fn retry_ready(&self, sender: UnitId) -> bool {
        let units = self.table.read().unwrap().boxes.len() as u32;
        (0..units).any(|d| self.retry_ready_at(sender, &[d]))
    }

    /// Drains `unit`'s mailbox into `out`. Test/model form — the runtime
    /// drain goes through the unit's own cached mailbox
    /// ([`Vm::port_drain`]) and never locks the table.
    #[cfg(test)]
    pub(crate) fn take_mail_into(&self, unit: UnitId, out: &mut Vec<Envelope>) {
        self.mailbox(unit.index()).drain_into(out);
    }

    /// `true` when `unit` has undelivered mail. Test/model form — the
    /// scheduler asks the unit's cached mailbox instead.
    #[cfg(test)]
    pub(crate) fn has_mail(&self, unit: UnitId) -> bool {
        let table = self.table.read().unwrap();
        table
            .boxes
            .get(unit.index() as usize)
            .is_some_and(|mb| mb.has_mail())
    }

    /// `true` when some unit may have received mail since the last sweep
    /// (one atomic load; may say `true` spuriously, never misses a post
    /// that completed before the load).
    pub(crate) fn has_woken(&self) -> bool {
        self.woken_flag.load(Ordering::Acquire)
    }

    /// Drains every pending wake token into `out`, in ascending unit
    /// order — one batched word-scan per scheduler sweep. The flag is
    /// cleared first: a post racing the scan either lands its bit before
    /// the word is swapped (harvested now) or, having read the swapped
    /// word value through its `AcqRel` RMW, re-raises the flag strictly
    /// after this clear (harvested next sweep). Either way no token is
    /// lost.
    pub(crate) fn drain_woken_into(&self, out: &mut Vec<u32>) {
        self.woken_flag.store(false, Ordering::Release);
        let table = self.table.read().unwrap();
        for (wi, word) in table.woken.iter().enumerate() {
            if word.load(Ordering::Acquire) == 0 {
                continue;
            }
            let mut bits = word.swap(0, Ordering::AcqRel);
            while bits != 0 {
                let bit = bits.trailing_zeros();
                out.push(wi as u32 * 64 + bit);
                bits &= bits - 1;
            }
        }
    }

    /// `true` when no undelivered mail or wake-up token exists anywhere —
    /// the hub-side half of the cluster's quiescence check. Requests
    /// parked awaiting an export that never happens do *not* block
    /// quiescence: their callers stay blocked and their units report it.
    /// One load of the shared pending counter (which never undercounts
    /// what is queued — see [`Mailbox::with_pending`]) plus the
    /// O(units/64) word-scan; never a walk over the rings, so the check
    /// stays cheap at 1000+ units. A post that is mid-flight keeps the
    /// counter nonzero, so a `true` here cannot miss queued mail — the
    /// spurious direction is `false`, which the caller retries.
    pub(crate) fn quiescent(&self) -> bool {
        if self.pending.load(Ordering::Acquire) != 0 {
            return false;
        }
        let table = self.table.read().unwrap();
        table.woken.iter().all(|w| w.load(Ordering::Acquire) == 0)
    }

    /// Number of requests parked awaiting an export (introspection; the
    /// embedder-facing equivalent is [`HubStats::unresolved_requests`]).
    #[cfg(test)]
    pub(crate) fn unresolved_requests(&self) -> usize {
        self.registry
            .iter()
            .map(|s| s.lock().unwrap().unresolved.len())
            .sum()
    }

    /// Exported service names, in `(unit, name)` order (introspection;
    /// the embedder-facing equivalent is [`HubStats::services`]).
    #[cfg(test)]
    pub(crate) fn service_names(&self) -> Vec<(u32, String)> {
        let mut out = Vec::new();
        for shard in self.registry.iter() {
            let shard = shard.lock().unwrap();
            for (name, units) in shard.services.iter() {
                for (u, svc) in units.iter() {
                    if !svc.revoked {
                        out.push((u.index(), name.to_string()));
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// A read-only snapshot of the hub — the embedder-facing view
    /// ([`crate::sched::Cluster::hub_stats`]). Coherent across shards:
    /// every registry shard and every mailbox's quota cell is held
    /// locked simultaneously while the rows are read, so totals cannot
    /// tear between shard locks. The pile-up cannot deadlock: every
    /// other hub path holds at most one shard or quota lock at a time,
    /// and this one acquires them in a fixed order (shards ascending,
    /// then cells ascending).
    pub(crate) fn stats(&self) -> HubStats {
        let shards: Vec<_> = self.registry.iter().map(|s| s.lock().unwrap()).collect();
        let table = self.table.read().unwrap();
        let cells: Vec<_> = table.boxes.iter().map(|mb| mb.quota_cell()).collect();
        let mut services: Vec<ServiceStat> = Vec::new();
        for shard in shards.iter() {
            for (name, units) in shard.services.iter() {
                for (u, svc) in units.iter() {
                    if !svc.revoked {
                        services.push(ServiceStat {
                            unit: u.index(),
                            name: name.to_string(),
                        });
                    }
                }
            }
        }
        services.sort_by(|a, b| (a.unit, &a.name).cmp(&(b.unit, &b.name)));
        let mut mailboxes = Vec::new();
        for (u, (mb, cell)) in table.boxes.iter().zip(cells.iter()).enumerate() {
            let row = MailboxStat {
                unit: u as u32,
                queued: mb.queued_len(),
                admitted_messages: cell.msgs,
                admitted_bytes: cell.bytes,
                parked_senders: cell.waiters.len(),
            };
            if row.queued > 0
                || row.admitted_messages > 0
                || row.admitted_bytes > 0
                || row.parked_senders > 0
            {
                mailboxes.push(row);
            }
        }
        HubStats {
            services,
            mailboxes,
            unresolved_requests: shards.iter().map(|s| s.unresolved.len()).sum(),
            quota: self.quota,
        }
    }
}

/// Read-only snapshot of a cluster's hub: live exports, per-unit mailbox
/// depths and quota state. The embedder-facing replacement for direct
/// hub access — obtain one from [`crate::sched::Cluster::hub_stats`]
/// before the run, or from
/// [`crate::sched::ClusterOutcome::hub_stats`] after it.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct HubStats {
    /// Live (non-revoked) exports, in `(unit, name)` order.
    pub services: Vec<ServiceStat>,
    /// Per-unit mailbox state, in unit order; units with no queued,
    /// admitted or parked traffic are omitted.
    pub mailboxes: Vec<MailboxStat>,
    /// Requests parked awaiting an export that has not happened yet.
    pub unresolved_requests: usize,
    /// The cluster-wide per-unit admission quota.
    pub quota: MailboxQuota,
}

/// One live export in a [`HubStats`] snapshot.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceStat {
    /// Exporting unit (its submit index).
    pub unit: u32,
    /// Service name.
    pub name: String,
}

/// One unit's mailbox in a [`HubStats`] snapshot.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct MailboxStat {
    /// The unit (its submit index).
    pub unit: u32,
    /// Envelopes posted and not yet drained.
    pub queued: usize,
    /// Requests admitted under quota and not yet served.
    pub admitted_messages: u32,
    /// Payload bytes admitted under quota and not yet served.
    pub admitted_bytes: u64,
    /// Senders currently parked on this unit's quota.
    pub parked_senders: usize,
}

/// Where a request came from, so the reply can find its way back.
#[derive(Debug, Clone, Copy)]
enum ReplyTo {
    /// Another unit, via the hub.
    Unit(UnitId),
    /// A caller in this same VM (local call on an unattached VM).
    Local,
}

/// A request delivered to a pump, ready to dispatch.
#[derive(Debug)]
struct ReadyRequest {
    call: u64,
    reply_to: ReplyTo,
    kind: PayloadKind,
    bytes: Vec<u8>,
    oneway: bool,
}

/// The request a pump is currently serving.
#[derive(Debug, Clone, Copy)]
struct CurrentCall {
    call: u64,
    reply_to: ReplyTo,
    kind: PayloadKind,
    oneway: bool,
    /// The request's quota contribution — `(1, payload bytes)` for a
    /// hub-routed request, `(0, 0)` for a local one — released when the
    /// request reaches its terminal disposition (handler returned,
    /// threw, or was revoked). Releasing at *completion* rather than at
    /// dispatch keeps the quota an honest bound on payloads resident at
    /// the destination.
    quota: (u32, u64),
}

/// One exported service inside its VM: the pump thread plus the resolved
/// handler methods and the request queue.
#[derive(Debug)]
struct Pump {
    thread: ThreadId,
    isolate: IsolateId,
    handler_pin: usize,
    handle_int: Option<MethodRef>,
    handle_obj: Option<MethodRef>,
    queue: VecDeque<ReadyRequest>,
    current: Option<CurrentCall>,
}

/// Who consumes a reply, routed by request id: a thread parked in the
/// blocking `Service.call`, or a pending future created by
/// `Service.post` (whose owner may be off running something else).
#[derive(Debug, Clone, Copy)]
enum Waiter {
    Thread(ThreadId),
    Future(u32),
}

/// A guest-visible future (`ijvm/Future`), created by `Service.post`.
/// The guest object carries only the id; all state lives here.
#[derive(Debug)]
struct FutureState {
    /// Isolate that created the future. Terminating it revokes the
    /// future deterministically (the late reply is dropped).
    owner: IsolateId,
    /// A thread parked in `get`, with the payload kind its overload
    /// decodes (`get` = int, `getObject` = object graph).
    waiter: Option<(ThreadId, PayloadKind)>,
    slot: FutureSlot,
}

#[derive(Debug)]
enum FutureSlot {
    /// Reply not yet delivered; `call` routes it here (0 while the send
    /// itself is still parked on the destination's quota).
    Pending { call: u64 },
    /// Reply arrived; consumed by the first `get`.
    Ready(Result<(PayloadKind, Vec<u8>), ReplyError>),
    /// Cancelled before the reply arrived; `get` throws.
    Cancelled,
}

/// A send parked because its destination was over quota. The payload was
/// serialized and charged before parking — sender-pays happens exactly
/// once — and only the hub admission is retried, at every
/// quantum-boundary drain, in send order.
#[derive(Debug)]
struct PendingSend {
    thread: ThreadId,
    target: Option<UnitId>,
    name: Arc<str>,
    kind: PayloadKind,
    bytes: Vec<u8>,
    mode: SendMode,
    /// The destination whose quota parked this send (where the waiter
    /// registration lives), so retry sweeps and park re-checks stay
    /// shard-local instead of scanning every mailbox.
    parked_dest: u32,
}

/// What a [`PendingSend`] resumes as once admitted.
#[derive(Debug, Clone, Copy)]
enum SendMode {
    /// Blocking `Service.call`: on admission the thread rolls over into
    /// `BlockedOnPort`, still parked, awaiting the reply.
    Call,
    /// `Service.post`: the future ref is already on the sender's operand
    /// stack; admission wires the call id to the future and wakes the
    /// sender.
    Post {
        /// The future handed back by the parked `post`.
        future: u32,
    },
    /// `Port.send`: fire-and-forget; admission just wakes the sender.
    Oneway,
}

/// Per-VM port state: the cluster attachment, the service pumps this VM
/// exports, and the threads waiting on replies. Always present (so
/// services can be exported before the VM is submitted to a cluster);
/// inert until guest code touches the `ijvm/Service` surface.
#[derive(Debug, Default)]
pub(crate) struct PortState {
    /// Set by [`crate::sched::Cluster::submit`].
    attach: Option<(UnitId, Arc<PortHub>)>,
    /// This unit's own hub mailbox, cached at attach: drains, emptiness
    /// checks and park re-checks go straight here, so the unit never
    /// locks the hub's mailbox table for its own mail.
    own_box: Option<Arc<Mailbox>>,
    pumps: BTreeMap<Arc<str>, Pump>,
    /// Reply routing by call id. Hot path (touched per call/reply), so
    /// it stays a HashMap.
    // lint: allow(determinism) — keyed insert/remove only, never
    // iterated, so hash order is unobservable.
    waiting: HashMap<u64, Waiter>,
    /// Live futures by id (the guest object's `id` field). Hot path.
    // lint: allow(determinism) — keyed access; the one iteration
    // (port_revoke_isolate) sorts the collected ids before acting.
    futures: HashMap<u32, FutureState>,
    /// Future-id allocator.
    next_future: u32,
    /// Sends parked on a destination's quota, in send order.
    pending_sends: VecDeque<PendingSend>,
    /// Replies produced mid-slice, coalesced into one hub post at the
    /// quantum boundary ([`crate::vm::Vm::port_quantum_flush`]).
    outbox: Vec<(UnitId, Envelope)>,
    /// Quota capacity of requests this VM finished serving since the
    /// last boundary flush: `(messages, payload bytes)`.
    served: (u32, u64),
    /// Call ids for local (unattached) dispatches, allocated from the top
    /// of the id space so they can never collide with hub-assigned ids.
    next_local_call: u64,
    /// Reused buffer for mailbox drains (no steady-state allocation on
    /// the ping-pong path).
    drain_scratch: Vec<Envelope>,
    /// One-entry service-name decode cache: guest code overwhelmingly
    /// passes the same interned string constant on every call, so the
    /// UTF-16 decode + allocation is paid once per (ref, GC epoch).
    name_cache: Option<(GcRef, u64, Arc<str>)>,
}

impl PortState {
    /// `true` when outside input is still expected: a reply for a parked
    /// call or a pending future, or an admission retry for a
    /// quota-parked send — [`crate::vm::Vm::run`] reports
    /// [`crate::vm::RunOutcome::Blocked`] instead of `Deadlock`/`Idle`
    /// while this holds.
    pub(crate) fn has_waiters(&self) -> bool {
        !self.waiting.is_empty() || !self.pending_sends.is_empty()
    }

    /// `true` when the unit must stay schedulable after going idle:
    /// it exports live services, has calls or futures in flight, or has
    /// sends parked on a destination's quota.
    pub(crate) fn keeps_unit_alive(&self) -> bool {
        !self.pumps.is_empty() || !self.waiting.is_empty() || !self.pending_sends.is_empty()
    }

    fn alloc_local_call(&mut self) -> u64 {
        self.next_local_call += 1;
        u64::MAX - self.next_local_call
    }

    fn alloc_future(&mut self) -> u32 {
        self.next_future += 1;
        self.next_future
    }

    /// Accounts released quota capacity (a served request's
    /// [`CurrentCall::quota`] contribution) for the next boundary flush.
    fn note_served_counts(&mut self, (msgs, bytes): (u32, u64)) {
        self.served.0 += msgs;
        self.served.1 += bytes;
    }

    /// Accounts one hub-admitted request as served, for the next
    /// boundary flush. Local dispatches never passed admission and are
    /// exempt.
    fn note_served(&mut self, req: &ReadyRequest) {
        if matches!(req.reply_to, ReplyTo::Unit(_)) {
            self.served.0 += 1;
            self.served.1 += req.bytes.len() as u64;
        }
    }
}

impl Vm {
    /// Attaches this VM to a cluster hub as `unit`, publishing every
    /// already-exported service into the hub registry. Called by
    /// [`crate::sched::Cluster::submit`].
    pub(crate) fn attach_port(&mut self, unit: UnitId, hub: Arc<PortHub>) {
        for (name, pump) in &self.port.pumps {
            hub.export(unit, Arc::clone(name), pump.isolate);
        }
        if let Some(ts) = self.trace.as_mut() {
            ts.unit = crate::trace::clamp_id(unit.index());
        }
        self.port.own_box = Some(hub.register_unit(unit));
        self.port.attach = Some((unit, hub));
    }

    /// Drains this unit's mailbox, delivering every envelope: requests
    /// dispatch onto (or queue behind) their service pump, replies wake
    /// their waiting caller. The scheduler calls this at every quantum
    /// boundary, before running a slice.
    pub(crate) fn port_drain(&mut self) {
        // Fast path: a unit with no exports, no calls in flight and no
        // quota-parked sends can receive no mail (requests need a
        // registry entry, replies a waiter), so compute-only units skip
        // the hub lock entirely. The one exception — a request that
        // raced in just before this unit's services were revoked — is
        // caught by the scheduler's finish-path mailbox check, which
        // calls `port_drain_force`.
        if self.port.pumps.is_empty()
            && self.port.waiting.is_empty()
            && self.port.pending_sends.is_empty()
        {
            return;
        }
        self.port_drain_force();
    }

    /// Unconditional mailbox drain (see [`Vm::port_drain`]). Drains the
    /// unit's own cached mailbox ring directly — senders post to the
    /// ring without a lock, and the drain never contends with them.
    pub(crate) fn port_drain_force(&mut self) {
        let Some(own) = self.port.own_box.clone() else {
            return;
        };
        let mut mail = std::mem::take(&mut self.port.drain_scratch);
        own.drain_into(&mut mail);
        if !mail.is_empty() {
            self.trace_mail_drain(mail.len() as u64);
        }
        for env in mail.drain(..) {
            match env {
                Envelope::Request {
                    call,
                    reply_to,
                    service,
                    kind,
                    bytes,
                    oneway,
                } => {
                    let req = ReadyRequest {
                        call,
                        reply_to: ReplyTo::Unit(reply_to),
                        kind,
                        bytes,
                        oneway,
                    };
                    self.pump_enqueue(&service, req);
                }
                Envelope::Reply { call, result } => deliver_reply(self, call, result),
            }
        }
        self.port.drain_scratch = mail;
        self.port_retry_pending();
    }

    /// Retries quota-parked sends in send order — the unpark half of the
    /// flow-control protocol, run at every quantum-boundary drain. Each
    /// retry goes back through hub admission: success resumes the send
    /// as if it had never parked, a still-full destination re-registers
    /// for its wake-up token, and a revocation fails the send the same
    /// way it would have failed synchronously.
    fn port_retry_pending(&mut self) {
        if self.port.pending_sends.is_empty() {
            return;
        }
        let Some((unit, hub)) = self.port.attach.clone() else {
            return;
        };
        // Registrations are rebuilt from scratch each sweep so stale
        // entries (dropped sends, terminated threads) cannot accumulate.
        // Only the destinations this unit is actually parked on are
        // touched — the sweep is shard-local, not a hub-wide scan.
        let mut dests: Vec<u32> = self
            .port
            .pending_sends
            .iter()
            .map(|p| p.parked_dest)
            .collect();
        dests.sort_unstable();
        dests.dedup();
        hub.clear_quota_waits_at(unit, &dests);
        let rounds = self.port.pending_sends.len();
        for _ in 0..rounds {
            let Some(ps) = self.port.pending_sends.pop_front() else {
                break;
            };
            let PendingSend {
                thread: tid,
                target,
                name,
                kind,
                bytes,
                mode,
                parked_dest: _,
            } = ps;
            // The parked thread was interrupted or terminated meanwhile:
            // the send is abandoned.
            if self.threads[tid.0 as usize].state != ThreadState::BlockedOnQuota {
                continue;
            }
            let iso = self.threads[tid.0 as usize].current_isolate;
            let oneway = matches!(mode, SendMode::Oneway);
            match hub.send_request(unit, target, &name, kind, bytes, oneway) {
                Ok(SendOutcome::Sent(call)) => {
                    self.trace_emit(
                        crate::trace::EventKind::QuotaUnpark,
                        Some(iso),
                        Some(tid),
                        call,
                    );
                    match mode {
                        SendMode::Call => {
                            self.port.waiting.insert(call, Waiter::Thread(tid));
                            self.threads[tid.0 as usize].state =
                                ThreadState::BlockedOnPort { call };
                            self.trace_call_send(call, iso, tid, crate::trace::EventKind::CallSend);
                        }
                        SendMode::Post { future } => {
                            if let Some(f) = self.port.futures.get_mut(&future) {
                                if matches!(f.slot, FutureSlot::Pending { .. }) {
                                    f.slot = FutureSlot::Pending { call };
                                }
                            }
                            self.port.waiting.insert(call, Waiter::Future(future));
                            self.trace_call_send(
                                call,
                                iso,
                                tid,
                                crate::trace::EventKind::FuturePost,
                            );
                            self.wake(tid);
                        }
                        SendMode::Oneway => {
                            self.trace_emit(
                                crate::trace::EventKind::OnewaySend,
                                Some(iso),
                                Some(tid),
                                call,
                            );
                            self.wake(tid);
                        }
                    }
                }
                Ok(SendOutcome::OverQuota { bytes, dest }) => {
                    self.port.pending_sends.push_back(PendingSend {
                        thread: tid,
                        target,
                        name,
                        kind,
                        bytes,
                        mode,
                        parked_dest: dest,
                    });
                }
                Err(SendError::Revoked) => {
                    let msg = format!("service '{name}' revoked: isolate terminated");
                    match mode {
                        SendMode::Call => {
                            let ex = crate::interp::alloc_exception(
                                self,
                                tid,
                                SERVICE_REVOKED_EXCEPTION,
                                &msg,
                            );
                            self.threads[tid.0 as usize].pending_exception = Some(ex);
                        }
                        SendMode::Post { future } => {
                            if let Some(f) = self.port.futures.get_mut(&future) {
                                if matches!(f.slot, FutureSlot::Pending { .. }) {
                                    f.slot = FutureSlot::Ready(Err(ReplyError::Revoked(msg)));
                                }
                            }
                        }
                        SendMode::Oneway => {} // dropped silently, like port_send
                    }
                    self.wake(tid);
                }
            }
        }
    }

    /// Flushes this unit's coalesced replies and served-request quota to
    /// the hub in one transaction. The scheduler calls this at every
    /// quantum boundary — after the slice, and again after finish-path
    /// force drains — in both scheduler modes, so delivery points stay
    /// bit-identical.
    pub(crate) fn port_quantum_flush(&mut self) {
        let (msgs, bytes) = std::mem::take(&mut self.port.served);
        if self.port.outbox.is_empty() && msgs == 0 {
            return;
        }
        let Some((unit, hub)) = self.port.attach.clone() else {
            self.port.outbox.clear();
            return;
        };
        let mut outbox = std::mem::take(&mut self.port.outbox);
        hub.flush_boundary(unit, &mut outbox, msgs, bytes);
        self.port.outbox = outbox;
    }

    /// Revokes every service exported by `iso`: replies `ServiceRevoked`
    /// to its pending and queued calls, marks the hub entries revoked,
    /// and retires idle pump threads (busy ones die with the isolate's
    /// `StoppedIsolateException`). Also revokes the isolate's pending
    /// futures — their reply routing is dropped so late replies are
    /// discarded — and abandons its quota-parked sends (their threads
    /// already took the termination exception). Called by isolate
    /// termination.
    pub(crate) fn port_revoke_isolate(&mut self, iso: IsolateId) {
        let names: Vec<Arc<str>> = self
            .port
            .pumps
            .iter()
            .filter(|(_, p)| p.isolate == iso)
            .map(|(n, _)| Arc::clone(n))
            .collect();
        for name in names {
            revoke_pump(self, &name);
        }
        let mut dead: Vec<u32> = self
            .port
            .futures
            .iter()
            .filter(|(_, f)| f.owner == iso)
            .map(|(id, _)| *id)
            .collect();
        // Collected from a HashMap: sort so the processing order (and
        // anything it may ever feed) is independent of hash order.
        dead.sort_unstable();
        for fid in dead {
            if let Some(f) = self.port.futures.remove(&fid) {
                if let FutureSlot::Pending { call } = f.slot {
                    self.port.waiting.remove(&call);
                }
            }
        }
        let threads = &self.threads;
        self.port
            .pending_sends
            .retain(|ps| threads[ps.thread.0 as usize].state == ThreadState::BlockedOnQuota);
        // The retry sweep only clears this unit's hub waiter pairs when
        // it has pending sends left to re-register; if the revocation
        // just abandoned the last one, drop the stale pairs here or an
        // admitting destination would requeue this unit forever.
        if self.port.pending_sends.is_empty() {
            if let Some((unit, hub)) = self.port.attach.clone() {
                hub.clear_quota_waits(unit);
            }
        }
    }

    /// `true` when this unit must stay schedulable after going idle: it
    /// exports live services or waits on a cross-unit reply. The
    /// scheduler parks such units instead of finishing them.
    pub(crate) fn port_keeps_unit_alive(&self) -> bool {
        self.port.keeps_unit_alive()
    }

    /// `true` when this unit's mailbox has undelivered mail. One ring
    /// emptiness check on the unit's own cached mailbox — no hub lock,
    /// nothing for an unattached VM — so the scheduler's park decision
    /// and finish-path check cost a compute-only unit nothing.
    pub(crate) fn port_has_mail(&self) -> bool {
        self.port.own_box.as_ref().is_some_and(|mb| mb.has_mail())
    }

    /// `true` when this unit holds a quota-parked send whose destination
    /// now admits. The scheduler re-checks this under its park lock —
    /// the mirror of the [`Vm::port_has_mail`] re-check — closing the
    /// race where the release token fired while the unit was still
    /// running and was dropped by the wake-up sweep. Units with no
    /// pending sends (the common case) return without touching the hub;
    /// parked ones probe only the destinations they are parked on.
    /// Sound because waiter registrations are created together with
    /// their `PendingSend` (at its `parked_dest`) and cleared by the
    /// retry sweep or, when revocation abandons the last send, by
    /// `port_revoke_isolate`.
    pub(crate) fn port_retry_ready(&self) -> bool {
        if self.port.pending_sends.is_empty() {
            return false;
        }
        let Some((unit, hub)) = self.port.attach.as_ref() else {
            return false;
        };
        let mut dests: Vec<u32> = self
            .port
            .pending_sends
            .iter()
            .map(|p| p.parked_dest)
            .collect();
        dests.sort_unstable();
        dests.dedup();
        hub.retry_ready_at(*unit, &dests)
    }

    /// Queues `req` behind `name`'s pump (or fails it when the service
    /// is gone) and dispatches if the pump is idle.
    fn pump_enqueue(&mut self, name: &Arc<str>, req: ReadyRequest) {
        match self.port.pumps.get_mut(name) {
            Some(pump) => {
                pump.queue.push_back(req);
                pump_advance(self, name);
            }
            None => {
                self.port.note_served(&req);
                let msg = format!("service '{name}' revoked: isolate terminated");
                send_reply(
                    self,
                    req.reply_to,
                    req.call,
                    req.oneway,
                    Err(ReplyError::Revoked(msg)),
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint support (crate::checkpoint)
    // ------------------------------------------------------------------

    /// Whether the port layer is at a checkpointable boundary: no call
    /// awaiting a reply, no quota-parked send, nothing mid-dispatch, no
    /// unflushed boundary state and no undrained mail. The scheduler's
    /// capture point (after `port_drain`, before the slice) plus this
    /// check together implement the documented drain-to-boundary rule:
    /// in-flight cross-unit traffic must land before a snapshot is cut.
    pub(crate) fn port_checkpoint_clean(&self) -> Result<(), &'static str> {
        let p = &self.port;
        if !p.waiting.is_empty() {
            return Err("calls or futures awaiting replies");
        }
        if !p.pending_sends.is_empty() {
            return Err("sends parked on a destination quota");
        }
        if !p.outbox.is_empty() {
            return Err("replies pending the boundary flush");
        }
        if p.served != (0, 0) {
            return Err("served quota pending the boundary flush");
        }
        for pump in p.pumps.values() {
            if pump.current.is_some() || !pump.queue.is_empty() {
                return Err("service pump mid-request");
            }
        }
        for f in p.futures.values() {
            if f.waiter.is_some() {
                return Err("thread parked in Future.get");
            }
            if matches!(f.slot, FutureSlot::Pending { .. }) {
                return Err("future awaiting its reply");
            }
        }
        if self.port_has_mail() {
            return Err("undrained mailbox");
        }
        Ok(())
    }

    /// Snapshots the port layer for a checkpoint image. Callers must
    /// have verified [`Vm::port_checkpoint_clean`] first: only durable
    /// state (exported pumps, resolved futures, id allocators) is
    /// captured — everything transient is clean by precondition.
    pub(crate) fn port_snapshot(&self) -> PortImage {
        let pumps = self
            .port
            .pumps
            .iter()
            .map(|(name, p)| PumpImage {
                name: name.to_string(),
                thread: p.thread.0,
                isolate: p.isolate.0,
                handler_pin: p.handler_pin as u64,
                handle_int: p.handle_int,
                handle_obj: p.handle_obj,
            })
            .collect();
        let mut futures: Vec<FutureImage> = self
            .port
            .futures
            .iter()
            .map(|(&id, f)| FutureImage {
                id,
                owner: f.owner.0,
                slot: match &f.slot {
                    FutureSlot::Ready(r) => FutureSlotImage::Ready(r.clone()),
                    FutureSlot::Cancelled => FutureSlotImage::Cancelled,
                    FutureSlot::Pending { .. } => {
                        unreachable!("port_checkpoint_clean rejects pending futures")
                    }
                },
            })
            .collect();
        // Collected from a HashMap: sort so the image bytes are
        // independent of hash order.
        futures.sort_unstable_by_key(|f| f.id);
        PortImage {
            pumps,
            futures,
            next_future: self.port.next_future,
            next_local_call: self.port.next_local_call,
        }
    }

    /// Rebuilds the port layer from a checkpoint image on a freshly
    /// restored VM (not yet attached to any hub). The caller has already
    /// bounds-checked thread ids, isolate ids and handler pins.
    pub(crate) fn port_restore(&mut self, img: PortImage) {
        for p in img.pumps {
            self.port.pumps.insert(
                Arc::from(p.name.as_str()),
                Pump {
                    thread: ThreadId(p.thread),
                    isolate: IsolateId(p.isolate),
                    handler_pin: p.handler_pin as usize,
                    handle_int: p.handle_int,
                    handle_obj: p.handle_obj,
                    queue: VecDeque::new(),
                    current: None,
                },
            );
        }
        for f in img.futures {
            self.port.futures.insert(
                f.id,
                FutureState {
                    owner: IsolateId(f.owner),
                    waiter: None,
                    slot: match f.slot {
                        FutureSlotImage::Ready(r) => FutureSlot::Ready(r),
                        FutureSlotImage::Cancelled => FutureSlot::Cancelled,
                    },
                },
            );
        }
        self.port.next_future = img.next_future;
        self.port.next_local_call = img.next_local_call;
    }

    /// Renames every exported service to `"{name}#{clone_idx}"`, for
    /// snapshot-fork scale-out ([`crate::sched::Cluster::submit_image_n`]):
    /// each clone restored from one image must publish distinct hub names
    /// or the clones would race for the original's callers. Must run
    /// before the VM is submitted (hub export happens at attach). The
    /// per-isolate export tables are remapped in step so revocation on
    /// termination still finds the pumps.
    pub(crate) fn port_remap_service_names(&mut self, clone_idx: usize) {
        debug_assert!(self.port.attach.is_none(), "remap after attach");
        let old = std::mem::take(&mut self.port.pumps);
        for (name, pump) in old {
            let renamed = format!("{name}#{clone_idx}");
            if let Some(iso) = self.isolates.get_mut(pump.isolate.0 as usize) {
                for e in iso.exported_ports.iter_mut() {
                    if *e == *name {
                        *e = renamed.clone();
                    }
                }
            }
            self.port.pumps.insert(Arc::from(renamed.as_str()), pump);
        }
    }
}

/// Serializable snapshot of one exported service pump. The queue and
/// in-flight request are absent by the cleanliness precondition; the
/// handler pin survives because host roots are checkpointed exactly.
#[derive(Debug)]
pub(crate) struct PumpImage {
    pub(crate) name: String,
    pub(crate) thread: u32,
    pub(crate) isolate: u16,
    pub(crate) handler_pin: u64,
    pub(crate) handle_int: Option<MethodRef>,
    pub(crate) handle_obj: Option<MethodRef>,
}

/// Serializable snapshot of one live future (resolved or cancelled —
/// pending futures cannot cross a checkpoint).
#[derive(Debug)]
pub(crate) struct FutureImage {
    pub(crate) id: u32,
    pub(crate) owner: u16,
    pub(crate) slot: FutureSlotImage,
}

/// The durable half of [`FutureSlot`].
#[derive(Debug)]
pub(crate) enum FutureSlotImage {
    /// Reply already delivered, not yet consumed by `get`.
    Ready(Result<(PayloadKind, Vec<u8>), ReplyError>),
    /// Cancelled before resolution; `get` throws.
    Cancelled,
}

/// The durable port state of one unit, captured into and restored from
/// a checkpoint image's PORT section.
#[derive(Debug)]
pub(crate) struct PortImage {
    pub(crate) pumps: Vec<PumpImage>,
    pub(crate) futures: Vec<FutureImage>,
    pub(crate) next_future: u32,
    pub(crate) next_local_call: u64,
}

/// Charges the deterministic copy cost of a `len`-byte message to `iso`
/// through the single exact-CPU flush point — the sender-pays invariant.
fn charge_copy(vm: &mut Vm, iso: IsolateId, len: usize) {
    if vm.options.accounting {
        let insns = MSG_BASE_COST + len as u64;
        let mut charged = false;
        if let Some(i) = vm.isolates.get_mut(iso.0 as usize) {
            i.stats.charge_cpu(insns);
            charged = true;
        }
        if charged {
            vm.trace_cpu_charge(iso, None, insns);
        }
    }
}

/// Dispatches queued requests onto `name`'s pump until it is busy or the
/// queue is dry. Undecodable requests are failed and skipped.
fn pump_advance(vm: &mut Vm, name: &Arc<str>) {
    loop {
        let req = {
            let Some(pump) = vm.port.pumps.get_mut(name) else {
                return;
            };
            if pump.current.is_some() {
                return;
            }
            let Some(req) = pump.queue.pop_front() else {
                return;
            };
            req
        };
        // Quota is released at the request's *terminal disposition*: a
        // dispatch failure below is terminal, a successful start carries
        // the contribution into `CurrentCall` and releases it when the
        // handler returns, throws, or is revoked.
        let quota = match req.reply_to {
            ReplyTo::Unit(_) => (1, req.bytes.len() as u64),
            ReplyTo::Local => (0, 0),
        };
        match try_start(vm, name, req, quota) {
            Ok(()) => return,
            Err((reply_to, call, oneway, err)) => {
                vm.port.note_served_counts(quota);
                send_reply(vm, reply_to, call, oneway, Err(err));
            }
        }
    }
}

type StartFailure = (ReplyTo, u64, bool, ReplyError);

/// Pushes the handler frame for `req` onto the pump thread and wakes it.
fn try_start(
    vm: &mut Vm,
    name: &Arc<str>,
    req: ReadyRequest,
    quota: (u32, u64),
) -> Result<(), StartFailure> {
    let (tid, iso, pin, handle_int, handle_obj) = {
        let p = &vm.port.pumps[name];
        (
            p.thread,
            p.isolate,
            p.handler_pin,
            p.handle_int,
            p.handle_obj,
        )
    };
    let fail = |err| (req.reply_to, req.call, req.oneway, err);
    let Some(method) = (match req.kind {
        PayloadKind::Int => handle_int,
        PayloadKind::Obj => handle_obj,
    }) else {
        return Err(fail(ReplyError::Failed(format!(
            "service '{name}' has no handle{} handler",
            req.kind.handle_descriptor()
        ))));
    };
    let loader = vm.isolates[iso.0 as usize].loader;
    let arg = match crate::wire::deserialize_value(vm, &req.bytes, iso, loader) {
        Ok(v) => v,
        Err(e) => {
            return Err(fail(ReplyError::Failed(format!(
                "service '{name}' argument decode failed: {e}"
            ))));
        }
    };
    let handler = vm.pinned(pin).expect("pump handler is pinned");
    // Build the handler frame out of the pump's frame pool — the
    // dispatch hot path allocates no locals/stack buffers in steady
    // state. Isolate routing matches `Vm::make_frame` exactly (shared
    // rule: `frame_executes_in_caller`).
    let (code, is_system, frame_isolate, synchronized) = {
        let class = &vm.classes[method.class.0 as usize];
        let m = &class.methods[method.index as usize];
        let Some(code) = m.code.as_ref() else {
            return Err(fail(ReplyError::Failed(format!(
                "service '{name}' handler is not a bytecode method"
            ))));
        };
        let frame_isolate = if vm.frame_executes_in_caller(method) {
            iso
        } else {
            class.isolate
        };
        (code.share(), class.is_system, frame_isolate, m.synchronized)
    };
    let (max_locals, max_stack) = (code.max_locals as usize, code.max_stack as usize);
    let th = &mut vm.threads[tid.0 as usize];
    let mut locals = th.frame_pool.take(max_locals);
    locals.push(Value::Ref(handler));
    locals.push(arg);
    locals.resize(max_locals, Value::Int(0));
    let stack = th.frame_pool.take(max_stack);
    th.current_isolate = frame_isolate;
    th.frames.push(crate::thread::Frame {
        method,
        class: method.class,
        isolate: frame_isolate,
        caller_isolate: iso,
        is_system,
        code,
        pc: 0,
        locals,
        stack,
        sync_object: None,
        needs_sync_enter: synchronized,
        poisoned_return: None,
    });
    vm.port.pumps.get_mut(name).unwrap().current = Some(CurrentCall {
        call: req.call,
        reply_to: req.reply_to,
        kind: req.kind,
        oneway: req.oneway,
        quota,
    });
    vm.trace_emit(
        crate::trace::EventKind::CallDeliver,
        Some(iso),
        Some(tid),
        req.call,
    );
    vm.wake(tid);
    Ok(())
}

/// Sends a reply produced in this VM to wherever the request came from.
/// Cross-unit replies are *coalesced*: they collect in the outbox and go
/// to the hub in one batch at the quantum boundary
/// ([`crate::vm::Vm::port_quantum_flush`]) — the receiver drains at its
/// own boundary either way, so batching changes no observable order.
fn send_reply(
    vm: &mut Vm,
    reply_to: ReplyTo,
    call: u64,
    oneway: bool,
    result: Result<(PayloadKind, Vec<u8>), ReplyError>,
) {
    if oneway {
        return;
    }
    vm.trace_emit(crate::trace::EventKind::ReplySend, None, None, call);
    match reply_to {
        ReplyTo::Unit(u) => {
            vm.port.outbox.push((u, Envelope::Reply { call, result }));
        }
        ReplyTo::Local => deliver_reply(vm, call, result),
    }
}

/// Routes an incoming reply by request id: to the thread parked in
/// `Service.call`, or to the pending future the caller is pipelining on.
/// Stale replies — the waiter was cancelled, interrupted or its isolate
/// terminated meanwhile — are dropped.
fn deliver_reply(vm: &mut Vm, call: u64, result: Result<(PayloadKind, Vec<u8>), ReplyError>) {
    let Some(waiter) = vm.port.waiting.remove(&call) else {
        return;
    };
    match waiter {
        Waiter::Thread(tid) => deliver_to_thread(vm, call, tid, result),
        Waiter::Future(fid) => resolve_future(vm, call, fid, result),
    }
}

/// Completes a waiting `Service.call`: pushes the deserialized result on
/// the caller's operand stack (or installs the failure as a pending
/// exception) and wakes the thread.
fn deliver_to_thread(
    vm: &mut Vm,
    call: u64,
    tid: ThreadId,
    result: Result<(PayloadKind, Vec<u8>), ReplyError>,
) {
    let t = tid.0 as usize;
    if vm.threads[t].state != (ThreadState::BlockedOnPort { call }) {
        return; // the caller already moved on (interrupt, termination)
    }
    vm.trace_reply_deliver(call, tid, crate::trace::EventKind::ReplyDeliver);
    match result {
        Ok((_, bytes)) => {
            let iso = vm.threads[t].current_isolate;
            let loader = vm.isolates[iso.0 as usize].loader;
            match crate::wire::deserialize_value(vm, &bytes, iso, loader) {
                Ok(v) => {
                    vm.threads[t]
                        .top_frame_mut()
                        .expect("caller frame survives the call")
                        .stack
                        .push(v);
                }
                Err(e) => {
                    let ex = crate::interp::alloc_exception(
                        vm,
                        tid,
                        "java/lang/RuntimeException",
                        &format!("service reply decode failed: {e}"),
                    );
                    vm.threads[t].pending_exception = Some(ex);
                }
            }
        }
        Err(ReplyError::Revoked(msg)) => {
            let ex = crate::interp::alloc_exception(vm, tid, SERVICE_REVOKED_EXCEPTION, &msg);
            vm.threads[t].pending_exception = Some(ex);
        }
        Err(ReplyError::Failed(msg)) => {
            let ex = crate::interp::alloc_exception(vm, tid, "java/lang/RuntimeException", &msg);
            vm.threads[t].pending_exception = Some(ex);
        }
    }
    vm.wake(tid);
}

/// A reply arrived for a pending future: store it, and if a thread is
/// parked in `get`, complete that `get` in place (push the decoded value
/// or install the failure) and wake it.
fn resolve_future(
    vm: &mut Vm,
    call: u64,
    fid: u32,
    result: Result<(PayloadKind, Vec<u8>), ReplyError>,
) {
    let Some(f) = vm.port.futures.get_mut(&fid) else {
        return; // cancelled or revoked meanwhile; drop the late reply
    };
    if !matches!(f.slot, FutureSlot::Pending { .. }) {
        return;
    }
    f.slot = FutureSlot::Ready(result);
    let waiter = f.waiter.take();
    let trace_tid = waiter.map(|(t, _)| t).unwrap_or(ThreadId(u32::MAX));
    vm.trace_reply_deliver(call, trace_tid, crate::trace::EventKind::FutureResolve);
    if let Some((tid, expected)) = waiter {
        if vm.threads[tid.0 as usize].state == (ThreadState::BlockedOnFuture { future: fid }) {
            match consume_ready(vm, tid, fid, expected) {
                GetOutcome::Value(v) => {
                    vm.threads[tid.0 as usize]
                        .top_frame_mut()
                        .expect("getter frame survives the wait")
                        .stack
                        .push(v);
                }
                GetOutcome::Failure {
                    class_name,
                    message,
                } => {
                    let ex = crate::interp::alloc_exception(vm, tid, class_name, &message);
                    vm.threads[tid.0 as usize].pending_exception = Some(ex);
                }
            }
            vm.wake(tid);
        }
    }
}

/// How a `get` on a ready future completes.
enum GetOutcome {
    /// The decoded reply value.
    Value(Value),
    /// A guest exception to raise at the getter.
    Failure {
        class_name: &'static str,
        message: String,
    },
}

/// Consumes a `Ready` future for a `get`/`getObject`: decodes the value
/// into the getter's isolate, or maps the failure to the same exceptions
/// the blocking `Service.call` raises. A payload-kind mismatch (`get` on
/// an object future, or vice versa) throws *without* consuming, so the
/// correctly-typed getter still works.
fn consume_ready(vm: &mut Vm, tid: ThreadId, fid: u32, expected: PayloadKind) -> GetOutcome {
    {
        let f = &vm.port.futures[&fid];
        let FutureSlot::Ready(result) = &f.slot else {
            unreachable!("consume_ready on a non-ready future");
        };
        if let Ok((kind, _)) = result {
            if *kind != expected {
                let (got, want) = match expected {
                    PayloadKind::Int => ("an object", "getObject"),
                    PayloadKind::Obj => ("an int", "get"),
                };
                return GetOutcome::Failure {
                    class_name: "java/lang/IllegalStateException",
                    message: format!("future holds {got} result; use {want}()"),
                };
            }
        }
    }
    let f = vm.port.futures.remove(&fid).expect("future present");
    let FutureSlot::Ready(result) = f.slot else {
        unreachable!();
    };
    match result {
        Ok((_, bytes)) => {
            let iso = vm.threads[tid.0 as usize].current_isolate;
            let loader = vm.isolates[iso.0 as usize].loader;
            match crate::wire::deserialize_value(vm, &bytes, iso, loader) {
                Ok(v) => GetOutcome::Value(v),
                Err(e) => GetOutcome::Failure {
                    class_name: "java/lang/RuntimeException",
                    message: format!("service reply decode failed: {e}"),
                },
            }
        }
        Err(ReplyError::Revoked(msg)) => GetOutcome::Failure {
            class_name: SERVICE_REVOKED_EXCEPTION,
            message: msg,
        },
        Err(ReplyError::Failed(msg)) => GetOutcome::Failure {
            class_name: "java/lang/RuntimeException",
            message: msg,
        },
    }
}

/// Finds the service a pump thread belongs to.
fn find_pump_name(vm: &Vm, tid: ThreadId) -> Option<Arc<str>> {
    vm.port
        .pumps
        .iter()
        .find(|(_, p)| p.thread == tid)
        .map(|(n, _)| Arc::clone(n))
}

/// Re-parks a pump thread awaiting its next request.
fn park_pump(vm: &mut Vm, tid: ThreadId, iso: IsolateId) {
    let th = &mut vm.threads[tid.0 as usize];
    th.state = ThreadState::ServicePump;
    th.current_isolate = iso;
}

/// Called by the interpreter when a service pump drains its last frame:
/// one request completed. Serializes and posts the reply (the serving
/// isolate pays for the copy), then re-parks or re-dispatches the pump.
/// Returns `false` when the thread is not actually a live pump (it then
/// terminates normally).
pub(crate) fn pump_completed(vm: &mut Vm, tid: ThreadId, value: Option<Value>) -> bool {
    let Some(name) = find_pump_name(vm, tid) else {
        return false;
    };
    let iso = vm.port.pumps[&name].isolate;
    let cur = vm.port.pumps.get_mut(&name).unwrap().current.take();
    if let Some(cur) = cur {
        vm.port.note_served_counts(cur.quota);
        if !cur.oneway {
            let mut bytes = Vec::with_capacity(32);
            crate::wire::serialize_value(vm, value.unwrap_or(Value::Null), &mut bytes);
            charge_copy(vm, iso, bytes.len());
            send_reply(vm, cur.reply_to, cur.call, false, Ok((cur.kind, bytes)));
        }
    }
    park_pump(vm, tid, iso);
    pump_advance(vm, &name);
    true
}

/// Called by the interpreter when a service pump dies unwinding: the
/// handler threw. A `StoppedIsolateException` *for the pump's own
/// isolate* means the service died mid-call — it is revoked, its calls
/// fail with `ServiceRevoked`, and the pump thread dies (return
/// `false`). Any other exception — including an SIE for some *other*
/// isolate the handler had called into — becomes a failed reply for
/// that one call and the pump survives. (In the common termination
/// path the pump is already gone from the table by the time its thread
/// unwinds — `port_revoke_isolate` ran first — so `find_pump_name`
/// misses and the thread dies normally.)
pub(crate) fn pump_failed(vm: &mut Vm, tid: ThreadId, ex: GcRef) -> bool {
    let Some(name) = find_pump_name(vm, tid) else {
        return false;
    };
    let iso = vm.port.pumps[&name].isolate;
    let class = vm.heap.get(ex).class;
    let class_name = vm.classes[class.0 as usize].name.to_string();
    if class_name == crate::interp::STOPPED_ISOLATE_EXCEPTION
        && crate::interp::sie_isolate_of(vm, ex) == Some(iso)
    {
        revoke_pump(vm, &name);
        return false;
    }
    let msg = vm.exception_message(ex).unwrap_or_default();
    let detail = format!("service '{name}' handler threw {class_name}: {msg}");
    let cur = vm.port.pumps.get_mut(&name).unwrap().current.take();
    if let Some(cur) = cur {
        vm.port.note_served_counts(cur.quota);
        send_reply(
            vm,
            cur.reply_to,
            cur.call,
            cur.oneway,
            Err(ReplyError::Failed(detail)),
        );
    }
    park_pump(vm, tid, iso);
    pump_advance(vm, &name);
    true
}

/// Tears one service down: fails its in-flight and queued calls with
/// `ServiceRevoked`, revokes the hub entry, unpins the handler, and
/// retires the pump thread if it is idle (a busy pump dies through the
/// isolate-termination unwinding instead).
fn revoke_pump(vm: &mut Vm, name: &Arc<str>) {
    let Some(mut pump) = vm.port.pumps.remove(name) else {
        return;
    };
    let failed = pump.current.is_some() as u64 + pump.queue.len() as u64;
    vm.trace_emit(
        crate::trace::EventKind::ServiceRevoke,
        Some(pump.isolate),
        Some(pump.thread),
        failed,
    );
    let msg = format!("service '{name}' revoked: isolate terminated");
    if let Some(cur) = pump.current.take() {
        vm.port.note_served_counts(cur.quota);
        send_reply(
            vm,
            cur.reply_to,
            cur.call,
            cur.oneway,
            Err(ReplyError::Revoked(msg.clone())),
        );
    }
    for req in pump.queue.drain(..) {
        vm.port.note_served(&req);
        send_reply(
            vm,
            req.reply_to,
            req.call,
            req.oneway,
            Err(ReplyError::Revoked(msg.clone())),
        );
    }
    vm.unpin(pump.handler_pin);
    if let Some((unit, hub)) = vm.port.attach.clone() {
        hub.revoke(unit, name);
    }
    if let Some(i) = vm.isolates.get_mut(pump.isolate.0 as usize) {
        i.exported_ports.retain(|n| n != &**name);
    }
    // Retire the pump thread only if it is parked idle. A busy pump —
    // including one that already unwound its frames and is mid-way
    // through `pump_failed` — is left to the engine's normal
    // thread-death path, which runs `on_thread_exit` exactly once.
    let th = &mut vm.threads[pump.thread.0 as usize];
    if th.state == ThreadState::ServicePump {
        debug_assert!(th.frames.is_empty());
        th.state = ThreadState::Terminated;
        vm.on_thread_exit(pump.thread);
    }
}

// ---------------------------------------------------------------------
// The native surface: ijvm/Service and ijvm/Port
// ---------------------------------------------------------------------

/// Why an export was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExportError {
    /// The handler object has neither `handle(int)` nor `handle(Object)`.
    NoHandler(String),
    /// This VM already exports a service under that name.
    Duplicate(String),
    /// The live-thread limit leaves no room for the pump thread.
    ThreadLimit,
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::NoHandler(class) => write!(
                f,
                "service handler {class} has no handle(int) or handle(Object) method"
            ),
            ExportError::Duplicate(name) => {
                write!(f, "service '{name}' is already exported by this unit")
            }
            ExportError::ThreadLimit => write!(f, "unable to create service pump thread"),
        }
    }
}

impl std::error::Error for ExportError {}

impl Vm {
    /// Host-side export: publishes `handler` (an object with a
    /// `handle(int)` and/or `handle(Object)` method) as service `name`
    /// owned by — and accountable to — `owner`. The embedding
    /// counterpart of the guest's `Service.export`; the OSGi layer uses
    /// it to make bundle services callable from other units.
    pub fn export_service(
        &mut self,
        name: &str,
        handler: GcRef,
        owner: IsolateId,
    ) -> Result<(), ExportError> {
        do_export(self, owner, name, handler)
    }

    /// Withdraws a service this VM exports, failing its in-flight and
    /// queued calls with `ServiceRevoked` and retiring its pump. Returns
    /// `false` when no such service exists. Replacing a service is
    /// retract-then-export — the OSGi layer uses exactly that for
    /// `registerService` over an existing name, so cross-unit callers
    /// move to the new handler instead of silently keeping the old one.
    pub fn retract_service(&mut self, name: &str) -> bool {
        let Some(key) = self.port.pumps.keys().find(|k| ***k == *name).cloned() else {
            return false;
        };
        revoke_pump(self, &key);
        true
    }
}

/// Exports a service: resolves the handler's `handle` overloads, spawns
/// the pump thread, and publishes `(unit, name)` to the hub when the VM
/// is attached to a cluster.
fn do_export(vm: &mut Vm, iso: IsolateId, name: &str, handler: GcRef) -> Result<(), ExportError> {
    let class = vm.heap.get(handler).class;
    let handle_int = crate::interp::lookup_virtual(vm, class, "handle", "(I)I");
    let handle_obj = crate::interp::lookup_virtual(
        vm,
        class,
        "handle",
        "(Ljava/lang/Object;)Ljava/lang/Object;",
    );
    if handle_int.is_none() && handle_obj.is_none() {
        return Err(ExportError::NoHandler(
            vm.classes[class.0 as usize].name.to_string(),
        ));
    }
    if vm.port.pumps.contains_key(name) {
        return Err(ExportError::Duplicate(name.to_owned()));
    }
    if !vm.can_spawn_thread() {
        return Err(ExportError::ThreadLimit);
    }
    let handler_pin = vm.pin(handler);
    let pump_tid = ThreadId(vm.threads.len() as u32);
    let mut th = VmThread::new(pump_tid, &format!("svc:{name}"), iso);
    th.is_service_pump = true;
    th.state = ThreadState::ServicePump;
    vm.threads.push(th);
    if vm.options.accounting {
        if let Some(i) = vm.isolates.get_mut(iso.0 as usize) {
            i.stats.threads_created += 1;
            i.stats.threads_live += 1;
        }
    }
    let name_arc: Arc<str> = Arc::from(name);
    vm.port.pumps.insert(
        Arc::clone(&name_arc),
        Pump {
            thread: pump_tid,
            isolate: iso,
            handler_pin,
            handle_int,
            handle_obj,
            queue: VecDeque::new(),
            current: None,
        },
    );
    if let Some(i) = vm.isolates.get_mut(iso.0 as usize) {
        i.exported_ports.push(name.to_owned());
    }
    if let Some((unit, hub)) = vm.port.attach.clone() {
        hub.export(unit, name_arc, iso);
    }
    vm.trace_emit(
        crate::trace::EventKind::ServiceExport,
        Some(iso),
        Some(pump_tid),
        0,
    );
    Ok(())
}

/// Maps an [`ExportError`] onto the guest exception `Service.export`
/// raises for it.
fn export_error_to_native(err: ExportError) -> NativeResult {
    let class_name = match &err {
        ExportError::NoHandler(_) => "java/lang/IllegalArgumentException",
        ExportError::Duplicate(_) => "java/lang/IllegalStateException",
        ExportError::ThreadLimit => "java/lang/OutOfMemoryError",
    };
    NativeResult::Throw {
        class_name,
        message: err.to_string(),
    }
}

/// Parks a sender whose destination is over quota: the serialized (and
/// already-charged) payload moves into the pending-send queue and the
/// thread blocks until the hub admits the retry.
#[allow(clippy::too_many_arguments)]
fn park_on_quota(
    vm: &mut Vm,
    tid: ThreadId,
    iso: IsolateId,
    target: Option<UnitId>,
    name: &str,
    kind: PayloadKind,
    bytes: Vec<u8>,
    mode: SendMode,
    dest: u32,
) {
    vm.trace_emit(
        crate::trace::EventKind::QuotaPark,
        Some(iso),
        Some(tid),
        bytes.len() as u64,
    );
    vm.port.pending_sends.push_back(PendingSend {
        thread: tid,
        target,
        name: Arc::from(name),
        kind,
        bytes,
        mode,
        parked_dest: dest,
    });
    vm.threads[tid.0 as usize].state = ThreadState::BlockedOnQuota;
}

/// The blocking `Service.call` path: serializes the argument (caller
/// pays), routes the request, and parks the calling thread until the
/// reply is delivered.
fn port_call(
    vm: &mut Vm,
    tid: ThreadId,
    target: Option<UnitId>,
    name: &str,
    kind: PayloadKind,
    payload: Value,
) -> NativeResult {
    let iso = vm.threads[tid.0 as usize].current_isolate;
    let mut bytes = Vec::with_capacity(32);
    crate::wire::serialize_value(vm, payload, &mut bytes);
    charge_copy(vm, iso, bytes.len());
    let revoked = || NativeResult::Throw {
        class_name: SERVICE_REVOKED_EXCEPTION,
        message: format!("service '{name}' revoked: isolate terminated"),
    };
    if let Some((unit, hub)) = vm.port.attach.clone() {
        match hub.send_request(unit, target, name, kind, bytes, false) {
            Ok(SendOutcome::Sent(call)) => {
                vm.port.waiting.insert(call, Waiter::Thread(tid));
                vm.threads[tid.0 as usize].state = ThreadState::BlockedOnPort { call };
                vm.trace_call_send(call, iso, tid, crate::trace::EventKind::CallSend);
                NativeResult::BlockPending
            }
            Ok(SendOutcome::OverQuota { bytes, dest }) => {
                park_on_quota(
                    vm,
                    tid,
                    iso,
                    target,
                    name,
                    kind,
                    bytes,
                    SendMode::Call,
                    dest,
                );
                NativeResult::BlockPending
            }
            Err(SendError::Revoked) => revoked(),
        }
    } else {
        // Unattached VM: only services exported by this same VM are
        // reachable, and an absent one can never appear "later".
        if target.is_some() {
            return NativeResult::Throw {
                class_name: "java/lang/IllegalStateException",
                message: "Service.callAt requires the VM to run in a cluster".to_owned(),
            };
        }
        if !vm.port.pumps.contains_key(name) {
            return NativeResult::Throw {
                class_name: "java/lang/IllegalStateException",
                message: format!("no service '{name}' (VM not attached to a cluster)"),
            };
        }
        let call = vm.port.alloc_local_call();
        vm.port.waiting.insert(call, Waiter::Thread(tid));
        vm.threads[tid.0 as usize].state = ThreadState::BlockedOnPort { call };
        vm.trace_call_send(call, iso, tid, crate::trace::EventKind::CallSend);
        let name_arc: Arc<str> = Arc::from(name);
        vm.pump_enqueue(
            &name_arc,
            ReadyRequest {
                call,
                reply_to: ReplyTo::Local,
                kind,
                bytes,
                oneway: false,
            },
        );
        NativeResult::BlockPending
    }
}

/// The one-way `Port.send` path: fire-and-forget; a revoked target drops
/// the message silently.
fn port_send(
    vm: &mut Vm,
    tid: ThreadId,
    name: &str,
    kind: PayloadKind,
    payload: Value,
) -> NativeResult {
    let iso = vm.threads[tid.0 as usize].current_isolate;
    let mut bytes = Vec::with_capacity(32);
    crate::wire::serialize_value(vm, payload, &mut bytes);
    charge_copy(vm, iso, bytes.len());
    if let Some((unit, hub)) = vm.port.attach.clone() {
        match hub.send_request(unit, None, name, kind, bytes, true) {
            Ok(SendOutcome::Sent(call)) => {
                vm.trace_emit(
                    crate::trace::EventKind::OnewaySend,
                    Some(iso),
                    Some(tid),
                    call,
                );
                NativeResult::Return(None)
            }
            Ok(SendOutcome::OverQuota { bytes, dest }) => {
                // Fire-and-forget still backpressures: the flooder parks
                // (already charged) instead of growing the victim's
                // mailbox. `send` returns void, so nothing is pushed.
                park_on_quota(
                    vm,
                    tid,
                    iso,
                    None,
                    name,
                    kind,
                    bytes,
                    SendMode::Oneway,
                    dest,
                );
                NativeResult::BlockReturn(None)
            }
            Err(SendError::Revoked) => NativeResult::Return(None),
        }
    } else {
        if !vm.port.pumps.contains_key(name) {
            return NativeResult::Throw {
                class_name: "java/lang/IllegalStateException",
                message: format!("no service '{name}' (VM not attached to a cluster)"),
            };
        }
        let call = vm.port.alloc_local_call();
        vm.trace_emit(
            crate::trace::EventKind::OnewaySend,
            Some(iso),
            Some(tid),
            call,
        );
        let name_arc: Arc<str> = Arc::from(name);
        vm.pump_enqueue(
            &name_arc,
            ReadyRequest {
                call,
                reply_to: ReplyTo::Local,
                kind,
                bytes,
                oneway: true,
            },
        );
        NativeResult::Return(None)
    }
}

/// Allocates the guest-visible `ijvm/Future` object carrying `fid`.
/// Allocation happens *before* any hub traffic, so an OOM here aborts
/// the post cleanly.
fn alloc_future_obj(vm: &mut Vm, tid: ThreadId, fid: u32) -> Result<GcRef, NativeResult> {
    let iso = vm.threads[tid.0 as usize].current_isolate;
    let class = vm
        .load_class(crate::ids::LoaderId::BOOTSTRAP, "ijvm/Future")
        .expect("ijvm/Future is a bootstrap class");
    let r = match vm.alloc_instance(class, iso) {
        Ok(r) => r,
        Err(thrown) => {
            let ex = crate::interp::materialize(vm, tid, thrown);
            return Err(NativeResult::ThrowRef(ex));
        }
    };
    let slot = vm.classes[class.0 as usize]
        .find_instance_slot("id")
        .expect("ijvm/Future has an id field");
    if let crate::heap::ObjBody::Fields(fields) = &mut vm.heap.get_mut(r).body {
        fields[slot as usize] = Value::Int(fid as i32);
    }
    Ok(r)
}

/// Reads the future id out of an `ijvm/Future` receiver.
fn future_id(vm: &Vm, recv: Value) -> Result<u32, NativeResult> {
    let Some(r) = recv.as_ref() else {
        return Err(NativeResult::Throw {
            class_name: "java/lang/NullPointerException",
            message: "future".to_owned(),
        });
    };
    let obj = vm.heap.get(r);
    let slot = vm.classes[obj.class.0 as usize]
        .find_instance_slot("id")
        .expect("ijvm/Future has an id field");
    if let crate::heap::ObjBody::Fields(fields) = &obj.body {
        Ok(fields[slot as usize].as_int() as u32)
    } else {
        unreachable!("ijvm/Future is a fields object")
    }
}

/// The pipelining `Service.post` path: serializes and charges like
/// `call`, but hands back an `ijvm/Future` immediately instead of
/// parking — one green thread can keep many requests in flight and
/// collect them with `Future.get`. Delivery failures (revocation)
/// surface at `get`, not here; only argument errors throw at the post.
fn port_post(
    vm: &mut Vm,
    tid: ThreadId,
    target: Option<UnitId>,
    name: &str,
    kind: PayloadKind,
    payload: Value,
) -> NativeResult {
    let iso = vm.threads[tid.0 as usize].current_isolate;
    let mut bytes = Vec::with_capacity(32);
    crate::wire::serialize_value(vm, payload, &mut bytes);
    charge_copy(vm, iso, bytes.len());
    let fid = vm.port.alloc_future();
    let fut = match alloc_future_obj(vm, tid, fid) {
        Ok(r) => r,
        Err(e) => return e,
    };
    if let Some((unit, hub)) = vm.port.attach.clone() {
        match hub.send_request(unit, target, name, kind, bytes, false) {
            Ok(SendOutcome::Sent(call)) => {
                vm.port.waiting.insert(call, Waiter::Future(fid));
                vm.port.futures.insert(
                    fid,
                    FutureState {
                        owner: iso,
                        waiter: None,
                        slot: FutureSlot::Pending { call },
                    },
                );
                vm.trace_call_send(call, iso, tid, crate::trace::EventKind::FuturePost);
                NativeResult::Return(Some(Value::Ref(fut)))
            }
            Ok(SendOutcome::OverQuota { bytes, dest }) => {
                // The future ref goes on the sender's stack now
                // (`BlockReturn`); the thread parks and the retry sweep
                // wires the call id in once the destination admits.
                vm.port.futures.insert(
                    fid,
                    FutureState {
                        owner: iso,
                        waiter: None,
                        slot: FutureSlot::Pending { call: 0 },
                    },
                );
                park_on_quota(
                    vm,
                    tid,
                    iso,
                    target,
                    name,
                    kind,
                    bytes,
                    SendMode::Post { future: fid },
                    dest,
                );
                NativeResult::BlockReturn(Some(Value::Ref(fut)))
            }
            Err(SendError::Revoked) => {
                let msg = format!("service '{name}' revoked: isolate terminated");
                vm.port.futures.insert(
                    fid,
                    FutureState {
                        owner: iso,
                        waiter: None,
                        slot: FutureSlot::Ready(Err(ReplyError::Revoked(msg))),
                    },
                );
                vm.trace_call_send(0, iso, tid, crate::trace::EventKind::FuturePost);
                NativeResult::Return(Some(Value::Ref(fut)))
            }
        }
    } else {
        if target.is_some() {
            return NativeResult::Throw {
                class_name: "java/lang/IllegalStateException",
                message: "Service.postAt requires the VM to run in a cluster".to_owned(),
            };
        }
        if !vm.port.pumps.contains_key(name) {
            return NativeResult::Throw {
                class_name: "java/lang/IllegalStateException",
                message: format!("no service '{name}' (VM not attached to a cluster)"),
            };
        }
        let call = vm.port.alloc_local_call();
        vm.port.waiting.insert(call, Waiter::Future(fid));
        vm.port.futures.insert(
            fid,
            FutureState {
                owner: iso,
                waiter: None,
                slot: FutureSlot::Pending { call },
            },
        );
        vm.trace_call_send(call, iso, tid, crate::trace::EventKind::FuturePost);
        let name_arc: Arc<str> = Arc::from(name);
        vm.pump_enqueue(
            &name_arc,
            ReadyRequest {
                call,
                reply_to: ReplyTo::Local,
                kind,
                bytes,
                oneway: false,
            },
        );
        NativeResult::Return(Some(Value::Ref(fut)))
    }
}

/// `Future.get`/`getObject`: returns (consuming the future), parks in
/// [`ThreadState::BlockedOnFuture`] while pending, or throws on
/// cancellation/failure. Single consumer: a second thread parking on
/// the same future is rejected.
fn future_get(vm: &mut Vm, tid: ThreadId, recv: Value, expected: PayloadKind) -> NativeResult {
    let fid = match future_id(vm, recv) {
        Ok(f) => f,
        Err(e) => return e,
    };
    enum Disposition {
        Park,
        Busy,
        Consumed,
        Cancelled,
        Ready,
    }
    let disp = match vm.port.futures.get_mut(&fid) {
        None => Disposition::Consumed,
        Some(f) => match f.slot {
            FutureSlot::Pending { .. } => {
                if f.waiter.is_some() {
                    Disposition::Busy
                } else {
                    f.waiter = Some((tid, expected));
                    Disposition::Park
                }
            }
            FutureSlot::Cancelled => Disposition::Cancelled,
            FutureSlot::Ready(_) => Disposition::Ready,
        },
    };
    match disp {
        Disposition::Park => {
            vm.threads[tid.0 as usize].state = ThreadState::BlockedOnFuture { future: fid };
            NativeResult::BlockPending
        }
        Disposition::Busy => NativeResult::Throw {
            class_name: "java/lang/IllegalStateException",
            message: "future already has a waiter".to_owned(),
        },
        Disposition::Consumed => NativeResult::Throw {
            class_name: "java/lang/IllegalStateException",
            message: "future already consumed".to_owned(),
        },
        Disposition::Cancelled => NativeResult::Throw {
            class_name: "java/lang/IllegalStateException",
            message: "future cancelled".to_owned(),
        },
        Disposition::Ready => match consume_ready(vm, tid, fid, expected) {
            GetOutcome::Value(v) => NativeResult::Return(Some(v)),
            GetOutcome::Failure {
                class_name,
                message,
            } => NativeResult::Throw {
                class_name,
                message,
            },
        },
    }
}

/// `Future.cancel`: drops the reply routing of a still-pending future so
/// the late reply is discarded. Returns `true` only when the cancel won
/// the race with the reply; a parked getter (another thread) is woken
/// with an `IllegalStateException`.
fn future_cancel(vm: &mut Vm, tid: ThreadId, recv: Value) -> NativeResult {
    let fid = match future_id(vm, recv) {
        Ok(f) => f,
        Err(e) => return e,
    };
    let pending = match vm.port.futures.get_mut(&fid) {
        Some(f) => {
            if let FutureSlot::Pending { call } = f.slot {
                f.slot = FutureSlot::Cancelled;
                Some((call, f.waiter.take()))
            } else {
                None
            }
        }
        None => None,
    };
    let Some((call, waiter)) = pending else {
        return NativeResult::Return(Some(Value::Int(0)));
    };
    if call != 0 {
        vm.port.waiting.remove(&call);
    }
    let iso = vm.threads[tid.0 as usize].current_isolate;
    vm.trace_emit(
        crate::trace::EventKind::FutureCancel,
        Some(iso),
        Some(tid),
        call,
    );
    if let Some((wtid, _)) = waiter {
        if vm.threads[wtid.0 as usize].state == (ThreadState::BlockedOnFuture { future: fid }) {
            let ex = crate::interp::alloc_exception(
                vm,
                wtid,
                "java/lang/IllegalStateException",
                "future cancelled",
            );
            vm.threads[wtid.0 as usize].pending_exception = Some(ex);
            vm.wake(wtid);
        }
    }
    NativeResult::Return(Some(Value::Int(1)))
}

/// `Future.isDone`: resolved, cancelled or already consumed.
fn future_is_done(vm: &mut Vm, recv: Value) -> NativeResult {
    let fid = match future_id(vm, recv) {
        Ok(f) => f,
        Err(e) => return e,
    };
    let done = match vm.port.futures.get(&fid) {
        None => true, // consumed
        Some(f) => !matches!(f.slot, FutureSlot::Pending { .. }),
    };
    NativeResult::Return(Some(Value::Int(done as i32)))
}

const PUB: AccessFlags = AccessFlags::PUBLIC;
const PUBSTATIC: AccessFlags = AccessFlags(AccessFlags::PUBLIC.0 | AccessFlags::STATIC.0);

/// `ijvm/Service`: the typed cross-unit call surface.
pub fn service_class() -> ClassFile {
    let mut cb = ClassBuilder::new("ijvm/Service", "java/lang/Object", PUB | AccessFlags::FINAL);
    cb.native_method(
        "export",
        "(Ljava/lang/String;Ljava/lang/Object;)V",
        PUBSTATIC,
    );
    cb.native_method("call", "(Ljava/lang/String;I)I", PUBSTATIC);
    cb.native_method(
        "call",
        "(Ljava/lang/String;Ljava/lang/Object;)Ljava/lang/Object;",
        PUBSTATIC,
    );
    cb.native_method("callAt", "(ILjava/lang/String;I)I", PUBSTATIC);
    cb.native_method("post", "(Ljava/lang/String;I)Lijvm/Future;", PUBSTATIC);
    cb.native_method(
        "post",
        "(Ljava/lang/String;Ljava/lang/Object;)Lijvm/Future;",
        PUBSTATIC,
    );
    cb.native_method("postAt", "(ILjava/lang/String;I)Lijvm/Future;", PUBSTATIC);
    cb.native_method("unit", "()I", PUBSTATIC);
    cb.build().expect("ijvm/Service")
}

/// `ijvm/Future`: a pending cross-unit reply, created by `Service.post`.
/// The guest object carries only an id; the reply routing lives in the
/// VM's port state. No public constructor — only `post` mints them.
pub fn future_class() -> ClassFile {
    let mut cb = ClassBuilder::new("ijvm/Future", "java/lang/Object", PUB | AccessFlags::FINAL);
    cb.field("id", "I", AccessFlags::PRIVATE);
    cb.native_method("get", "()I", PUB);
    cb.native_method("getObject", "()Ljava/lang/Object;", PUB);
    cb.native_method("isDone", "()Z", PUB);
    cb.native_method("cancel", "()Z", PUB);
    cb.build().expect("ijvm/Future")
}

/// `ijvm/Port`: the one-way message surface.
pub fn port_class() -> ClassFile {
    let mut cb = ClassBuilder::new("ijvm/Port", "java/lang/Object", PUB | AccessFlags::FINAL);
    cb.native_method("send", "(Ljava/lang/String;I)V", PUBSTATIC);
    cb.native_method("send", "(Ljava/lang/String;Ljava/lang/Object;)V", PUBSTATIC);
    cb.build().expect("ijvm/Port")
}

/// Decodes a guest service-name string, through the one-entry
/// `(ref, GC epoch)` cache — guest loops pass the same interned string
/// constant on every call, so the hot path is two comparisons.
fn read_name(vm: &mut Vm, v: Value) -> Result<Arc<str>, NativeResult> {
    let Some(r) = v.as_ref() else {
        return Err(NativeResult::Throw {
            class_name: "java/lang/NullPointerException",
            message: "service name".to_owned(),
        });
    };
    let epoch = vm.gc_count();
    if let Some((cached_ref, cached_epoch, name)) = &vm.port.name_cache {
        if *cached_ref == r && *cached_epoch == epoch {
            return Ok(Arc::clone(name));
        }
    }
    let Some(s) = vm.read_string(r) else {
        return Err(NativeResult::Throw {
            class_name: "java/lang/IllegalArgumentException",
            message: "service name must be a string".to_owned(),
        });
    };
    let name: Arc<str> = Arc::from(s.as_str());
    vm.port.name_cache = Some((r, epoch, Arc::clone(&name)));
    Ok(name)
}

fn register_natives(vm: &mut Vm) {
    let svc = "ijvm/Service";
    vm.register_native(
        svc,
        "export",
        "(Ljava/lang/String;Ljava/lang/Object;)V",
        Arc::new(|vm, tid, args| {
            let name = match read_name(vm, args[0]) {
                Ok(n) => n,
                Err(e) => return e,
            };
            let Some(handler) = args[1].as_ref() else {
                return NativeResult::Throw {
                    class_name: "java/lang/NullPointerException",
                    message: "service handler".to_owned(),
                };
            };
            let iso = vm.current_isolate(tid);
            match do_export(vm, iso, &name, handler) {
                Ok(()) => NativeResult::Return(None),
                Err(e) => export_error_to_native(e),
            }
        }),
    );
    vm.register_native(
        svc,
        "call",
        "(Ljava/lang/String;I)I",
        Arc::new(|vm, tid, args| {
            let name = match read_name(vm, args[0]) {
                Ok(n) => n,
                Err(e) => return e,
            };
            port_call(vm, tid, None, &name, PayloadKind::Int, args[1])
        }),
    );
    vm.register_native(
        svc,
        "call",
        "(Ljava/lang/String;Ljava/lang/Object;)Ljava/lang/Object;",
        Arc::new(|vm, tid, args| {
            let name = match read_name(vm, args[0]) {
                Ok(n) => n,
                Err(e) => return e,
            };
            port_call(vm, tid, None, &name, PayloadKind::Obj, args[1])
        }),
    );
    vm.register_native(
        svc,
        "callAt",
        "(ILjava/lang/String;I)I",
        Arc::new(|vm, tid, args| {
            let unit = args[0].as_int();
            if unit < 0 {
                return NativeResult::Throw {
                    class_name: "java/lang/IllegalArgumentException",
                    message: format!("bad unit address {unit}"),
                };
            }
            let name = match read_name(vm, args[1]) {
                Ok(n) => n,
                Err(e) => return e,
            };
            port_call(
                vm,
                tid,
                Some(UnitId::new(unit as u32)),
                &name,
                PayloadKind::Int,
                args[2],
            )
        }),
    );
    vm.register_native(
        svc,
        "post",
        "(Ljava/lang/String;I)Lijvm/Future;",
        Arc::new(|vm, tid, args| {
            let name = match read_name(vm, args[0]) {
                Ok(n) => n,
                Err(e) => return e,
            };
            port_post(vm, tid, None, &name, PayloadKind::Int, args[1])
        }),
    );
    vm.register_native(
        svc,
        "post",
        "(Ljava/lang/String;Ljava/lang/Object;)Lijvm/Future;",
        Arc::new(|vm, tid, args| {
            let name = match read_name(vm, args[0]) {
                Ok(n) => n,
                Err(e) => return e,
            };
            port_post(vm, tid, None, &name, PayloadKind::Obj, args[1])
        }),
    );
    vm.register_native(
        svc,
        "postAt",
        "(ILjava/lang/String;I)Lijvm/Future;",
        Arc::new(|vm, tid, args| {
            let unit = args[0].as_int();
            if unit < 0 {
                return NativeResult::Throw {
                    class_name: "java/lang/IllegalArgumentException",
                    message: format!("bad unit address {unit}"),
                };
            }
            let name = match read_name(vm, args[1]) {
                Ok(n) => n,
                Err(e) => return e,
            };
            port_post(
                vm,
                tid,
                Some(UnitId::new(unit as u32)),
                &name,
                PayloadKind::Int,
                args[2],
            )
        }),
    );
    let fut = "ijvm/Future";
    vm.register_native(
        fut,
        "get",
        "()I",
        Arc::new(|vm, tid, args| future_get(vm, tid, args[0], PayloadKind::Int)),
    );
    vm.register_native(
        fut,
        "getObject",
        "()Ljava/lang/Object;",
        Arc::new(|vm, tid, args| future_get(vm, tid, args[0], PayloadKind::Obj)),
    );
    vm.register_native(
        fut,
        "isDone",
        "()Z",
        Arc::new(|vm, _tid, args| future_is_done(vm, args[0])),
    );
    vm.register_native(
        fut,
        "cancel",
        "()Z",
        Arc::new(|vm, tid, args| future_cancel(vm, tid, args[0])),
    );
    vm.register_native(
        svc,
        "unit",
        "()I",
        Arc::new(|vm, _tid, _args| {
            let id = vm
                .port
                .attach
                .as_ref()
                .map_or(-1, |(u, _)| u.index() as i32);
            NativeResult::Return(Some(Value::Int(id)))
        }),
    );
    let port = "ijvm/Port";
    vm.register_native(
        port,
        "send",
        "(Ljava/lang/String;I)V",
        Arc::new(|vm, tid, args| {
            let name = match read_name(vm, args[0]) {
                Ok(n) => n,
                Err(e) => return e,
            };
            port_send(vm, tid, &name, PayloadKind::Int, args[1])
        }),
    );
    vm.register_native(
        port,
        "send",
        "(Ljava/lang/String;Ljava/lang/Object;)V",
        Arc::new(|vm, tid, args| {
            let name = match read_name(vm, args[0]) {
                Ok(n) => n,
                Err(e) => return e,
            };
            port_send(vm, tid, &name, PayloadKind::Obj, args[1])
        }),
    );
}

/// Installs the `ijvm/Service`, `ijvm/Port` and `ijvm/Future` classes
/// and their natives. Called by [`crate::bootstrap::install`], so the
/// surface exists on every booted VM; the natives work unattached
/// (same-VM services) and attach to a cluster hub on
/// [`crate::sched::Cluster::submit`].
pub fn install(vm: &mut Vm) -> crate::error::Result<()> {
    register_natives(vm);
    vm.install_system_class(&service_class())?;
    vm.install_system_class(&port_class())?;
    vm.install_system_class(&future_class())?;
    Ok(())
}

/// Registers only the port natives, without installing (or re-defining)
/// any class. Checkpoint restore uses this: the image's serialized
/// bootstrap classpath already carries the `ijvm/*` class bytes, so the
/// classes are replayed from the image and only the host-side native
/// bindings need to come back. See [`crate::bootstrap::install_natives`].
pub(crate) fn install_natives(vm: &mut Vm) {
    register_natives(vm);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(r: Result<SendOutcome, SendError>) -> u64 {
        match r.expect("send failed") {
            SendOutcome::Sent(call) => call,
            SendOutcome::OverQuota { .. } => panic!("unexpected quota rejection"),
        }
    }

    #[test]
    fn hub_resolves_lowest_unit_and_parks_unresolved() {
        let hub = PortHub::default();
        // A call before any export parks in the hub...
        let call = sent(hub.send_request(
            UnitId::new(9),
            None,
            "svc",
            PayloadKind::Int,
            vec![1],
            false,
        ));
        assert_eq!(hub.unresolved_requests(), 1);
        assert!(hub.quiescent());
        // ...and is routed on export.
        hub.export(UnitId::new(2), Arc::from("svc"), IsolateId(0));
        hub.export(UnitId::new(1), Arc::from("svc"), IsolateId(0));
        assert_eq!(hub.unresolved_requests(), 0);
        assert!(hub.has_mail(UnitId::new(2)), "first exporter got the call");
        assert!(hub.has_woken());
        let mut woken = Vec::new();
        hub.drain_woken_into(&mut woken);
        assert_eq!(woken, vec![2]);
        assert!(!hub.has_woken());
        let mut mail = Vec::new();
        hub.take_mail_into(UnitId::new(2), &mut mail);
        assert!(matches!(
            mail.first(),
            Some(Envelope::Request { call: c, .. }) if *c == call
        ));
        // New sends resolve to the lowest exporting unit.
        sent(hub.send_request(
            UnitId::new(9),
            None,
            "svc",
            PayloadKind::Int,
            vec![2],
            false,
        ));
        assert!(hub.has_mail(UnitId::new(1)));
        assert!(!hub.has_mail(UnitId::new(2)));
    }

    #[test]
    fn hub_quota_parks_senders_and_releases_wake_them() {
        let hub = PortHub::with_quota(MailboxQuota {
            max_messages: 2,
            max_bytes: 1024,
        });
        let dest = UnitId::new(0);
        let sender = UnitId::new(3);
        hub.export(dest, Arc::from("svc"), IsolateId(0));
        // Two admissions fill the quota...
        sent(hub.send_request(sender, None, "svc", PayloadKind::Int, vec![1], false));
        sent(hub.send_request(sender, None, "svc", PayloadKind::Int, vec![2], false));
        // ...the third bounces with its payload handed back, and the
        // sender is registered for a wake-up token.
        match hub
            .send_request(sender, None, "svc", PayloadKind::Int, vec![3], false)
            .unwrap()
        {
            SendOutcome::OverQuota { bytes, dest } => {
                assert_eq!(bytes, vec![3]);
                assert_eq!(dest, 0, "the resolved destination rides along");
            }
            SendOutcome::Sent(_) => panic!("expected quota rejection"),
        }
        assert!(!hub.retry_ready(sender), "destination still full");
        let stats = hub.stats();
        let row = &stats.mailboxes[0];
        assert_eq!(
            (row.queued, row.admitted_messages, row.parked_senders),
            (2, 2, 1)
        );
        // Draining the mailbox alone releases nothing — capacity returns
        // only when the destination reports the requests served.
        let mut mail = Vec::new();
        hub.take_mail_into(dest, &mut mail);
        assert_eq!(mail.len(), 2);
        assert!(!hub.retry_ready(sender));
        let mut woken = Vec::new();
        hub.drain_woken_into(&mut woken);
        assert_eq!(woken, vec![0]);
        // The boundary flush returns capacity and wakes the sender.
        let mut outbox = Vec::new();
        hub.flush_boundary(dest, &mut outbox, 2, 2);
        assert!(hub.retry_ready(sender));
        assert!(hub.has_woken());
        woken.clear();
        hub.drain_woken_into(&mut woken);
        assert_eq!(woken, vec![3]);
        // The sender's retry sweep clears its registration.
        hub.clear_quota_waits(sender);
        assert!(!hub.retry_ready(sender));
        sent(hub.send_request(sender, None, "svc", PayloadKind::Int, vec![3], false));
    }

    #[test]
    fn hub_revocation_fails_sends_and_addressing_targets_units() {
        let hub = PortHub::default();
        hub.export(UnitId::new(0), Arc::from("svc"), IsolateId(1));
        hub.export(UnitId::new(1), Arc::from("svc"), IsolateId(1));
        // Addressed send goes to the named unit even if not the lowest.
        hub.send_request(
            UnitId::new(5),
            Some(UnitId::new(1)),
            "svc",
            PayloadKind::Int,
            vec![],
            false,
        )
        .unwrap();
        assert!(hub.has_mail(UnitId::new(1)));
        // Revoking one leaves the other resolvable...
        hub.revoke(UnitId::new(0), "svc");
        hub.send_request(UnitId::new(5), None, "svc", PayloadKind::Int, vec![], false)
            .unwrap();
        assert_eq!(hub.service_names(), vec![(1, "svc".to_owned())]);
        // ...revoking both fails fast.
        hub.revoke(UnitId::new(1), "svc");
        assert_eq!(
            hub.send_request(UnitId::new(5), None, "svc", PayloadKind::Int, vec![], false),
            Err(SendError::Revoked)
        );
        assert_eq!(
            hub.send_request(
                UnitId::new(5),
                Some(UnitId::new(1)),
                "svc",
                PayloadKind::Int,
                vec![],
                false
            ),
            Err(SendError::Revoked)
        );
    }

    // The shard-routing determinism lane: routing must be a pure
    // function of the service name (never of pointer identity, hash
    // seeds or export order), and bare-name resolution must pick the
    // lowest exporting unit however the exports were interleaved —
    // the two properties that let a sharded registry hide behind the
    // bit-identical differential contract.
    proptest::proptest! {
        #[test]
        fn shard_routing_is_deterministic(
            name in "[a-z0-9/._-]{1,24}",
            mut units in proptest::collection::vec(0u32..64, 1..8),
        ) {
            let shard = shard_of(&name);
            proptest::prop_assert!(shard < REGISTRY_SHARDS);
            // Stable across string identity (a fresh allocation).
            proptest::prop_assert_eq!(shard, shard_of(name.clone().as_str()));
            let hub = PortHub::default();
            for &u in units.iter() {
                hub.export(UnitId::new(u), Arc::from(name.as_str()), IsolateId(0));
            }
            sent(hub.send_request(
                UnitId::new(99),
                None,
                &name,
                PayloadKind::Int,
                vec![7],
                false,
            ));
            units.sort_unstable();
            proptest::prop_assert!(
                hub.has_mail(UnitId::new(units[0])),
                "bare-name resolution must pick the lowest exporter"
            );
        }
    }

    /// Mid-flood [`PortHub::stats`] snapshots must be coherent: with
    /// producers hammering one destination, every snapshot row has to
    /// satisfy the cross-field invariants (`admitted <= quota bound`,
    /// `queued <= admitted`) that torn reads between per-shard locks
    /// would violate — admission is counted under the same cell lock
    /// the snapshot reads, strictly before the envelope is posted.
    #[test]
    fn stats_snapshot_is_coherent_mid_flood() {
        let quota = MailboxQuota {
            max_messages: 8,
            max_bytes: 1 << 20,
        };
        let hub = Arc::new(PortHub::with_quota(quota));
        hub.export(UnitId::new(0), Arc::from("svc"), IsolateId(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let senders: Vec<_> = (1u32..5)
            .map(|s| {
                let hub = Arc::clone(&hub);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match hub
                            .send_request(
                                UnitId::new(s),
                                None,
                                "svc",
                                PayloadKind::Int,
                                vec![s as u8],
                                true,
                            )
                            .unwrap()
                        {
                            SendOutcome::Sent(_) => {}
                            SendOutcome::OverQuota { .. } => {
                                // Drain-and-release on the destination's
                                // behalf so the flood keeps cycling.
                                let mut mail = Vec::new();
                                hub.take_mail_into(UnitId::new(0), &mut mail);
                                let served: u64 = mail.len() as u64;
                                if served > 0 {
                                    hub.flush_boundary(
                                        UnitId::new(0),
                                        &mut Vec::new(),
                                        served as u32,
                                        served,
                                    );
                                }
                                hub.clear_quota_waits(UnitId::new(s));
                            }
                        }
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let stats = hub.stats();
            for row in stats.mailboxes.iter() {
                assert!(
                    row.admitted_messages <= quota.max_messages,
                    "admission bound torn: {} > {}",
                    row.admitted_messages,
                    quota.max_messages
                );
                assert!(
                    row.queued <= row.admitted_messages as usize,
                    "snapshot tore between queue and admission: queued {} \
                     admitted {}",
                    row.queued,
                    row.admitted_messages
                );
            }
        }
        stop.store(true, Ordering::Relaxed);
        for s in senders {
            s.join().unwrap();
        }
    }
}
