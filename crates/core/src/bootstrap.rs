//! Essential system classes, built programmatically and installed into the
//! bootstrap loader: `java/lang/Object`, `java/lang/Class`,
//! `java/lang/String`, the `Throwable` hierarchy, and
//! `org/ijvm/StoppedIsolateException`.
//!
//! The full system library (collections, `Thread`, `System`, I/O, …) lives
//! in `ijvm-jsl`; this module is only what the VM itself needs to operate
//! (string literals, exception delivery).

use crate::error::Result;
use crate::heap::ObjBody;
use crate::interp::STOPPED_ISOLATE_EXCEPTION;
use crate::natives::NativeResult;
use crate::value::Value;
use crate::vm::Vm;
use ijvm_classfile::{AccessFlags, ClassBuilder, ClassFile, Opcode};
use std::sync::Arc;

const PUB: AccessFlags = AccessFlags::PUBLIC;

/// Builds `java/lang/Object`.
pub fn object_class() -> ClassFile {
    let mut cb = ClassBuilder::new_root("java/lang/Object", PUB);
    let mut m = cb.method("<init>", "()V", PUB);
    m.op(Opcode::Return);
    m.done().expect("Object.<init>");
    cb.native_method("hashCode", "()I", PUB);
    cb.native_method("getClass", "()Ljava/lang/Class;", PUB);
    cb.native_method("toString", "()Ljava/lang/String;", PUB);
    let mut m = cb.method("equals", "(Ljava/lang/Object;)Z", PUB);
    let eq = m.new_label();
    m.aload(0);
    m.aload(1);
    m.branch(Opcode::IfAcmpeq, eq);
    m.const_int(0);
    m.op(Opcode::Ireturn);
    m.bind(eq);
    m.const_int(1);
    m.op(Opcode::Ireturn);
    m.done().expect("Object.equals");
    cb.build().expect("java/lang/Object")
}

/// Builds `java/lang/Class` (per-isolate instances are the monitors that
/// synchronized static methods lock — the state attack A2 targets).
pub fn class_class() -> ClassFile {
    let mut cb = ClassBuilder::new("java/lang/Class", "java/lang/Object", PUB);
    cb.field("name", "Ljava/lang/String;", PUB | AccessFlags::FINAL);
    let mut m = cb.method("getName", "()Ljava/lang/String;", PUB);
    m.aload(0);
    m.getfield("java/lang/Class", "name", "Ljava/lang/String;");
    m.op(Opcode::Areturn);
    m.done().expect("Class.getName");
    cb.build().expect("java/lang/Class")
}

/// Builds `java/lang/String` (backed by a `[C` value array).
pub fn string_class() -> ClassFile {
    let mut cb = ClassBuilder::new(
        "java/lang/String",
        "java/lang/Object",
        PUB | AccessFlags::FINAL,
    );
    cb.field("value", "[C", AccessFlags::PRIVATE | AccessFlags::FINAL);
    let mut m = cb.method("length", "()I", PUB);
    m.aload(0);
    m.getfield("java/lang/String", "value", "[C");
    m.op(Opcode::Arraylength);
    m.op(Opcode::Ireturn);
    m.done().expect("String.length");
    let mut m = cb.method("charAt", "(I)C", PUB);
    m.aload(0);
    m.getfield("java/lang/String", "value", "[C");
    m.iload(1);
    m.op(Opcode::Caload);
    m.op(Opcode::Ireturn);
    m.done().expect("String.charAt");
    cb.native_method("equals", "(Ljava/lang/Object;)Z", PUB);
    cb.native_method("hashCode", "()I", PUB);
    cb.native_method("concat", "(Ljava/lang/String;)Ljava/lang/String;", PUB);
    cb.native_method("substring", "(II)Ljava/lang/String;", PUB);
    cb.native_method("indexOf", "(I)I", PUB);
    cb.native_method("intern", "()Ljava/lang/String;", PUB);
    cb.native_method("toString", "()Ljava/lang/String;", PUB);
    cb.build().expect("java/lang/String")
}

/// Builds `java/lang/Throwable` with a `message` field.
pub fn throwable_class() -> ClassFile {
    let mut cb = ClassBuilder::new("java/lang/Throwable", "java/lang/Object", PUB);
    cb.field("message", "Ljava/lang/String;", AccessFlags::PROTECTED);
    let mut m = cb.method("<init>", "()V", PUB);
    m.aload(0);
    m.invokespecial("java/lang/Object", "<init>", "()V");
    m.op(Opcode::Return);
    m.done().expect("Throwable.<init>()");
    let mut m = cb.method("<init>", "(Ljava/lang/String;)V", PUB);
    m.aload(0);
    m.invokespecial("java/lang/Object", "<init>", "()V");
    m.aload(0);
    m.aload(1);
    m.putfield("java/lang/Throwable", "message", "Ljava/lang/String;");
    m.op(Opcode::Return);
    m.done().expect("Throwable.<init>(String)");
    let mut m = cb.method("getMessage", "()Ljava/lang/String;", PUB);
    m.aload(0);
    m.getfield("java/lang/Throwable", "message", "Ljava/lang/String;");
    m.op(Opcode::Areturn);
    m.done().expect("Throwable.getMessage");
    cb.build().expect("java/lang/Throwable")
}

/// Builds a trivial `Throwable` subclass with the two standard
/// constructors delegating to `super_name`.
pub fn exception_subclass(name: &str, super_name: &str) -> ClassFile {
    let mut cb = ClassBuilder::new(name, super_name, PUB);
    let mut m = cb.method("<init>", "()V", PUB);
    m.aload(0);
    m.invokespecial(super_name, "<init>", "()V");
    m.op(Opcode::Return);
    m.done().expect("ctor");
    let mut m = cb.method("<init>", "(Ljava/lang/String;)V", PUB);
    m.aload(0);
    m.aload(1);
    m.invokespecial(super_name, "<init>", "(Ljava/lang/String;)V");
    m.op(Opcode::Return);
    m.done().expect("ctor(String)");
    cb.build().expect("exception subclass")
}

/// Builds `org/ijvm/StoppedIsolateException`, the uncatchable-by-its-own-
/// isolate exception that isolate termination raises (paper §3.3). The
/// `isolateId` field records the terminated isolate.
pub fn stopped_isolate_exception_class() -> ClassFile {
    let mut cb = ClassBuilder::new(STOPPED_ISOLATE_EXCEPTION, "java/lang/Error", PUB);
    cb.field("isolateId", "I", PUB);
    let mut m = cb.method("<init>", "()V", PUB);
    m.aload(0);
    m.invokespecial("java/lang/Error", "<init>", "()V");
    m.op(Opcode::Return);
    m.done().expect("ctor");
    let mut m = cb.method("getIsolateId", "()I", PUB);
    m.aload(0);
    m.getfield(STOPPED_ISOLATE_EXCEPTION, "isolateId", "I");
    m.op(Opcode::Ireturn);
    m.done().expect("getIsolateId");
    cb.build().expect("StoppedIsolateException")
}

/// The standard exception hierarchy installed by [`install`], as
/// `(class, superclass)` pairs in installation order.
pub const EXCEPTION_HIERARCHY: &[(&str, &str)] = &[
    ("java/lang/Exception", "java/lang/Throwable"),
    ("java/lang/RuntimeException", "java/lang/Exception"),
    ("java/lang/Error", "java/lang/Throwable"),
    (
        "java/lang/NullPointerException",
        "java/lang/RuntimeException",
    ),
    (
        "java/lang/ArithmeticException",
        "java/lang/RuntimeException",
    ),
    (
        "java/lang/ArrayIndexOutOfBoundsException",
        "java/lang/RuntimeException",
    ),
    (
        "java/lang/NegativeArraySizeException",
        "java/lang/RuntimeException",
    ),
    ("java/lang/ClassCastException", "java/lang/RuntimeException"),
    (
        "java/lang/IllegalMonitorStateException",
        "java/lang/RuntimeException",
    ),
    (
        "java/lang/IllegalArgumentException",
        "java/lang/RuntimeException",
    ),
    (
        "java/lang/IllegalStateException",
        "java/lang/RuntimeException",
    ),
    (
        "java/lang/UnsupportedOperationException",
        "java/lang/RuntimeException",
    ),
    ("java/lang/SecurityException", "java/lang/RuntimeException"),
    ("java/lang/InterruptedException", "java/lang/Exception"),
    ("java/io/IOException", "java/lang/Exception"),
    ("java/lang/OutOfMemoryError", "java/lang/Error"),
    ("java/lang/StackOverflowError", "java/lang/Error"),
    ("java/lang/VerifyError", "java/lang/Error"),
    ("java/lang/InternalError", "java/lang/Error"),
    ("java/lang/NoClassDefFoundError", "java/lang/Error"),
    ("java/lang/NoSuchFieldError", "java/lang/Error"),
    ("java/lang/NoSuchMethodError", "java/lang/Error"),
    ("java/lang/AbstractMethodError", "java/lang/Error"),
    ("java/lang/UnsatisfiedLinkError", "java/lang/Error"),
    ("java/lang/ExceptionInInitializerError", "java/lang/Error"),
    // Raised at a caller whose cross-unit service call targets a
    // terminated isolate (see `crate::port`).
    (
        "org/ijvm/ServiceRevokedException",
        "java/lang/RuntimeException",
    ),
];

/// Installs the essential bootstrap classes and their natives. Must run
/// before any string or exception is created; `ijvm-jsl` calls this first.
pub fn install(vm: &mut Vm) -> Result<()> {
    register_core_natives(vm);
    vm.install_system_class(&object_class())?;
    vm.install_system_class(&string_class())?;
    vm.install_system_class(&class_class())?;
    vm.install_system_class(&throwable_class())?;
    for (name, sup) in EXCEPTION_HIERARCHY {
        vm.install_system_class(&exception_subclass(name, sup))?;
    }
    vm.install_system_class(&stopped_isolate_exception_class())?;
    crate::port::install(vm)?;
    Ok(())
}

/// Registers exactly the native implementations [`install`] would,
/// without installing any system class. This is the natives hook for
/// checkpoint restore ([`crate::checkpoint::restore`]): a checkpoint
/// image carries the bootstrap classpath — including every system-class
/// byte stream `install` originally wrote — so restore replays the class
/// definitions from the image and must not re-install them; only the
/// host-side native function table (which cannot be serialized) has to
/// be rebuilt. Embedders that registered additional natives must layer
/// their registrations on top, the same way they layered them over
/// [`install`] (e.g. `ijvm_jsl::install_natives`).
pub fn install_natives(vm: &mut Vm) {
    register_core_natives(vm);
    crate::port::install_natives(vm);
}

fn register_core_natives(vm: &mut Vm) {
    vm.register_native(
        "java/lang/Object",
        "hashCode",
        "()I",
        Arc::new(|_vm, _tid, args| {
            let r = args[0].as_ref().expect("receiver");
            // Identity hash: the slab index is stable for the object's life.
            NativeResult::Return(Some(Value::Int(r.0 as i32)))
        }),
    );
    vm.register_native(
        "java/lang/Object",
        "getClass",
        "()Ljava/lang/Class;",
        Arc::new(|vm, tid, args| {
            let r = args[0].as_ref().expect("receiver");
            let class = vm.heap().get(r).class;
            let iso = vm.thread(tid).expect("current thread").current_isolate;
            vm.ensure_mirror(class, iso);
            let mi = vm.mirror_index(iso);
            let class_obj = vm.class(class).mirrors[mi]
                .as_ref()
                .expect("mirror just ensured")
                .class_object;
            NativeResult::Return(Some(Value::Ref(class_obj)))
        }),
    );
    vm.register_native(
        "java/lang/Object",
        "toString",
        "()Ljava/lang/String;",
        Arc::new(|vm, tid, args| {
            let r = args[0].as_ref().expect("receiver");
            let class_name = vm.class(vm.heap().get(r).class).name.to_string();
            let iso = vm.thread(tid).expect("current thread").current_isolate;
            let s = vm.new_string(iso, &format!("{class_name}@{}", r.0));
            NativeResult::Return(Some(Value::Ref(s)))
        }),
    );
    vm.register_native(
        "java/lang/String",
        "toString",
        "()Ljava/lang/String;",
        Arc::new(|_vm, _tid, args| NativeResult::Return(Some(args[0]))),
    );
    vm.register_native(
        "java/lang/String",
        "equals",
        "(Ljava/lang/Object;)Z",
        Arc::new(|vm, _tid, args| {
            let a = args[0].as_ref().expect("receiver");
            let eq = match args[1] {
                Value::Ref(b) => {
                    let sa = vm.read_string(a);
                    let sb = vm.read_string(b);
                    sa.is_some() && sa == sb
                }
                _ => false,
            };
            NativeResult::Return(Some(Value::Int(eq as i32)))
        }),
    );
    vm.register_native(
        "java/lang/String",
        "hashCode",
        "()I",
        Arc::new(|vm, _tid, args| {
            let r = args[0].as_ref().expect("receiver");
            let s = vm.read_string(r).unwrap_or_default();
            // Java's String.hashCode.
            let mut h: i32 = 0;
            for c in s.encode_utf16() {
                h = h.wrapping_mul(31).wrapping_add(c as i32);
            }
            NativeResult::Return(Some(Value::Int(h)))
        }),
    );
    vm.register_native(
        "java/lang/String",
        "concat",
        "(Ljava/lang/String;)Ljava/lang/String;",
        Arc::new(|vm, tid, args| {
            let a = args[0].as_ref().expect("receiver");
            let sa = vm.read_string(a).unwrap_or_default();
            let sb = match args[1] {
                Value::Ref(b) => vm.read_string(b).unwrap_or_else(|| "null".to_owned()),
                _ => "null".to_owned(),
            };
            let iso = vm.thread(tid).expect("current thread").current_isolate;
            let r = vm.new_string(iso, &format!("{sa}{sb}"));
            NativeResult::Return(Some(Value::Ref(r)))
        }),
    );
    vm.register_native(
        "java/lang/String",
        "substring",
        "(II)Ljava/lang/String;",
        Arc::new(|vm, tid, args| {
            let r = args[0].as_ref().expect("receiver");
            let s = vm.read_string(r).unwrap_or_default();
            let chars: Vec<u16> = s.encode_utf16().collect();
            let from = args[1].as_int();
            let to = args[2].as_int();
            if from < 0 || to > chars.len() as i32 || from > to {
                return NativeResult::Throw {
                    class_name: "java/lang/ArrayIndexOutOfBoundsException",
                    message: format!("substring({from}, {to}) of length {}", chars.len()),
                };
            }
            let sub = String::from_utf16_lossy(&chars[from as usize..to as usize]);
            let iso = vm.thread(tid).expect("current thread").current_isolate;
            let out = vm.new_string(iso, &sub);
            NativeResult::Return(Some(Value::Ref(out)))
        }),
    );
    vm.register_native(
        "java/lang/String",
        "indexOf",
        "(I)I",
        Arc::new(|vm, _tid, args| {
            let r = args[0].as_ref().expect("receiver");
            let s = vm.read_string(r).unwrap_or_default();
            let needle = args[1].as_int() as u16;
            let idx = s
                .encode_utf16()
                .position(|c| c == needle)
                .map(|i| i as i32)
                .unwrap_or(-1);
            NativeResult::Return(Some(Value::Int(idx)))
        }),
    );
    vm.register_native(
        "java/lang/String",
        "intern",
        "()Ljava/lang/String;",
        Arc::new(|vm, tid, args| {
            let r = args[0].as_ref().expect("receiver");
            let s = vm.read_string(r).unwrap_or_default();
            let iso = vm.thread(tid).expect("current thread").current_isolate;
            let interned = vm.intern_string(iso, &s);
            NativeResult::Return(Some(Value::Ref(interned)))
        }),
    );
}

/// Reads a `[C` payload directly (helper for hosts and the JSL).
pub fn chars_of(vm: &Vm, r: crate::value::GcRef) -> Option<Vec<u16>> {
    match &vm.heap().get(r).body {
        ObjBody::ArrChar(chars) => Some(chars.to_vec()),
        _ => None,
    }
}
