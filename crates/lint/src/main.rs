//! Standalone entry point for the CI `lint` job: prints every
//! violation and exits 1 if any exist. `cargo test -p ijvm-lint` runs
//! the identical pass as an integration test.

fn main() {
    let root = ijvm_lint::workspace_root();
    let violations = ijvm_lint::check_workspace(&root);
    for v in &violations {
        eprintln!("{v}");
    }
    if violations.is_empty() {
        println!("ijvm-lint: workspace clean");
    } else {
        eprintln!("ijvm-lint: {} violation(s)", violations.len());
        std::process::exit(1);
    }
}
