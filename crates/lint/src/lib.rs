//! `ijvm-lint` — the workspace's project-specific static analysis.
//!
//! Clippy checks general Rust; this crate checks the invariants that
//! are *specific to this codebase's correctness argument* and that no
//! general-purpose tool knows about: the `VmRc` safety story (R1, R3),
//! the deterministic-scheduler purity the differential oracle depends
//! on (R2), and the embedding-surface evolution contract (R4). See
//! [`rules`] for the catalog and `ARCHITECTURE.md` § Correctness
//! tooling for the prose rationale.
//!
//! It runs three ways, all over the same [`check_workspace`] pass:
//!
//! * `cargo test -p ijvm-lint` — the `workspace_is_lint_clean`
//!   integration test fails the build on any violation;
//! * `cargo run -p ijvm-lint` — the same pass as a standalone binary
//!   (exit 1 on violations), which is what the CI `lint` job invokes;
//! * unit/fixture tests exercising the analyzer itself.

pub mod model;
pub mod rules;

pub use model::{scan, Line, SourceFile};
pub use rules::{Checker, Rule, Violation, SURFACE_ALLOWLIST};

use std::path::{Path, PathBuf};

/// The workspace root, derived from this crate's manifest directory
/// (`<root>/crates/lint`).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// Directories never scanned: build output, VCS metadata, and the lint
/// crate's own deliberately-violating fixtures.
fn skip_rel(rel: &str) -> bool {
    rel.starts_with("crates/lint/tests/fixtures")
        || rel.split('/').any(|seg| seg == "target" || seg == ".git")
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let rel = rel_of(&path, root);
        if skip_rel(&rel) {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_of(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs every rule over every `.rs` file under `<root>/crates` and
/// `<root>/src`, returning the violations sorted by path and line.
///
/// The R4 embedding surface is rebuilt from `crates/core/src/lib.rs`
/// on every run, so re-exporting a new type through the prelude places
/// it under the rule with no analyzer change.
pub fn check_workspace(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), root, &mut files);
    collect_rs(&root.join("src"), root, &mut files);

    let lib_path = root.join("crates/core/src/lib.rs");
    let surface = match std::fs::read_to_string(&lib_path) {
        Ok(text) => Checker::surface_from_lib(&scan("crates/core/src/lib.rs", &text)),
        Err(_) => Default::default(),
    };
    let checker = Checker::with_surface(surface);

    let mut out = Vec::new();
    for path in files {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let file = scan(&rel_of(&path, root), &text);
        out.extend(checker.check_file(&file));
    }
    out.sort_by(|a, b| (&a.rel_path, a.line, a.rule).cmp(&(&b.rel_path, b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_dir_and_build_output_are_skipped() {
        assert!(skip_rel("crates/lint/tests/fixtures/r1_bad.rs"));
        assert!(skip_rel("target/debug/build/foo.rs"));
        assert!(skip_rel("crates/core/target/foo.rs"));
        assert!(!skip_rel("crates/core/src/vmrc.rs"));
        assert!(!skip_rel("crates/lint/tests/workspace.rs"));
    }

    #[test]
    fn surface_comes_from_prelude_reexports() {
        let lib = scan(
            "crates/core/src/lib.rs",
            "pub mod prelude {\n    pub use crate::vm::{Vm, VmError};\n    pub use crate::value::Value;\n}\npub use crate::cluster::Cluster;\n",
        );
        let surface = Checker::surface_from_lib(&lib);
        for name in ["Vm", "VmError", "Value", "Cluster"] {
            assert!(surface.contains(name), "missing {name}");
        }
        assert!(!surface.contains("prelude"));
    }
}
