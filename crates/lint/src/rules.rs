//! The rule catalog and the per-file checking passes.
//!
//! Four rules guard the invariants the workspace argues in prose (see
//! `ARCHITECTURE.md` § Correctness tooling):
//!
//! * **R1 `safety-comment`** — every `unsafe` occurrence (block, impl,
//!   fn) must be justified by a `// SAFETY:` comment on the same line or
//!   in the comment block directly above it. The `VmRc` unit-confinement
//!   argument lives in exactly such comments; this rule keeps the next
//!   `unsafe` site from shipping without one.
//! * **R2 `determinism`** — deterministic-path modules (`interp`,
//!   `sched`, `port`, `vm`, `engine/*`) must not read wall clocks
//!   (`Instant`, `SystemTime` — the sanctioned path is
//!   `trace::WallClock`), sleep, use randomness, or mention
//!   `HashMap`/`HashSet` without a justification: hash-iteration order
//!   leaking into delivery or wake order is precisely the bug class the
//!   differential suite can miss (both schedulers would drift
//!   together).
//! * **R3 `hot-handle`** — the hot code handles (`CodeBody`,
//!   `PreparedCode`, `CallSite`) must never be wrapped in `Rc`/`Arc`:
//!   `Rc` would silently un-`Send` the VM unit, `Arc` would re-pay the
//!   contended refcount the `VmRc` design removed. Sharing is minted
//!   only by `vmrc.rs::share()`.
//! * **R4 `api-hygiene`** — embedding-surface types (everything
//!   re-exported through `ijvm_core::prelude` / the crate root) must be
//!   `#[non_exhaustive]` or carry an entry in [`SURFACE_ALLOWLIST`]
//!   explaining why exhaustive construction/matching is part of their
//!   contract; `#[deprecated]` must name its replacement in the note.
//!
//! Any site can be excused with `// lint: allow(<rule>) — <reason>` on
//! the same line or the comment line directly above (attribute lines in
//! between are skipped). The reason is **required**: an allow without
//! one is itself a violation.

use crate::model::{has_word, Line, SourceFile};
use std::collections::BTreeSet;

/// The rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: `unsafe` requires an adjacent `// SAFETY:` justification.
    SafetyComment,
    /// R2: no wall clocks, sleeps, randomness or unjustified hash
    /// collections in deterministic-path modules.
    Determinism,
    /// R3: no `Rc`/`Arc` around the hot code handles outside `vmrc.rs`.
    HotHandle,
    /// R4: embedding-surface hygiene (`#[non_exhaustive]`, deprecated
    /// notes naming replacements).
    ApiHygiene,
}

impl Rule {
    /// The identifier used in `lint: allow(...)` annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::Determinism => "determinism",
            Rule::HotHandle => "hot-handle",
            Rule::ApiHygiene => "api-hygiene",
        }
    }

    fn from_name(name: &str) -> Option<Rule> {
        match name {
            "safety-comment" => Some(Rule::SafetyComment),
            "determinism" => Some(Rule::Determinism),
            "hot-handle" => Some(Rule::HotHandle),
            "api-hygiene" => Some(Rule::ApiHygiene),
            _ => None,
        }
    }
}

/// One finding: file, 1-based line, rule and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rel_path: String,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel_path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Embedding-surface types that are deliberately **not**
/// `#[non_exhaustive]`. Every entry must carry the reason; the
/// `allowlist_reasons_are_substantive` unit test enforces it.
pub const SURFACE_ALLOWLIST: &[(&str, &str)] = &[
    (
        "Value",
        "the guest value model; embedders exhaustively match it by design \
         and a new value kind is intentionally a breaking change",
    ),
    (
        "GcRef",
        "a transparent heap handle (newtype over u32); growing it would \
         change the heap word size, never happens compatibly",
    ),
    (
        "ClassId",
        "transparent index newtype; the pub field is the contract",
    ),
    (
        "IsolateId",
        "transparent index newtype; the pub field is the contract",
    ),
    (
        "ThreadId",
        "transparent index newtype; the pub field is the contract",
    ),
    (
        "LoaderId",
        "transparent index newtype; the pub field is the contract",
    ),
    (
        "MethodRef",
        "a resolved (class, slot) pair; both fields are the contract",
    ),
    (
        "IsolationMode",
        "the paper's two-mode A/B (baseline vs I-JVM) is the crate's \
         thesis; a third mode would be a redesign, not an addition",
    ),
    (
        "IsolateState",
        "the paper §3.3 lifecycle (Active/Terminated); embedders \
         exhaustively match it when rendering administrator views",
    ),
    (
        "SchedulerKind",
        "embedders construct and match both modes; a new scheduling mode \
         changes the determinism contract and must be a visible break",
    ),
    (
        "Cluster",
        "opaque handle, no public fields; non_exhaustive adds nothing",
    ),
    (
        "ClusterBuilder",
        "opaque builder, no public fields; non_exhaustive adds nothing",
    ),
    (
        "ClusterCtl",
        "opaque remote-control handle, no public fields",
    ),
    ("UnitHandle", "opaque per-unit handle, no public fields"),
    (
        "UnitId",
        "opaque id (field private behind index()); non_exhaustive adds \
         nothing",
    ),
    (
        "Vm",
        "the VM itself; constructed only via Vm::new and never matched",
    ),
    (
        "TraceEvent",
        "packed 24-byte record with a compile-time size assertion; \
         growing it is deliberately a breaking (and size-visible) change",
    ),
    (
        "TraceRing",
        "opaque ring, fields private, accessor-only surface",
    ),
    ("TraceSink", "opaque export sink, fields private"),
    ("LatencyHistogram", "fields private, accessor-only surface"),
    (
        "ResourceStats",
        "the paper §3.2 resource taxonomy; attack/workload suites build \
         expected-counter tables with struct literals and functional \
         update, which non_exhaustive would forbid across crates",
    ),
    (
        "NativeResult",
        "embedders writing natives construct and exhaustively match the \
         full protocol; hiding variants would make natives unwritable \
         outside the core crate",
    ),
];

const DETERMINISTIC_PATHS: &[&str] = &[
    "crates/core/src/interp.rs",
    "crates/core/src/sched.rs",
    "crates/core/src/port.rs",
    "crates/core/src/mailbox.rs",
    "crates/core/src/vm.rs",
    // Image capture must be a pure function of VM state (checkpoint
    // bit-identity across scheduler modes) and restore must rebuild
    // hash-free, clock-free state — both directions are oracle-visible.
    "crates/core/src/checkpoint.rs",
];

const DETERMINISTIC_DIRS: &[&str] = &["crates/core/src/engine/"];

/// Tokens banned in deterministic-path modules (word-boundary matched).
const BANNED_DETERMINISM: &[(&str, &str)] = &[
    ("Instant", "wall-clock read; route through trace::WallClock"),
    (
        "SystemTime",
        "wall-clock read; route through trace::WallClock",
    ),
    (
        "HashMap",
        "hash-iteration order can leak into delivery/wake order",
    ),
    (
        "HashSet",
        "hash-iteration order can leak into delivery/wake order",
    ),
    ("thread_rng", "nondeterministic randomness"),
    ("random", "nondeterministic randomness"),
    ("sleep", "wall-clock dependent blocking"),
];

const HOT_HANDLES: &[&str] = &["CodeBody", "PreparedCode", "CallSite"];

fn is_deterministic_path(rel: &str) -> bool {
    DETERMINISTIC_PATHS.contains(&rel) || DETERMINISTIC_DIRS.iter().any(|d| rel.starts_with(d))
}

/// A parsed `lint: allow(rule)` annotation.
struct Allow {
    rule: Option<Rule>,
    raw_name: String,
    has_reason: bool,
}

/// Extracts every `lint: allow(...)` annotation from a comment.
fn parse_allows(comment: &str) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = comment[from..].find("lint: allow(") {
        let start = from + pos + "lint: allow(".len();
        let Some(close) = comment[start..].find(')') else {
            break;
        };
        let name = comment[start..start + close].trim().to_string();
        let tail = comment[start + close + 1..].trim_start();
        // The reason follows a dash (—, – or -) and must be non-empty.
        let has_reason = tail
            .strip_prefix('—')
            .or_else(|| tail.strip_prefix('–'))
            .or_else(|| tail.strip_prefix("--"))
            .or_else(|| tail.strip_prefix('-'))
            .is_some_and(|r| !r.trim().is_empty());
        out.push(Allow {
            rule: Rule::from_name(&name),
            raw_name: name,
            has_reason,
        });
        from = start + close + 1;
    }
    out
}

/// The checker: rule passes over scanned files. `surface` is the set of
/// type names R4 treats as the embedding surface.
pub struct Checker {
    surface: BTreeSet<String>,
}

impl Checker {
    pub fn with_surface(surface: BTreeSet<String>) -> Checker {
        Checker { surface }
    }

    /// Builds the R4 surface from a scanned `lib.rs`: every CamelCase
    /// name re-exported through a `pub use crate::…` item (the prelude
    /// and the root re-exports). Self-maintaining: exporting a new type
    /// through the prelude puts it under the rule automatically.
    pub fn surface_from_lib(lib: &SourceFile) -> BTreeSet<String> {
        let mut surface = BTreeSet::new();
        let mut in_use = false;
        for line in &lib.lines {
            let code = line.code.trim();
            if code.starts_with("pub use crate::") {
                in_use = true;
            }
            if in_use {
                for tok in code.split(|c: char| !c.is_alphanumeric() && c != '_') {
                    // `Result as VmResult`: definitions are scanned under
                    // their original name, so keep the pre-`as` token;
                    // the alias also lands in the set, harmlessly.
                    if tok.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                        surface.insert(tok.to_string());
                    }
                }
                if code.contains(';') {
                    in_use = false;
                }
            }
        }
        surface
    }

    /// Runs every rule over one scanned file.
    pub fn check_file(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let allows = self.collect_allows(file, &mut out);
        self.rule_safety_comment(file, &allows, &mut out);
        self.rule_determinism(file, &allows, &mut out);
        self.rule_hot_handle(file, &allows, &mut out);
        self.rule_api_hygiene(file, &allows, &mut out);
        out.sort_by_key(|v| (v.line, v.rule));
        out
    }

    /// Per-line allow sets. An annotation covers its own line; on a
    /// comment-only line it covers the next code line (skipping blank
    /// and attribute lines). Unknown rule names and missing reasons are
    /// reported as violations of the annotation itself.
    fn collect_allows(&self, file: &SourceFile, out: &mut Vec<Violation>) -> Vec<Vec<Rule>> {
        let mut per_line: Vec<Vec<Rule>> = vec![Vec::new(); file.lines.len()];
        let mut pending: Vec<Rule> = Vec::new();
        for (i, line) in file.lines.iter().enumerate() {
            let mut here = Vec::new();
            for allow in parse_allows(&line.comment) {
                let Some(rule) = allow.rule else {
                    out.push(Violation {
                        rel_path: file.rel_path.clone(),
                        line: i + 1,
                        rule: Rule::ApiHygiene,
                        message: format!(
                            "unknown rule `{}` in lint: allow(...) — valid rules: \
                             safety-comment, determinism, hot-handle, api-hygiene",
                            allow.raw_name
                        ),
                    });
                    continue;
                };
                if !allow.has_reason {
                    out.push(Violation {
                        rel_path: file.rel_path.clone(),
                        line: i + 1,
                        rule,
                        message: "lint: allow(...) without a reason — write \
                                  `// lint: allow(<rule>) — <why this site is sound>`"
                            .to_string(),
                    });
                    continue;
                }
                here.push(rule);
            }
            if line.is_comment_only() {
                pending.extend(here);
                continue;
            }
            if line.is_blank() || line.is_attr() {
                // Pending allows pass over attributes and blank lines to
                // reach the item they annotate.
                per_line[i].extend(here);
                continue;
            }
            per_line[i].extend(here);
            per_line[i].append(&mut pending);
        }
        per_line
    }

    fn allowed(allows: &[Vec<Rule>], i: usize, rule: Rule) -> bool {
        allows[i].contains(&rule)
    }

    /// R1: every `unsafe` needs a `SAFETY:` comment on the same line or
    /// in the comment block directly above (attributes skipped).
    fn rule_safety_comment(
        &self,
        file: &SourceFile,
        allows: &[Vec<Rule>],
        out: &mut Vec<Violation>,
    ) {
        for (i, line) in file.lines.iter().enumerate() {
            if !has_word(&line.code, "unsafe") || Self::allowed(allows, i, Rule::SafetyComment) {
                continue;
            }
            if line.comment.contains("SAFETY") || line.doc.contains("SAFETY") {
                continue;
            }
            let mut j = i;
            let mut justified = false;
            while j > 0 {
                j -= 1;
                let above: &Line = &file.lines[j];
                if above.is_comment_only() || above.is_blank() || above.is_attr() {
                    if above.comment.contains("SAFETY") || above.doc.contains("SAFETY") {
                        justified = true;
                        break;
                    }
                } else {
                    break;
                }
            }
            if !justified {
                out.push(Violation {
                    rel_path: file.rel_path.clone(),
                    line: i + 1,
                    rule: Rule::SafetyComment,
                    message: "`unsafe` without an adjacent `// SAFETY:` comment stating \
                              why the invariants hold"
                        .to_string(),
                });
            }
        }
    }

    /// R2: banned tokens in deterministic-path modules.
    fn rule_determinism(&self, file: &SourceFile, allows: &[Vec<Rule>], out: &mut Vec<Violation>) {
        if !is_deterministic_path(&file.rel_path) {
            return;
        }
        for (i, line) in file.lines.iter().enumerate() {
            for &(token, why) in BANNED_DETERMINISM {
                if has_word(&line.code, token) && !Self::allowed(allows, i, Rule::Determinism) {
                    out.push(Violation {
                        rel_path: file.rel_path.clone(),
                        line: i + 1,
                        rule: Rule::Determinism,
                        message: format!(
                            "`{token}` in a deterministic-path module ({why}); justify \
                             with `// lint: allow(determinism) — <reason>` if sound"
                        ),
                    });
                }
            }
        }
    }

    /// R3: `Rc`/`Arc` around a hot code handle, outside `vmrc.rs`.
    fn rule_hot_handle(&self, file: &SourceFile, allows: &[Vec<Rule>], out: &mut Vec<Violation>) {
        if file.rel_path.ends_with("vmrc.rs") {
            return;
        }
        for (i, line) in file.lines.iter().enumerate() {
            let wraps = has_word(&line.code, "Rc") || has_word(&line.code, "Arc");
            if !wraps || Self::allowed(allows, i, Rule::HotHandle) {
                continue;
            }
            if let Some(hot) = HOT_HANDLES.iter().find(|h| has_word(&line.code, h)) {
                out.push(Violation {
                    rel_path: file.rel_path.clone(),
                    line: i + 1,
                    rule: Rule::HotHandle,
                    message: format!(
                        "`{hot}` wrapped in Rc/Arc — hot handles are shared only through \
                         VmRc (vmrc.rs::share): Rc would un-Send the unit, Arc re-pays \
                         the atomic refcount the call path was freed from"
                    ),
                });
            }
        }
    }

    /// R4: surface types must be `#[non_exhaustive]` or allowlisted;
    /// `#[deprecated]` must name its replacement.
    fn rule_api_hygiene(&self, file: &SourceFile, allows: &[Vec<Rule>], out: &mut Vec<Violation>) {
        if !file.rel_path.starts_with("crates/core/src/") {
            return;
        }
        for (i, line) in file.lines.iter().enumerate() {
            let code = line.code.trim();
            // -- non_exhaustive on surface structs/enums --------------
            let def = code
                .strip_prefix("pub struct ")
                .or_else(|| code.strip_prefix("pub enum "));
            if let Some(rest) = def {
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if self.surface.contains(&name)
                    && !Self::allowed(allows, i, Rule::ApiHygiene)
                    && !SURFACE_ALLOWLIST.iter().any(|(n, _)| *n == name)
                {
                    let mut j = i;
                    let mut marked = false;
                    while j > 0 {
                        j -= 1;
                        let above = &file.lines[j];
                        if above.is_comment_only() || above.is_blank() || above.is_attr() {
                            if above.code.contains("non_exhaustive") {
                                marked = true;
                                break;
                            }
                        } else {
                            break;
                        }
                    }
                    if !marked {
                        out.push(Violation {
                            rel_path: file.rel_path.clone(),
                            line: i + 1,
                            rule: Rule::ApiHygiene,
                            message: format!(
                                "embedding-surface type `{name}` is neither \
                                 #[non_exhaustive] nor allowlisted in \
                                 ijvm_lint::SURFACE_ALLOWLIST (with a reason)"
                            ),
                        });
                    }
                }
            }
            // -- deprecated must name a replacement -------------------
            if code.contains("#[deprecated") && !Self::allowed(allows, i, Rule::ApiHygiene) {
                // Accumulate the attribute's raw text (notes are string
                // literals, blanked in `code`) until brackets balance.
                let mut attr = String::new();
                let mut depth = 0i32;
                for l in &file.lines[i..] {
                    attr.push_str(&l.raw);
                    attr.push('\n');
                    depth += l.code.matches('[').count() as i32;
                    depth -= l.code.matches(']').count() as i32;
                    if depth <= 0 {
                        break;
                    }
                }
                let names_replacement = attr.contains("note")
                    && (attr.contains("use ") || attr.contains('`') || attr.contains("instead"));
                if !names_replacement {
                    out.push(Violation {
                        rel_path: file.rel_path.clone(),
                        line: i + 1,
                        rule: Rule::ApiHygiene,
                        message: "#[deprecated] without a note naming the replacement \
                                  (e.g. note = \"use `X` instead\")"
                            .to_string(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_reasons_are_substantive() {
        for (name, reason) in SURFACE_ALLOWLIST {
            assert!(
                reason.split_whitespace().count() >= 4,
                "allowlist entry `{name}` needs a real reason, got: {reason:?}"
            );
        }
    }

    #[test]
    fn sharded_hub_files_are_in_deterministic_scope() {
        // The sharded PortHub splits delivery state across registry
        // shards and per-unit mailboxes; a `HashMap` sneaking into
        // either file could leak hash-iteration order into resolution
        // or wake order. Both must stay under the determinism rule.
        for rel in ["crates/core/src/port.rs", "crates/core/src/mailbox.rs"] {
            assert!(
                is_deterministic_path(rel),
                "{rel} must be covered by the determinism lint"
            );
        }
    }

    #[test]
    fn allow_parsing_accepts_dash_variants() {
        for dash in ["—", "-", "--", "–"] {
            let allows = parse_allows(&format!(" lint: allow(determinism) {dash} keyed only"));
            assert_eq!(allows.len(), 1);
            assert_eq!(allows[0].rule, Some(Rule::Determinism));
            assert!(allows[0].has_reason, "dash {dash:?} carries the reason");
        }
        let missing = parse_allows(" lint: allow(determinism)");
        assert!(!missing[0].has_reason);
        let unknown = parse_allows(" lint: allow(no-such-rule) — x");
        assert!(unknown[0].rule.is_none());
    }
}
