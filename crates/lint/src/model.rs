//! The source model: a comment- and string-aware line scanner.
//!
//! The analyzer has no parser dependency (the build environment is
//! offline, so `syn` is unavailable); instead each file is lexed into a
//! per-line model that is exactly strong enough for the rule passes:
//!
//! * [`Line::code`] — the line's program text with comments removed and
//!   string/char literal *contents* blanked (the delimiters remain, so
//!   `"HashMap"` in a string can never trip the determinism rule);
//! * [`Line::comment`] — the line's comment text (line comments, doc
//!   comments and the slices of block comments crossing the line), where
//!   `SAFETY:` justifications and `lint: allow(...)` annotations live.
//!
//! The scanner understands nested block comments, escapes, raw strings
//! (`r"…"`, `r#"…"#`, with `b`/`c` prefixes) and the char-literal vs
//! lifetime ambiguity (`'a'` vs `'a`), which is everything required to
//! never misclassify a token's context.

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The original text (used only where literal contents matter, e.g.
    /// checking that a `#[deprecated]` note names a replacement).
    pub raw: String,
    /// Program text: comments stripped, literal contents blanked.
    pub code: String,
    /// Plain (`//`, `/* */`) comment text — where `SAFETY:` and
    /// annotations live.
    pub comment: String,
    /// Doc-comment text (`///`, `//!`). Kept separate so documentation
    /// *describing* the annotation grammar is never parsed as an
    /// annotation.
    pub doc: String,
}

impl Line {
    /// `true` when the line carries comments but no program text.
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty()
            && !(self.comment.trim().is_empty() && self.doc.trim().is_empty())
    }

    /// `true` when the line carries neither program text nor comments.
    pub fn is_blank(&self) -> bool {
        self.code.trim().is_empty() && self.comment.trim().is_empty() && self.doc.trim().is_empty()
    }

    /// `true` when the line's program text is (the start of) an
    /// attribute — rule passes walk through these when looking for the
    /// comment block above an item.
    pub fn is_attr(&self) -> bool {
        let t = self.code.trim_start();
        t.starts_with("#[") || t.starts_with("#![")
    }
}

/// A scanned file: its workspace-relative path (always `/`-separated)
/// and line model.
#[derive(Debug)]
pub struct SourceFile {
    pub rel_path: String,
    pub lines: Vec<Line>,
}

enum State {
    Code,
    /// `true` when the comment is a doc comment (`///` or `//!`).
    LineComment(bool),
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Scans `text` into a [`SourceFile`].
pub fn scan(rel_path: &str, text: &str) -> SourceFile {
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment(_)) {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        cur.raw.push(c);
        match state {
            State::Code => match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    let is_doc = matches!(chars.get(i + 2), Some('/') | Some('!'));
                    state = State::LineComment(is_doc);
                    i += 1;
                    cur.raw.push('/');
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    state = State::BlockComment(1);
                    i += 1;
                    cur.raw.push('*');
                }
                '"' => {
                    cur.code.push('"');
                    state = State::Str;
                }
                'r' | 'b' | 'c' if !prev_is_ident(&cur.code) || c == 'r' => {
                    // Possible raw-string prefix: r"…", r#"…"#, br"…",
                    // cr#"…"#. An `r` mid-identifier is excluded by the
                    // word-boundary check; a failed match falls through
                    // to plain identifier handling.
                    if let Some((skip, hashes)) = raw_string_at(&chars, i, &cur.code) {
                        cur.code.push('"');
                        // chars[i] is already in `raw`; append the rest
                        // of the prefix (`r#…#"`).
                        for k in 1..skip {
                            if let Some(&pc) = chars.get(i + k) {
                                cur.raw.push(pc);
                            }
                        }
                        i += skip;
                        state = State::RawStr(hashes);
                        continue;
                    }
                    cur.code.push(c);
                }
                '\'' => {
                    // Lifetime (`'a`) or char literal (`'a'`, `'\n'`)?
                    let n1 = chars.get(i + 1).copied();
                    let n2 = chars.get(i + 2).copied();
                    let is_char = match n1 {
                        Some('\\') => true,
                        Some(x) if x != '\'' => n2 == Some('\''),
                        _ => false,
                    };
                    cur.code.push('\'');
                    if is_char {
                        state = State::CharLit;
                    }
                }
                _ => cur.code.push(c),
            },
            State::LineComment(is_doc) => {
                if is_doc {
                    cur.doc.push(c);
                } else {
                    cur.comment.push(c);
                }
            }
            State::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    cur.raw.push('*');
                    cur.comment.push_str("/*");
                    i += 2;
                    continue;
                }
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    cur.raw.push('/');
                    i += 2;
                    continue;
                }
                cur.comment.push(c);
            }
            State::Str => match c {
                '\\' => {
                    // Skip the escaped char (it may be a quote).
                    if let Some(&e) = chars.get(i + 1) {
                        if e != '\n' {
                            cur.raw.push(e);
                            i += 1;
                        }
                    }
                }
                '"' => {
                    cur.code.push('"');
                    state = State::Code;
                }
                _ => {}
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    for k in 0..hashes as usize {
                        if let Some(&h) = chars.get(i + 1 + k) {
                            cur.raw.push(h);
                        }
                    }
                    i += hashes as usize;
                    cur.code.push('"');
                    state = State::Code;
                }
            }
            State::CharLit => match c {
                '\\' => {
                    if let Some(&e) = chars.get(i + 1) {
                        if e != '\n' {
                            cur.raw.push(e);
                            i += 1;
                        }
                    }
                }
                '\'' => {
                    cur.code.push('\'');
                    state = State::Code;
                }
                _ => {}
            },
        }
        i += 1;
    }
    if !cur.raw.is_empty() || !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    SourceFile {
        rel_path: rel_path.replace('\\', "/"),
        lines,
    }
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If a raw string starts at `chars[i]`, returns `(chars consumed
/// before the contents, hash count)`.
fn raw_string_at(chars: &[char], i: usize, code_so_far: &str) -> Option<(usize, u32)> {
    if prev_is_ident(code_so_far) {
        return None;
    }
    let mut j = i;
    // Optional b/c prefix before r.
    if matches!(chars.get(j), Some('b') | Some('c')) && chars.get(j + 1) == Some(&'r') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((j - i + 1, hashes))
    } else {
        None
    }
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'))
}

/// Word-boundary token search: `needle` must not be flanked by
/// identifier characters (so `VmRc` never matches `Rc`, and
/// `randomize` never matches `random`).
pub fn has_word(code: &str, needle: &str) -> bool {
    find_word(code, needle).is_some()
}

/// Position of the first word-boundary occurrence of `needle`.
pub fn find_word(code: &str, needle: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_separated() {
        let f = scan(
            "x.rs",
            "let a = \"HashMap inside\"; // HashMap in comment\nlet b = 2; /* multi\nline */ let c = 3;\n",
        );
        assert!(!has_word(&f.lines[0].code, "HashMap"));
        assert!(f.lines[0].comment.contains("HashMap"));
        assert!(f.lines[1].code.contains("let b"));
        assert!(f.lines[1].comment.contains("multi"));
        assert!(f.lines[2].code.contains("let c"));
        assert!(f.lines[2].comment.contains("line"));
    }

    #[test]
    fn raw_strings_and_escapes_are_blanked() {
        let f = scan(
            "x.rs",
            "let a = r#\"unsafe { HashMap }\"#;\nlet b = \"esc \\\" quote HashMap\";\n",
        );
        assert!(!has_word(&f.lines[0].code, "unsafe"));
        assert!(!has_word(&f.lines[0].code, "HashMap"));
        assert!(!has_word(&f.lines[1].code, "HashMap"));
        assert!(f.lines[1].code.trim_end().ends_with(';'));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan(
            "x.rs",
            "fn f<'a>(x: &'a str) -> &'a str { x } // SAFETY: n/a\n",
        );
        assert!(f.lines[0].code.contains("-> &'a str"));
        assert!(f.lines[0].comment.contains("SAFETY"));
        let g = scan("x.rs", "let c = 'x'; let d = '\\n'; let e = 1; // tail\n");
        assert!(g.lines[0].code.contains("let e"));
        assert!(g.lines[0].comment.contains("tail"));
    }

    #[test]
    fn word_boundaries_hold() {
        assert!(has_word("let x: Rc<CodeBody>", "Rc"));
        assert!(!has_word("let x: VmRc<CodeBody>", "Rc"));
        assert!(!has_word("randomize()", "random"));
        assert!(has_word("random()", "random"));
    }

    #[test]
    fn doc_comments_are_kept_apart_from_plain_comments() {
        let f = scan(
            "x.rs",
            "//! grammar example: lint: allow(rule)\n/// item doc\n// plain SAFETY: note\n",
        );
        assert!(f.lines[0].doc.contains("lint: allow"));
        assert!(f.lines[0].comment.is_empty());
        assert!(f.lines[0].is_comment_only());
        assert!(f.lines[1].doc.contains("item doc"));
        assert!(f.lines[2].comment.contains("SAFETY"));
        assert!(f.lines[2].doc.is_empty());
    }

    #[test]
    fn nested_block_comments() {
        let f = scan("x.rs", "/* outer /* inner */ still comment */ let x = 1;\n");
        assert!(f.lines[0].code.contains("let x"));
        assert!(!f.lines[0].code.contains("outer"));
        assert!(f.lines[0].comment.contains("inner"));
    }
}
