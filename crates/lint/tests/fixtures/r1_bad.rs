// Fixture: unsafe without a SAFETY justification (never compiled).
pub fn peek(ptr: *const u32) -> u32 {
    unsafe { *ptr }
}
