// Fixture: determinism violations; scanned as if it were
// crates/core/src/sched.rs (never compiled).
use std::collections::HashMap;
use std::time::Instant;

pub fn now() -> Instant {
    Instant::now()
}

// lint: allow(determinism)
pub fn pause() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub struct Index {
    // lint: allow(determinism) — lookup-only map: inserted and probed
    // by key, never iterated, so hash order cannot leak anywhere.
    map: HashMap<u32, u32>,
}

pub fn in_string() {
    let _ = "HashMap and Instant in a string are fine";
    // HashMap and Instant in a comment are fine too.
}
