// Fixture: embedding-surface hygiene; scanned as if it were
// crates/core/src/fake_api.rs with surface = {Widget, EngineKind}
// (never compiled).
pub struct Widget {
    pub x: u32,
}

#[derive(Debug)]
#[non_exhaustive]
pub enum EngineKind {
    Switch,
    Threaded,
}

#[deprecated]
pub fn old() {}

#[deprecated(note = "use `replacement_fn` instead")]
pub fn older() {}

pub struct NotSurface {
    pub y: u32,
}
