// Fixture: malformed allow annotations (never compiled).
// lint: allow(no-such-rule) — the rule name is unknown.
pub fn f() {}

// lint: allow(hot-handle)
pub fn g() {}
