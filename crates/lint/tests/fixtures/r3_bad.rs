// Fixture: hot-handle sharing violations (never compiled).
use std::sync::Arc;

pub struct Cache {
    body: Arc<CodeBody>,
}

pub fn stash(site: std::rc::Rc<CallSite>) {
    drop(site);
}

pub struct Legacy {
    // lint: allow(hot-handle) — test-only mirror of the pre-VmRc
    // layout, used to measure the refcount cost VmRc removes.
    code: Arc<PreparedCode>,
}

pub struct Fine {
    // VmRc is the sanctioned handle; `Arc<str>` wraps no hot handle.
    body: VmRc<CodeBody>,
    name: Arc<str>,
}
