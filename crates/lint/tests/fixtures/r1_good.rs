// Fixture: every justified form R1 must accept (never compiled).
pub fn peek(ptr: *const u32) -> u32 {
    // SAFETY: caller guarantees ptr is valid and aligned.
    unsafe { *ptr }
}

pub fn inline(ptr: *const u32) -> u32 {
    unsafe { *ptr } // SAFETY: same-line justification form.
}

// SAFETY: the type owns no thread-affine state; the comment may sit
// above attributes.
#[allow(dead_code)]
unsafe impl Send for Opaque {}

// lint: allow(safety-comment) — justified in the module docs instead.
pub unsafe fn excused() {}
