//! The enforcement test: the real workspace must be lint-clean. This
//! is what makes `cargo test` (tier 1) fail when a new `unsafe` block
//! lands without a SAFETY comment, a wall-clock read or hash-ordered
//! iteration slips into a deterministic-path module, a hot handle gets
//! wrapped in Rc/Arc, or an embedding-surface type ships without an
//! evolution story.

#[test]
fn workspace_is_lint_clean() {
    let root = ijvm_lint::workspace_root();
    let violations = ijvm_lint::check_workspace(&root);
    assert!(
        violations.is_empty(),
        "\n{} lint violation(s):\n{}\n\nEither fix the site or, if it is sound, annotate it \
         with `// lint: allow(<rule>) — <reason>` (the reason is required).\n",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
