//! Analyzer self-tests: each fixture under `tests/fixtures/` encodes
//! violations (or deliberate non-violations) of one rule; the test
//! asserts the exact (line, rule) findings. Fixtures are scanned under
//! pretend workspace paths so the path-scoped rules (R2, R4) apply;
//! they are never compiled.

use ijvm_lint::{scan, Checker, Rule, Violation};
use std::collections::BTreeSet;

fn check(fixture: &str, pretend_path: &str, surface: &[&str]) -> Vec<Violation> {
    let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("fixture exists");
    let checker = Checker::with_surface(
        surface
            .iter()
            .map(|s| s.to_string())
            .collect::<BTreeSet<_>>(),
    );
    checker.check_file(&scan(pretend_path, &text))
}

fn lines_of(violations: &[Violation], rule: Rule) -> Vec<usize> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn r1_flags_unjustified_unsafe() {
    let v = check("r1_bad.rs", "crates/core/src/x.rs", &[]);
    assert_eq!(lines_of(&v, Rule::SafetyComment), vec![3]);
    assert_eq!(v.len(), 1, "{v:?}");
}

#[test]
fn r1_accepts_every_justified_form() {
    let v = check("r1_good.rs", "crates/core/src/x.rs", &[]);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn r2_flags_clocks_sleeps_and_hash_collections() {
    let v = check("r2_bad.rs", "crates/core/src/sched.rs", &[]);
    assert_eq!(lines_of(&v, Rule::Determinism), vec![3, 4, 6, 7, 10, 12]);
    assert_eq!(v.len(), 6, "{v:?}");
    assert!(
        v.iter()
            .any(|x| x.line == 10 && x.message.contains("without a reason")),
        "a reason-less allow is itself a violation: {v:?}"
    );
}

#[test]
fn r2_is_scoped_to_deterministic_paths() {
    let v = check("r2_bad.rs", "crates/workloads/src/runner.rs", &[]);
    // Outside the deterministic paths only the malformed allow (which
    // is checked everywhere) remains.
    assert_eq!(lines_of(&v, Rule::Determinism), vec![10]);
}

/// The checkpoint codec is pinned inside R2's scope: capture must be a
/// pure function of VM state and restore must not introduce hash-order
/// or clock nondeterminism, or images stop being bit-identical across
/// scheduler modes.
#[test]
fn r2_covers_the_checkpoint_codec() {
    let v = check("r2_bad.rs", "crates/core/src/checkpoint.rs", &[]);
    assert_eq!(lines_of(&v, Rule::Determinism), vec![3, 4, 6, 7, 10, 12]);
    assert_eq!(v.len(), 6, "{v:?}");
}

#[test]
fn r3_flags_refcounted_hot_handles() {
    let v = check("r3_bad.rs", "crates/core/src/engine/switch.rs", &[]);
    assert_eq!(lines_of(&v, Rule::HotHandle), vec![5, 8]);
    assert_eq!(v.len(), 2, "{v:?}");
}

#[test]
fn r3_exempts_vmrc() {
    let v = check("r3_bad.rs", "crates/core/src/vmrc.rs", &[]);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn r4_flags_surface_types_and_bare_deprecated() {
    let v = check(
        "r4_bad.rs",
        "crates/core/src/fake_api.rs",
        &["Widget", "EngineKind"],
    );
    assert_eq!(lines_of(&v, Rule::ApiHygiene), vec![4, 15]);
    assert_eq!(v.len(), 2, "{v:?}");
}

#[test]
fn r4_is_scoped_to_the_core_crate() {
    let v = check(
        "r4_bad.rs",
        "crates/comm/src/fake_api.rs",
        &["Widget", "EngineKind"],
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn malformed_allows_are_violations() {
    let v = check("allow_bad.rs", "crates/core/src/x.rs", &[]);
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v
        .iter()
        .any(|x| x.line == 2 && x.message.contains("unknown rule")));
    assert!(v
        .iter()
        .any(|x| x.line == 5 && x.message.contains("without a reason")));
}
