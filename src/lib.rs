//! # ijvm — I-JVM in Rust
//!
//! A reproduction of *"I-JVM: a Java Virtual Machine for Component
//! Isolation in OSGi"* (Geoffray, Thomas, Muller, Parrend, Frénot,
//! Folliot — DSN 2009), built from scratch: class-file format, bytecode
//! interpreter, green threads, garbage collector, mini-Java compiler,
//! OSGi-like framework — and on top of it all the paper's contribution:
//! lightweight isolates with thread migration, per-isolate resource
//! accounting and isolate termination.
//!
//! This crate is the facade re-exporting the workspace:
//!
//! * [`classfile`] — class-file format, assembler, disassembler;
//! * [`core`] — the VM (isolates, migration, accounting, termination);
//! * [`jsl`] — the Java System Library;
//! * [`minijava`] — the mini-Java source compiler;
//! * [`osgi`] — the OSGi-like component framework;
//! * [`comm`] — Table 1's communication models;
//! * [`attacks`] — the §4.3 attack suite and §4.4 accounting limits;
//! * [`workloads`] — the SPEC JVM98 analogues and the paint demo.
//!
//! ## Quick start
//!
//! ```
//! use ijvm::prelude::*;
//!
//! // Boot an I-JVM, make a bundle isolate, compile and run mini-Java.
//! let mut vm = ijvm::jsl::boot(VmOptions::isolated());
//! let iso = vm.create_isolate("hello-bundle");
//! let loader = vm.loader_of(iso).unwrap();
//! let classes = ijvm::minijava::compile_to_bytes(
//!     "class Hello { static int add(int a, int b) { return a + b; } }",
//!     &ijvm::minijava::CompileEnv::new(),
//! )
//! .unwrap();
//! for (name, bytes) in classes {
//!     vm.add_class_bytes(loader, &name, bytes);
//! }
//! let hello = vm.load_class(loader, "Hello").unwrap();
//! let sum = vm.call_static(hello, "add", "(II)I", vec![Value::Int(40), Value::Int(2)]);
//! assert_eq!(sum.unwrap(), Some(Value::Int(42)));
//! ```

pub use ijvm_attacks as attacks;
pub use ijvm_classfile as classfile;
pub use ijvm_comm as comm;
pub use ijvm_core as core;
pub use ijvm_jsl as jsl;
pub use ijvm_minijava as minijava;
pub use ijvm_osgi as osgi;
pub use ijvm_workloads as workloads;

/// Commonly used types across the workspace.
pub mod prelude {
    pub use ijvm_core::prelude::*;
    pub use ijvm_osgi::{BundleDescriptor, BundleId, BundleState, Framework};
}
