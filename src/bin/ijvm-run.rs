//! `ijvm-run` — compile and run a mini-Java source file on the I-JVM.
//!
//! ```sh
//! ijvm-run program.mj                 # runs `static void main()` of the
//!                                     # first class declaring one
//! ijvm-run program.mj --class Main    # pick the entry class
//! ijvm-run program.mj --shared        # run on the vulnerable baseline
//! ijvm-run program.mj --stats         # print per-isolate accounting
//! ijvm-run program.mj --trace out.json  # flight-recorder trace, Chrome
//!                                       # trace-event JSON (open in
//!                                       # Perfetto / chrome://tracing)
//! ijvm-run program.mj --checkpoint img.ckpt   # checkpoint the finished
//!                                             # VM to a stable byte image
//! ijvm-run --restore img.ckpt                 # resume a checkpoint image
//! ```
//!
//! The program runs inside its own bundle isolate; `println(...)` output
//! is forwarded to stdout. `--trace` enables the in-VM flight recorder
//! ([`TraceConfig::Full`]) for the run and also upgrades `--stats` with
//! the traced counters (quanta, CPU flushes, hottest methods).
//!
//! `--checkpoint FILE` captures the VM after the run into a versioned,
//! checksummed image ([`ijvm::core::checkpoint`]); `--restore FILE`
//! boots from such an image instead of a source file — classes are
//! replayed from the embedded bytes and `<clinit>` does **not** re-run.
//! The console is part of the image, so a resumed run reprints the full
//! history before any new output. Hard VM-shape options (isolation,
//! quantum, limits) must match the image; engine options are free.

use ijvm::prelude::*;
use std::process::ExitCode;

const USAGE: &str = "usage: ijvm-run <file.mj> [--class NAME] [--shared] [--stats] [--budget N] \
     [--trace FILE] [--checkpoint FILE]\n       ijvm-run --restore FILE [--shared] [--stats] \
     [--budget N] [--trace FILE] [--checkpoint FILE]";

struct Args {
    path: String,
    entry_class: Option<String>,
    shared: bool,
    stats: bool,
    budget: Option<u64>,
    trace: Option<String>,
    checkpoint: Option<String>,
    restore: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut parsed = Args {
        path: String::new(),
        entry_class: None,
        shared: false,
        stats: false,
        budget: None,
        trace: None,
        checkpoint: None,
        restore: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--class" => {
                parsed.entry_class = Some(args.next().ok_or("--class needs a value")?);
            }
            "--shared" => parsed.shared = true,
            "--stats" => parsed.stats = true,
            "--budget" => {
                let v = args.next().ok_or("--budget needs a value")?;
                parsed.budget = Some(v.parse().map_err(|_| format!("bad budget {v:?}"))?);
            }
            "--trace" => {
                parsed.trace = Some(args.next().ok_or("--trace needs a file path")?);
            }
            "--checkpoint" => {
                parsed.checkpoint = Some(args.next().ok_or("--checkpoint needs a file path")?);
            }
            "--restore" => {
                parsed.restore = Some(args.next().ok_or("--restore needs a file path")?);
            }
            "--help" | "-h" => {
                return Err(USAGE.to_owned());
            }
            other if parsed.path.is_empty() && !other.starts_with('-') => {
                parsed.path = other.to_owned();
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    match &parsed.restore {
        None if parsed.path.is_empty() => return Err(USAGE.to_owned()),
        Some(_) if !parsed.path.is_empty() => {
            return Err("give either a source file or --restore FILE, not both".to_owned());
        }
        Some(_) if parsed.entry_class.is_some() => {
            return Err(
                "--class does not apply to --restore (the image fixes the entry)".to_owned(),
            );
        }
        _ => {}
    }
    Ok(parsed)
}

fn report_outcome(outcome: RunOutcome) {
    match outcome {
        RunOutcome::BudgetExhausted => {
            eprintln!("ijvm-run: instruction budget exhausted");
        }
        RunOutcome::Deadlock => eprintln!("ijvm-run: deadlock"),
        RunOutcome::Blocked => {
            eprintln!("ijvm-run: blocked on cross-unit service calls")
        }
        RunOutcome::Idle => {}
        // RunOutcome is #[non_exhaustive].
        other => eprintln!("ijvm-run: stopped: {other:?}"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut options = if args.shared {
        VmOptions::shared()
    } else {
        VmOptions::isolated()
    };
    if args.trace.is_some() {
        options = options.with_trace(TraceConfig::Full);
    }

    let (mut vm, result) = if let Some(img_path) = &args.restore {
        // Resume a checkpoint image: no compilation, no class init —
        // the image carries classes, heap, threads and console.
        let bytes = match std::fs::read(img_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ijvm-run: cannot read {img_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let image = match UnitImage::from_bytes(bytes) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("ijvm-run: bad checkpoint image {img_path}: {e}");
                return ExitCode::from(1);
            }
        };
        let mut vm =
            match ijvm::core::checkpoint::restore(&image, options, ijvm::jsl::install_natives) {
                Ok(vm) => vm,
                Err(e) => {
                    eprintln!("ijvm-run: cannot restore {img_path}: {e}");
                    return ExitCode::from(1);
                }
            };
        report_outcome(vm.run(args.budget));
        (vm, Ok(()))
    } else {
        let source = match std::fs::read_to_string(&args.path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ijvm-run: cannot read {}: {e}", args.path);
                return ExitCode::from(2);
            }
        };

        let classes = match ijvm::minijava::compile(&source, &ijvm::minijava::CompileEnv::new()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("ijvm-run: {e}");
                return ExitCode::from(1);
            }
        };

        // Entry: the requested class, or the first one declaring main()V.
        let entry = match &args.entry_class {
            Some(name) => name.clone(),
            None => {
                let found = classes.iter().find_map(|c| {
                    c.find_method("main", "()V")
                        .map(|_| c.name().unwrap().to_owned())
                });
                match found {
                    Some(n) => n,
                    None => {
                        eprintln!("ijvm-run: no class declares `static void main()`");
                        return ExitCode::from(1);
                    }
                }
            }
        };

        let mut vm = ijvm::jsl::boot(options);
        let iso = vm.create_isolate("main-bundle");
        let loader = vm.loader_of(iso).expect("isolate exists");
        for cf in &classes {
            let name = cf.name().expect("compiled class has a name").to_owned();
            let bytes = ijvm::classfile::writer::write_class(cf).expect("serializes");
            vm.add_class_bytes(loader, &name, bytes);
        }
        let class = match vm.load_class(loader, &entry) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("ijvm-run: {e}");
                return ExitCode::from(1);
            }
        };
        if vm.class(class).find_method("main", "()V").is_none() {
            eprintln!("ijvm-run: {entry} has no `static void main()`");
            return ExitCode::from(1);
        }

        let result = match args.budget {
            None => vm
                .call_static_as(class, "main", "()V", vec![], iso)
                .map(|_| ()),
            Some(budget) => {
                let index = vm.class(class).find_method("main", "()V").expect("checked");
                let mref = ijvm::core::ids::MethodRef { class, index };
                vm.spawn_thread("main", mref, vec![], iso).expect("spawn");
                report_outcome(vm.run(Some(budget)));
                Ok(())
            }
        };
        (vm, result)
    };

    // Checkpoint *before* draining the console: the console history is
    // part of the image, so a later --restore replays it.
    if let Some(path) = &args.checkpoint {
        match vm.checkpoint() {
            Ok(image) => {
                if let Err(e) = std::fs::write(path, image.as_bytes()) {
                    eprintln!("ijvm-run: cannot write checkpoint {path}: {e}");
                    return ExitCode::from(2);
                }
                eprintln!("checkpoint written to {path} ({} bytes)", image.len());
            }
            Err(e) => {
                eprintln!("ijvm-run: checkpoint failed: {e}");
                return ExitCode::from(1);
            }
        }
    }

    for line in vm.take_console() {
        println!("{line}");
    }
    if args.stats {
        vm.collect_garbage(None);
        let metrics = vm.metrics();
        eprintln!("\nper-isolate accounting:");
        for snap in &metrics.isolates {
            eprintln!(
                "  {:<14} cpu_exact={:<12} cpu_sampled={:<12} allocated={:<10} live={:<10} gcs={} threads={}",
                snap.name,
                snap.stats.cpu_exact,
                snap.stats.cpu_sampled,
                snap.stats.allocated_bytes,
                snap.stats.live_bytes,
                snap.stats.gc_triggers,
                snap.stats.threads_created,
            );
        }
        eprintln!(
            "vm totals: vclock={} migrations={} gc_epochs={}",
            metrics.vclock, metrics.isolate_switches, metrics.gc_epochs
        );
        if args.trace.is_some() {
            eprintln!(
                "trace: quanta={} cpu_flushes={} charged_insns={} events={} dropped={}",
                metrics.quanta,
                metrics.cpu_charges,
                metrics.cpu_charged_insns,
                metrics.events_recorded,
                metrics.dropped_events,
            );
            let hot = vm.top_methods(5);
            if !hot.is_empty() {
                eprintln!("hottest methods (invocations + 8*back_edges):");
                for m in hot {
                    eprintln!(
                        "  {:<40} invocations={:<8} back_edges={}",
                        format!("{}.{}", m.class_name, m.method_name),
                        m.invocations,
                        m.back_edges,
                    );
                }
            }
        }
    }
    if let Some(path) = &args.trace {
        let sink = TraceSink::new(vm.take_trace_events());
        if let Err(e) = sink.write_chrome_trace_file(path) {
            eprintln!("ijvm-run: cannot write trace {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "trace written to {path} ({} events) — load it at https://ui.perfetto.dev",
            sink.events().len()
        );
    }

    match result {
        Ok(()) => {
            if let Some(code) = vm.exit_code() {
                return ExitCode::from(code.clamp(0, 255) as u8);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ijvm-run: {e}");
            ExitCode::from(1)
        }
    }
}
