//! Cross-crate integration tests: the paper's semantic claims exercised
//! through the full stack (compiler → class files → framework → VM).

use ijvm::prelude::*;
use ijvm_core::ids::MethodRef;

fn install(
    fw: &mut Framework,
    name: &str,
    pkg: &str,
    src: &str,
    imports: Vec<BundleId>,
) -> BundleId {
    let imported: Vec<(String, Vec<u8>)> = imports
        .iter()
        .flat_map(|id| fw.bundle(*id).unwrap().classes.clone())
        .collect();
    let desc = BundleDescriptor::from_source(name, pkg, src, None, imports, &imported)
        .unwrap_or_else(|e| panic!("bundle {name}: {e}"));
    fw.install_bundle(desc).unwrap()
}

fn call_int(fw: &mut Framework, bundle: BundleId, class: &str, method: &str) -> i32 {
    let loader = fw.bundle(bundle).unwrap().loader;
    let iso = fw.bundle(bundle).unwrap().isolate;
    let cid = fw.vm_mut().load_class(loader, class).unwrap();
    match fw.vm_mut().call_static_as(cid, method, "()I", vec![], iso) {
        Ok(Some(Value::Int(v))) => v,
        other => panic!("{class}.{method} -> {other:?}"),
    }
}

// ------------------------------------------------------------------
// String identity across bundles (paper §3.5)
// ------------------------------------------------------------------

/// "In I-JVM, each bundle has its map of strings, therefore the `==`
/// operator does not work for strings allocated by different bundles.
/// Programmers should use the equals function instead."
#[test]
fn string_interning_is_per_bundle() {
    for (mode, expect_same) in [(IsolationMode::Shared, 1), (IsolationMode::Isolated, 0)] {
        let mut fw = Framework::new(match mode {
            IsolationMode::Shared => VmOptions::shared(),
            IsolationMode::Isolated => VmOptions::isolated(),
        });
        let a = install(
            &mut fw,
            "bundle-a",
            "ba",
            r#"
            class Probe {
                static String token() { return "the-literal"; }
                static int sameAsMine(String s) {
                    if (s == "the-literal") return 1;
                    return 0;
                }
                static int equalsMine(String s) {
                    if (s.equals("the-literal")) return 1;
                    return 0;
                }
            }
            "#,
            vec![],
        );
        let b = install(
            &mut fw,
            "bundle-b",
            "bb",
            r#"
            class Check {
                static int identity() { return Probe.sameAsMine("the-literal"); }
                static int equality() { return Probe.equalsMine("the-literal"); }
            }
            "#,
            vec![a],
        );
        let identity = call_int(&mut fw, b, "bb/Check", "identity");
        let equality = call_int(&mut fw, b, "bb/Check", "equality");
        assert_eq!(
            identity, expect_same,
            "{mode:?}: identity of literals across bundles"
        );
        assert_eq!(equality, 1, "{mode:?}: equals() must hold in every mode");
    }
}

// ------------------------------------------------------------------
// Statics are per-isolate, but calls see the callee's copy (paper §3.1)
// ------------------------------------------------------------------

#[test]
fn inter_bundle_calls_operate_on_the_callees_statics() {
    let mut fw = Framework::new(VmOptions::isolated());
    let provider = install(
        &mut fw,
        "provider",
        "pv",
        r#"
        class Counter {
            static int hits = 0;
            static int bump() { hits = hits + 1; return hits; }
            static int peek() { return hits; }
        }
        "#,
        vec![],
    );
    let consumer = install(
        &mut fw,
        "consumer",
        "cs",
        r#"
        class Use {
            static int callBump() { return Counter.bump(); }
            static int readDirect() { return Counter.hits; }
        }
        "#,
        vec![provider],
    );

    // Calling bump() migrates into the provider: its copy advances.
    assert_eq!(call_int(&mut fw, consumer, "cs/Use", "callBump"), 1);
    assert_eq!(call_int(&mut fw, consumer, "cs/Use", "callBump"), 2);
    assert_eq!(call_int(&mut fw, provider, "pv/Counter", "peek"), 2);
    // Direct getstatic from the consumer reads the CONSUMER's copy (0).
    assert_eq!(call_int(&mut fw, consumer, "cs/Use", "readDirect"), 0);
}

// ------------------------------------------------------------------
// Termination unwinds through migrated stacks (paper §3.3)
// ------------------------------------------------------------------

#[test]
fn termination_unwinds_nested_cross_bundle_stacks() {
    let mut fw = Framework::new(VmOptions::isolated());
    let inner = install(
        &mut fw,
        "inner",
        "in",
        r#"
        class Dead {
            static int spinForever() {
                int x = 0;
                while (true) { x = x + 1; }
            }
        }
        "#,
        vec![],
    );
    let outer = install(
        &mut fw,
        "outer",
        "ou",
        r#"
        class Caller {
            static int protectedCall() {
                try {
                    return Dead.spinForever();
                } catch (StoppedIsolateException e) {
                    return 4242;
                }
            }
        }
        "#,
        vec![inner],
    );

    let loader = fw.bundle(outer).unwrap().loader;
    let iso = fw.bundle(outer).unwrap().isolate;
    let cid = fw.vm_mut().load_class(loader, "ou/Caller").unwrap();
    let index = fw
        .vm()
        .class(cid)
        .find_method("protectedCall", "()I")
        .unwrap();
    let tid = fw
        .vm_mut()
        .spawn_thread("caller", MethodRef { class: cid, index }, vec![], iso)
        .unwrap();
    let _ = fw.run(Some(3_000_000));
    assert!(
        !fw.vm().thread(tid).unwrap().is_terminated(),
        "spinning inside the callee"
    );
    // The thread is currently charged to the inner bundle.
    assert_eq!(
        fw.vm().thread(tid).unwrap().current_isolate,
        fw.bundle(inner).unwrap().isolate
    );

    let inner_iso = fw.bundle(inner).unwrap().isolate;
    fw.vm_mut().terminate_isolate(inner_iso).unwrap();
    let _ = fw.run(Some(3_000_000));
    assert_eq!(fw.vm().thread_result(tid), Some(Value::Int(4242)));
}

// ------------------------------------------------------------------
// GC accounting: first referencer is charged (paper §3.2)
// ------------------------------------------------------------------

#[test]
fn gc_charges_objects_to_the_first_referencing_isolate() {
    let mut fw = Framework::new(VmOptions::isolated());
    let maker = install(
        &mut fw,
        "maker",
        "mk",
        r#"
        class Factory {
            static Object make() { return new int[25000]; }
        }
        "#,
        vec![],
    );
    let keeper = install(
        &mut fw,
        "keeper",
        "kp",
        r#"
        class Keep {
            static Object held;
            static int take() {
                held = Factory.make();
                return 1;
            }
        }
        "#,
        vec![maker],
    );
    assert_eq!(call_int(&mut fw, keeper, "kp/Keep", "take"), 1);
    fw.vm_mut().collect_garbage(None);
    let maker_live = fw
        .vm()
        .isolate_stats(fw.bundle(maker).unwrap().isolate)
        .unwrap()
        .live_bytes;
    let keeper_live = fw
        .vm()
        .isolate_stats(fw.bundle(keeper).unwrap().isolate)
        .unwrap()
        .live_bytes;
    // The 100 KB array is held only by the keeper's static: charged there.
    assert!(keeper_live >= 100_000, "keeper live {keeper_live}");
    assert!(maker_live < 100_000, "maker live {maker_live}");
}

// ------------------------------------------------------------------
// Services survive the provider's objects being shared (paper §3.4)
// ------------------------------------------------------------------

#[test]
fn service_objects_remain_usable_until_unregistered() {
    let mut fw = Framework::new(VmOptions::isolated());
    let provider = install(
        &mut fw,
        "dict",
        "dc",
        r#"
        class Dict {
            HashMap map;
            Dict() {
                map = new HashMap();
                map.put("paper", "I-JVM");
                map.put("venue", "DSN 2009");
            }
            String lookup(String k) { return (String) map.get(k); }
        }
        class Activator {
            static void start(BundleContext ctx) {
                ctx.registerService("dict", new Dict());
            }
        }
        "#,
        vec![],
    );
    // Re-install with the activator wired (install() strips it).
    let desc = BundleDescriptor::from_source(
        "dict2",
        "dc2",
        r#"
        class Dict {
            HashMap map;
            Dict() {
                map = new HashMap();
                map.put("paper", "I-JVM");
            }
            String lookup(String k) { return (String) map.get(k); }
        }
        class Activator {
            static void start(BundleContext ctx) {
                ctx.registerService("dict", new Dict());
            }
        }
        "#,
        Some("Activator"),
        vec![],
        &[],
    )
    .unwrap();
    let dict2 = fw.install_bundle(desc).unwrap();
    fw.start_bundle(dict2).unwrap();
    let service = fw.get_service("dict").expect("registered");

    // Call the service from another bundle's isolate, through the shared
    // reference (host-driven, as the registry hands out references).
    let consumer_iso = fw.bundle(provider).unwrap().isolate;
    let key = fw.vm_mut().new_string(consumer_iso, "paper");
    let class = fw.vm().heap().get(service).class;
    let index = fw
        .vm()
        .class(class)
        .find_method("lookup", "(Ljava/lang/String;)Ljava/lang/String;")
        .unwrap();
    let tid = fw
        .vm_mut()
        .spawn_thread(
            "lookup",
            MethodRef { class, index },
            vec![Value::Ref(service), Value::Ref(key)],
            consumer_iso,
        )
        .unwrap();
    let _ = fw.run(Some(5_000_000));
    let result = fw.vm().thread_result(tid).expect("lookup completed");
    let Value::Ref(s) = result else {
        panic!("lookup returned {result}")
    };
    assert_eq!(fw.vm().read_string(s).as_deref(), Some("I-JVM"));
}

// ------------------------------------------------------------------
// The whole evaluation stack stays consistent across modes
// ------------------------------------------------------------------

#[test]
fn workload_results_do_not_depend_on_isolation() {
    for w in ijvm::workloads::spec::all().into_iter().take(3) {
        let a = ijvm::workloads::run_workload(&w, IsolationMode::Shared).result;
        let b = ijvm::workloads::run_workload(&w, IsolationMode::Isolated).result;
        assert_eq!(a, b, "{}", w.name);
        assert_eq!(a, w.expected, "{}", w.name);
    }
}

#[test]
fn comm_models_agree_on_results() {
    let reports = ijvm::comm::table1(40);
    let expected: i64 = (0..40).map(|i| i as i64 + 1).sum();
    for r in reports {
        assert_eq!(r.checksum, expected, "{}", r.model.name());
    }
}

#[test]
fn admin_can_run_in_vm_privileged_operations() {
    // Isolate0 may terminate bundles from inside the VM (org/osgi/Admin);
    // ordinary bundles get SecurityException.
    let mut fw = Framework::new(VmOptions::isolated());
    let victim = install(
        &mut fw,
        "victim",
        "vi",
        "class V { static int ok() { return 5; } }",
        vec![],
    );
    let rogue = install(
        &mut fw,
        "rogue",
        "ro",
        r#"
        class Try {
            static int killOther(int target) {
                try {
                    Admin.terminateBundle(target);
                    return 1;
                } catch (SecurityException e) {
                    return -1;
                }
            }
        }
        "#,
        vec![],
    );
    let loader = fw.bundle(rogue).unwrap().loader;
    let iso = fw.bundle(rogue).unwrap().isolate;
    let cid = fw.vm_mut().load_class(loader, "ro/Try").unwrap();
    let out = fw
        .vm_mut()
        .call_static_as(
            cid,
            "killOther",
            "(I)I",
            vec![Value::Int(victim.0 as i32)],
            iso,
        )
        .unwrap();
    assert_eq!(
        out,
        Some(Value::Int(-1)),
        "non-privileged isolates are refused"
    );
    assert_eq!(
        call_int(&mut fw, victim, "vi/V", "ok"),
        5,
        "victim untouched"
    );
}
